"""Deterministic fault injection for durability and wire-path testing.

A :class:`FaultInjector` holds a *schedule* of faults keyed on injection
points — the stable labels the durability layer attaches to every file
primitive (``"wal.append"``, ``"checkpoint.table.rename"``, …) and the
wire layer attaches to every transport send. Supported faults:

* **crash** — raise :class:`SimulatedCrash` at the Nth arrival at a
  point; every later I/O also raises, modelling a dead process whose
  in-memory state is gone. Tests then rebuild the database from disk.
* **torn write** — persist only a prefix of the bytes, then crash; the
  prefix length comes from the seeded RNG (or a fixed fraction), which
  is how recovery's torn-tail truncation gets exercised.
* **failed fsync / failed operation** — raise
  :class:`repro.errors.TransientError` for the first N arrivals, then
  heal; models flaky disks and is what the client retry path sees.
* **wire faults** — :class:`FlakyTransport` consults the same schedule
  (plus an optional seeded failure rate) before forwarding a frame.

Everything is deterministic given the constructor seed and a fixed
workload: the injector's own RNG is only consulted in a fixed order, and
:attr:`FaultInjector.trace` records every ``(point, occurrence)`` pair
reached — a tracing run with no rules discovers the exact set of
injection points a workload passes through, which the crash-recovery
matrix then iterates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.db.fileio import FileIO
from repro.errors import TransientError

CRASH = "crash"
TORN = "torn"
FAIL = "fail"


class SimulatedCrash(BaseException):
    """An abrupt, injected process death.

    Deliberately *not* an :class:`Exception` (let alone a
    :class:`repro.errors.ReproError`): no defensive ``except Exception``
    in the stack — e.g. the server's never-raise wire handler — may
    swallow a crash, exactly as no handler survives ``kill -9``.
    """


@dataclass
class _Rule:
    point: str
    occurrence: int
    action: str
    fraction: float | None = None
    times: int = 1
    fired: int = 0


class FaultInjector:
    """A seeded, replayable schedule of crashes and I/O faults."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.random = random.Random(seed)
        self.rules: list[_Rule] = []
        self.trace: list[tuple[str, int]] = []
        self.crashed = False
        self._counts: dict[str, int] = {}
        self._wire_rate = 0.0
        self._wire_limit = 0
        self._wire_faults = 0

    # -- schedule construction ---------------------------------------------------

    def crash_at(self, point: str, occurrence: int = 1) -> "FaultInjector":
        """Die the ``occurrence``-th time ``point`` is reached."""
        self.rules.append(_Rule(point, occurrence, CRASH))
        return self

    def torn_write_at(self, point: str, occurrence: int = 1,
                      fraction: float | None = None) -> "FaultInjector":
        """Persist a strict prefix of that write, then die."""
        self.rules.append(_Rule(point, occurrence, TORN, fraction=fraction))
        return self

    def fail_at(self, point: str, occurrence: int = 1,
                times: int = 1) -> "FaultInjector":
        """Raise TransientError for ``times`` arrivals, then heal."""
        self.rules.append(_Rule(point, occurrence, FAIL, times=times))
        return self

    # fsync failures are just transient failures on an fsync point
    fail_fsync_at = fail_at

    def wire_fault_rate(self, rate: float,
                        limit: int = 3) -> "FaultInjector":
        """Seeded-random transient wire errors (at most ``limit``)."""
        self._wire_rate = rate
        self._wire_limit = limit
        return self

    # -- the hot path ------------------------------------------------------------

    def reach(self, point: str, size: int | None = None) -> Optional[int]:
        """Announce arrival at an injection point.

        Returns ``None`` to proceed normally, or a prefix length when a
        torn write should persist only that many bytes before the crash.
        Raises :class:`SimulatedCrash` or
        :class:`repro.errors.TransientError` per the schedule.
        """
        if self.crashed:
            raise SimulatedCrash(f"I/O at {point!r} after simulated crash")
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        self.trace.append((point, count))
        for rule in self.rules:
            if rule.point != point or rule.occurrence != count:
                continue
            if rule.action == CRASH:
                self.crashed = True
                raise SimulatedCrash(f"injected crash at {point!r} "
                                     f"(occurrence {count})")
            if rule.action == TORN:
                self.crashed = True
                fraction = (rule.fraction if rule.fraction is not None
                            else self.random.random())
                total = size or 0
                # a torn write must lose at least one byte to be torn
                return max(0, min(int(total * fraction), total - 1))
            if rule.action == FAIL and rule.fired < rule.times:
                rule.fired += 1
                raise TransientError(
                    f"injected transient failure at {point!r} "
                    f"(occurrence {count})")
        return None

    def reach_wire(self, point: str) -> None:
        """Arrival on the wire path: rule faults, then rate faults."""
        self.reach(point)
        if (self._wire_rate > 0.0 and self._wire_faults < self._wire_limit
                and self.random.random() < self._wire_rate):
            self._wire_faults += 1
            raise TransientError(f"injected wire fault at {point!r}")


class FaultyIO(FileIO):
    """A :class:`FileIO` that consults an injector before every
    primitive. Reads are never faulted — a crashed process does not
    read, and recovery runs on a fresh, healthy IO instance."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def _write_through(self, write: Callable[[bytes], None],
                       data: bytes, point: str) -> None:
        prefix = self.injector.reach(point, size=len(data))
        if prefix is None:
            write(data)
            return
        write(data[:prefix])
        raise SimulatedCrash(
            f"torn write at {point!r}: {prefix}/{len(data)} bytes persisted")

    def write_bytes(self, path, data, point="io.write"):
        self._write_through(
            lambda chunk: super(FaultyIO, self).write_bytes(
                path, chunk, point=point),
            data, point)

    def append_bytes(self, path, data, point="io.append"):
        self._write_through(
            lambda chunk: super(FaultyIO, self).append_bytes(
                path, chunk, point=point),
            data, point)

    def fsync(self, path, point="io.fsync"):
        self.injector.reach(point)
        super().fsync(path, point=point)

    def rename(self, src, dst, point="io.rename"):
        self.injector.reach(point)
        super().rename(src, dst, point=point)

    def truncate(self, path, size, point="io.truncate"):
        self.injector.reach(point)
        super().truncate(path, size, point=point)

    def unlink(self, path, point="io.unlink"):
        self.injector.reach(point)
        super().unlink(path, point=point)


class FlakyTransport:
    """Wrap a client transport with injected transient wire errors.

    >>> transport = FlakyTransport(server.transport(),
    ...                            FaultInjector(seed=7).fail_at(
    ...                                "wire.send", occurrence=1))
    ... # doctest: +SKIP

    Faults on the request point (default ``"wire.send"``) fire *before*
    the frame reaches the server — the statement never executes.
    Faults on the response point (default ``"wire.recv"``) fire *after*
    the server has already executed and answered — the acknowledgement
    is dropped on the floor, which is the dangerous half: a naive
    client retry re-executes work the server already applied. The
    idempotency ledger exists for exactly this case.
    """

    def __init__(self, transport: Callable[[str], str],
                 injector: FaultInjector, point: str = "wire.send",
                 recv_point: str = "wire.recv") -> None:
        self.transport = transport
        self.injector = injector
        self.point = point
        self.recv_point = recv_point

    def __call__(self, request_text: str) -> str:
        self.injector.reach_wire(self.point)
        response_text = self.transport(request_text)
        # the server has answered; a fault here loses the response frame
        self.injector.reach_wire(self.recv_point)
        return response_text
