"""Time intervals over the discrete time domain ``T`` (Definition 2).

Every edge of an execution trace carries a :class:`TimeInterval`
``[begin, end]`` recording when the two connected nodes interacted —
e.g. the span between a file's first open and last close by a process,
or the single tick at which a query produced a result tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProvenanceError


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed interval ``[begin, end]`` of logical ticks."""

    begin: int
    end: int

    def __post_init__(self) -> None:
        if self.begin > self.end:
            raise ProvenanceError(
                f"interval begin {self.begin} after end {self.end}")

    @classmethod
    def point(cls, tick: int) -> "TimeInterval":
        """The degenerate interval ``[t, t]`` (instantaneous events)."""
        return cls(tick, tick)

    def contains(self, tick: int) -> bool:
        return self.begin <= tick <= self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        return self.begin <= other.end and other.begin <= self.end

    def hull(self, other: "TimeInterval") -> "TimeInterval":
        """The smallest interval covering both (used when a process
        re-opens a file: the trace keeps one edge per interaction kind,
        widening its interval)."""
        return TimeInterval(min(self.begin, other.begin),
                            max(self.end, other.end))

    @property
    def is_point(self) -> bool:
        return self.begin == self.end

    def to_json(self) -> list[int]:
        return [self.begin, self.end]

    @classmethod
    def from_json(cls, data: list[int]) -> "TimeInterval":
        return cls(int(data[0]), int(data[1]))

    def __str__(self) -> str:
        return f"[{self.begin}, {self.end}]"
