"""Generic provenance models (Definition 1).

A provenance model is a triple ``(A, E, L)``: activity types, entity
types, and edge types with admissible endpoint types. Activity, entity
and edge labels must be pairwise distinct. Models can be *combined*
(Definition 5) by unioning their types and adding cross-model edge
types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ModelViolationError


@dataclass(frozen=True)
class EdgeType:
    """An admissible edge: ``label(source_type, target_type)``.

    Edges are stored in the direction of information flow, e.g.
    ``readFrom(file, process)`` points file → process because the
    process's state absorbs the file's content.
    """

    label: str
    source_type: str
    target_type: str


class ProvenanceModel:
    """A named provenance model ``P = (A, E, L)``."""

    def __init__(self, name: str, activity_types: Iterable[str],
                 entity_types: Iterable[str],
                 edge_types: Iterable[EdgeType]) -> None:
        self.name = name
        self.activity_types = frozenset(activity_types)
        self.entity_types = frozenset(entity_types)
        self.edge_types: dict[str, EdgeType] = {}
        overlap = self.activity_types & self.entity_types
        if overlap:
            raise ModelViolationError(
                f"labels used as both activity and entity: {sorted(overlap)}")
        all_node_types = self.activity_types | self.entity_types
        for edge_type in edge_types:
            if edge_type.label in self.edge_types:
                raise ModelViolationError(
                    f"duplicate edge label {edge_type.label!r}")
            if edge_type.label in all_node_types:
                raise ModelViolationError(
                    f"edge label {edge_type.label!r} collides with a "
                    "node type")
            for endpoint in (edge_type.source_type, edge_type.target_type):
                if endpoint not in all_node_types:
                    raise ModelViolationError(
                        f"edge {edge_type.label!r} references unknown "
                        f"type {endpoint!r}")
            self.edge_types[edge_type.label] = edge_type

    # -- type queries ------------------------------------------------------------

    def is_activity_type(self, type_label: str) -> bool:
        return type_label in self.activity_types

    def is_entity_type(self, type_label: str) -> bool:
        return type_label in self.entity_types

    def has_node_type(self, type_label: str) -> bool:
        return (type_label in self.activity_types
                or type_label in self.entity_types)

    def edge_type(self, label: str) -> EdgeType:
        edge_type = self.edge_types.get(label)
        if edge_type is None:
            raise ModelViolationError(
                f"model {self.name!r} has no edge type {label!r}")
        return edge_type

    def check_edge(self, label: str, source_type: str,
                   target_type: str) -> None:
        """Validate an edge against the model's type constraints."""
        edge_type = self.edge_type(label)
        if (edge_type.source_type != source_type
                or edge_type.target_type != target_type):
            raise ModelViolationError(
                f"edge {label!r} connects {source_type} -> {target_type}, "
                f"model requires {edge_type.source_type} -> "
                f"{edge_type.target_type}")

    # -- combination (Definition 5) --------------------------------------------------

    def combine(self, other: "ProvenanceModel",
                cross_edges: Iterable[EdgeType],
                name: str | None = None) -> "ProvenanceModel":
        """Union two models and add cross-model edge types."""
        shared = (
            (self.activity_types | self.entity_types)
            & (other.activity_types | other.entity_types))
        if shared:
            raise ModelViolationError(
                f"models share node types: {sorted(shared)}")
        return ProvenanceModel(
            name or f"{self.name}+{other.name}",
            self.activity_types | other.activity_types,
            self.entity_types | other.entity_types,
            list(self.edge_types.values())
            + list(other.edge_types.values())
            + list(cross_edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProvenanceModel({self.name!r}, "
                f"A={sorted(self.activity_types)}, "
                f"E={sorted(self.entity_types)})")
