"""Temporally restricted dependency inference (Definitions 9–11).

Definition 11 declares entity ``e`` dependent on entity ``e'`` when the
trace contains a path ``v_1 = e', ..., v_n = e`` such that

1. adjacent entities from the *same* model on the path are direct model
   dependencies — ``(e_i, e_{i-1}) ∈ D(G)`` with D(G) per Definition 7
   (P_Lin) or Definition 8 (P_BB),
2. there is a non-decreasing time sequence ``T_1 ≤ ... ≤ T_n`` with
   ``T_i ≤ T(v_i, v_{i+1}).end``, and
3. ``T(v_{i-1}, v_i).begin ≤ T_i`` (each node only absorbs state from
   interactions that have already begun — Definition 10).

This module computes the relation with a *latest-allowed-time*
traversal walked backward from the dependent node: the walk sits at
node ``v`` with a budget ``U`` (the latest admissible ``T_v``);
crossing edge ``(u, v)`` backward with interval ``[b, e]`` is feasible
iff ``b ≤ U`` and tightens the budget to ``min(U, e)``. The greedy
latest schedule dominates every other time assignment, so the traversal
is sound and complete for conditions 2–3; condition 1 is enforced as a
set-membership check against the model dependency relations whenever
the walk moves from one entity to the next entity of the same model
(cross-model adjacency is always allowed — Definition 9, condition ii).

The paper's worked examples (Example 7, Example 8 / Figures 6a–6c) are
reproduced verbatim in ``tests/provenance/test_inference.py``, and a
hypothesis test cross-checks the traversal against
:func:`brute_force_dependencies`, a literal path-enumerating reading of
Definition 11.
"""

from __future__ import annotations

import heapq
import math

from repro.provenance.bb import bb_dependencies
from repro.provenance.lineage import lin_dependencies
from repro.provenance.trace import Edge, ExecutionTrace


class DependencyInference:
    """Computes D*(G) (Definition 11) over a combined execution trace."""

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace
        self._model_deps: dict[str, set[tuple[str, str]]] | None = None

    def _dependency_relations(self) -> dict[str, set[tuple[str, str]]]:
        """The per-model direct dependency relations D(G), lazily."""
        if self._model_deps is None:
            self._model_deps = {
                "bb": bb_dependencies(self.trace),
                "lin": lin_dependencies(self.trace),
            }
        return self._model_deps

    # -- public API -----------------------------------------------------------

    def dependencies_of(self, node_id: str,
                        at_time: int | float | None = None) -> set[str]:
        """All entities the given node's state depends on.

        ``node_id`` may be an entity (Definition 11 proper) or an
        activity (the "state of an activity depends on it" case
        Section VII-D uses to select package contents). ``at_time``
        restricts to dependencies established no later than that tick
        (default: the whole execution).
        """
        budget = math.inf if at_time is None else at_time
        start = self.trace.node(node_id)
        start_context = node_id if start.is_entity else None
        # best[(node, last_entity)] = largest budget reached with
        best: dict[tuple[str, str | None], float] = {
            (node_id, start_context): budget}
        heap: list[tuple[float, str, str | None]] = [
            (-budget, node_id, start_context)]
        found: set[str] = set()
        while heap:
            negative_budget, current, context = heapq.heappop(heap)
            current_budget = -negative_budget
            if best.get((current, context), -math.inf) > current_budget:
                continue  # stale heap entry
            for edge in self.trace.in_edges(current):
                if edge.interval.begin > current_budget:
                    continue  # interaction began after the budget
                new_budget = min(current_budget, edge.interval.end)
                source_node = self.trace.node(edge.source)
                if source_node.is_entity:
                    if not self._adjacency_allowed(
                            context, source_node.node_id):
                        continue
                    new_context: str | None = source_node.node_id
                    if source_node.node_id != node_id:
                        found.add(source_node.node_id)
                else:
                    new_context = context
                key = (edge.source, new_context)
                if best.get(key, -math.inf) >= new_budget:
                    continue
                best[key] = new_budget
                heapq.heappush(heap, (-new_budget, edge.source, new_context))
        return found

    def depends_on(self, target: str, source: str,
                   at_time: int | float | None = None) -> bool:
        """Reachability query ("does d depend on d'?", Section II)."""
        return source in self.dependencies_of(target, at_time)

    def all_dependencies(self) -> set[tuple[str, str]]:
        """The full relation D*(G) over all entities."""
        pairs: set[tuple[str, str]] = set()
        for entity in self.trace.entities():
            for source in self.dependencies_of(entity.node_id):
                pairs.add((entity.node_id, source))
        return pairs

    # -- condition 1 (same-model adjacency) ---------------------------------------

    def _adjacency_allowed(self, context: str | None,
                           source_entity: str) -> bool:
        """Condition 1 of Definition 11 for the entity pair
        (``context`` depends on ``source_entity``)."""
        if context is None:
            return True  # walk started at an activity: no pair to check
        source_model = self.trace.node(source_entity).model
        context_model = self.trace.node(context).model
        if source_model != context_model:
            return True  # Definition 9, condition ii
        relation = self._dependency_relations().get(source_model)
        if relation is None:
            return True  # unknown model: stay conservative
        return (context, source_entity) in relation


def brute_force_dependencies(trace: ExecutionTrace, target: str,
                             at_time: int | float | None = None,
                             max_length: int = 12) -> set[str]:
    """Literal Definition 11, by simple-path enumeration.

    Exponential — only for cross-checking the traversal on small traces
    in tests.
    """
    budget = math.inf if at_time is None else at_time
    relations = {
        "bb": bb_dependencies(trace),
        "lin": lin_dependencies(trace),
    }

    def feasible_times(path: list[Edge]) -> bool:
        # assign earliest feasible T_i greedily; per edge i:
        # T_i <= interval.end and T_{i+1} >= interval.begin
        current = -math.inf
        for edge in path:
            if current > edge.interval.end:
                return False
            current = max(current, edge.interval.begin)
        return current <= budget

    def entities_ok(path: list[Edge]) -> bool:
        nodes = [path[0].source] + [edge.target for edge in path]
        entity_ids = [node for node in nodes
                      if trace.node(node).is_entity]
        for source_entity, dependent in zip(entity_ids, entity_ids[1:]):
            source_model = trace.node(source_entity).model
            if source_model != trace.node(dependent).model:
                continue
            if (dependent, source_entity) not in relations.get(
                    source_model, set()):
                return False
        return True

    def path_exists(source: str) -> bool:
        stack: list[tuple[list[Edge], frozenset[str]]] = [
            ([edge], frozenset({source, edge.target}))
            for edge in trace.out_edges(source)]
        while stack:
            path, seen = stack.pop()
            tail = path[-1].target
            if tail == target:
                if feasible_times(path) and entities_ok(path):
                    return True
                continue
            if len(path) >= max_length:
                continue
            for edge in trace.out_edges(tail):
                if edge.target in seen:
                    continue
                stack.append((path + [edge], seen | {edge.target}))
        return False

    found: set[str] = set()
    for entity in trace.entities():
        if entity.node_id != target and path_exists(entity.node_id):
            found.add(entity.node_id)
    return found
