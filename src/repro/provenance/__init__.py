"""Provenance models, execution traces, and dependency inference.

Implements Sections IV–VI of the paper:

* :mod:`repro.provenance.model` — generic provenance models (Def 1),
* :mod:`repro.provenance.trace` — execution traces with temporal edge
  annotations (Def 2),
* :mod:`repro.provenance.bb` — the blackbox process OS model P_BB
  (Def 3) and its data dependencies (Def 8),
* :mod:`repro.provenance.lineage` — the Lineage DB model P_Lin (Def 4)
  and its data dependencies (Def 7),
* :mod:`repro.provenance.combined` — the combined model with
  cross-model edges (Defs 5, 6),
* :mod:`repro.provenance.inference` — temporally restricted dependency
  inference (Defs 9–11, Theorem 1),
* :mod:`repro.provenance.prov_export` — W3C PROV-JSON serialization.
"""

from repro.provenance.interval import TimeInterval
from repro.provenance.model import EdgeType, ProvenanceModel
from repro.provenance.trace import ExecutionTrace, Node
from repro.provenance.bb import BB_MODEL, bb_dependencies
from repro.provenance.lineage import LIN_MODEL, lin_dependencies
from repro.provenance.combined import COMBINED_MODEL, TraceBuilder
from repro.provenance.inference import DependencyInference

__all__ = [
    "TimeInterval",
    "EdgeType",
    "ProvenanceModel",
    "ExecutionTrace",
    "Node",
    "BB_MODEL",
    "LIN_MODEL",
    "COMBINED_MODEL",
    "TraceBuilder",
    "bb_dependencies",
    "lin_dependencies",
    "DependencyInference",
]
