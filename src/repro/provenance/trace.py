"""Execution traces (Definition 2).

An execution trace is a labeled directed graph whose nodes instantiate
a provenance model's activity/entity types and whose edges carry
:class:`TimeInterval` annotations. Edges point in the direction of
information flow (see :mod:`repro.provenance.model`).

The trace supports everything downstream needs: typed construction with
model validation, adjacency queries, the node-state function ``S(v, T)``
of Definition 10, and JSON round-tripping (a serialized trace ships
inside every LDV package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import ModelViolationError, ProvenanceError, UnknownNodeError
from repro.provenance.interval import TimeInterval
from repro.provenance.model import ProvenanceModel


@dataclass(frozen=True)
class Node:
    """A trace node: an activity or entity instance."""

    node_id: str
    kind: str  # "activity" | "entity"
    type_label: str
    model: str  # name of the provenance model the node belongs to
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def is_entity(self) -> bool:
        return self.kind == "entity"

    @property
    def is_activity(self) -> bool:
        return self.kind == "activity"

    def attr(self, key: str, default: Any = None) -> Any:
        for attr_key, value in self.attrs:
            if attr_key == key:
                return value
        return default


@dataclass
class Edge:
    """A typed, time-annotated edge."""

    source: str
    target: str
    label: str
    interval: TimeInterval
    attrs: dict[str, Any] = field(default_factory=dict)


class ExecutionTrace:
    """A temporal provenance graph for one application run."""

    def __init__(self, model: ProvenanceModel) -> None:
        self.model = model
        self._nodes: dict[str, Node] = {}
        self._edges: dict[tuple[str, str, str], Edge] = {}
        self._out: dict[str, list[Edge]] = {}
        self._in: dict[str, list[Edge]] = {}

    # -- construction -------------------------------------------------------------

    def add_activity(self, node_id: str, type_label: str,
                     model_name: str | None = None,
                     **attrs: Any) -> Node:
        if not self.model.is_activity_type(type_label):
            raise ModelViolationError(
                f"{type_label!r} is not an activity type of "
                f"{self.model.name!r}")
        return self._add_node(node_id, "activity", type_label,
                              model_name, attrs)

    def add_entity(self, node_id: str, type_label: str,
                   model_name: str | None = None, **attrs: Any) -> Node:
        if not self.model.is_entity_type(type_label):
            raise ModelViolationError(
                f"{type_label!r} is not an entity type of "
                f"{self.model.name!r}")
        return self._add_node(node_id, "entity", type_label,
                              model_name, attrs)

    def _add_node(self, node_id: str, kind: str, type_label: str,
                  model_name: str | None, attrs: dict[str, Any]) -> Node:
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.type_label != type_label:
                raise ProvenanceError(
                    f"node {node_id!r} already exists with type "
                    f"{existing.type_label!r}")
            return existing
        node = Node(node_id, kind, type_label,
                    model_name or self.model.name,
                    tuple(sorted(attrs.items())))
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        return node

    def add_edge(self, source: str, target: str, label: str,
                 interval: TimeInterval, **attrs: Any) -> Edge:
        """Add (or widen) a typed edge.

        Adding the same ``(source, target, label)`` again widens the
        existing interval to the hull — this is how a process that
        re-opens a file keeps a single readFrom edge spanning all of
        its reads.
        """
        source_node = self.node(source)
        target_node = self.node(target)
        self.model.check_edge(label, source_node.type_label,
                              target_node.type_label)
        key = (source, target, label)
        existing = self._edges.get(key)
        if existing is not None:
            existing.interval = existing.interval.hull(interval)
            for attr_key, value in attrs.items():
                existing.attrs[attr_key] = value
            return existing
        edge = Edge(source, target, label, interval, dict(attrs))
        self._edges[key] = edge
        self._out[source].append(edge)
        self._in[target].append(edge)
        return edge

    # -- queries -----------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(f"unknown trace node {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self, kind: str | None = None,
              type_label: str | None = None) -> list[Node]:
        result = []
        for node in self._nodes.values():
            if kind is not None and node.kind != kind:
                continue
            if type_label is not None and node.type_label != type_label:
                continue
            result.append(node)
        return sorted(result, key=lambda n: n.node_id)

    def entities(self, type_label: str | None = None) -> list[Node]:
        return self.nodes("entity", type_label)

    def activities(self, type_label: str | None = None) -> list[Node]:
        return self.nodes("activity", type_label)

    def edges(self, label: str | None = None) -> list[Edge]:
        if label is None:
            return list(self._edges.values())
        return [edge for edge in self._edges.values() if edge.label == label]

    def out_edges(self, node_id: str) -> list[Edge]:
        self.node(node_id)
        return list(self._out[node_id])

    def in_edges(self, node_id: str) -> list[Edge]:
        self.node(node_id)
        return list(self._in[node_id])

    def interval(self, source: str, target: str,
                 label: str | None = None) -> TimeInterval:
        """``T(v1, v2)``: the annotation of the edge between two nodes.

        If ``label`` is omitted and several typed edges connect the
        pair, the hull of their intervals is returned.
        """
        found = [edge for edge in self._out.get(source, ())
                 if edge.target == target
                 and (label is None or edge.label == label)]
        if not found:
            raise ProvenanceError(
                f"no edge between {source!r} and {target!r}")
        interval = found[0].interval
        for edge in found[1:]:
            interval = interval.hull(edge.interval)
        return interval

    def state(self, node_id: str, at_time: int) -> set[str]:
        """``S(v, T)`` of Definition 10: the sources of all incoming
        interactions that began no later than ``T``."""
        return {edge.source for edge in self.in_edges(node_id)
                if edge.interval.begin <= at_time}

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # -- serialization --------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict (model types are assumed
        known to the deserializer — the model itself is code)."""
        return {
            "model": self.model.name,
            "nodes": [
                {
                    "id": node.node_id,
                    "kind": node.kind,
                    "type": node.type_label,
                    "node_model": node.model,
                    "attrs": {key: value for key, value in node.attrs},
                }
                for node in self.nodes()
            ],
            "edges": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "label": edge.label,
                    "interval": edge.interval.to_json(),
                    "attrs": edge.attrs,
                }
                for edge in sorted(
                    self._edges.values(),
                    key=lambda e: (e.interval.begin, e.source, e.target,
                                   e.label))
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any],
                  model: ProvenanceModel) -> "ExecutionTrace":
        trace = cls(model)
        for node_data in data["nodes"]:
            if model.is_activity_type(node_data["type"]):
                adder = trace.add_activity
            else:
                adder = trace.add_entity
            adder(node_data["id"], node_data["type"],
                  node_data.get("node_model"), **node_data.get("attrs", {}))
        for edge_data in data["edges"]:
            trace.add_edge(
                edge_data["source"], edge_data["target"], edge_data["label"],
                TimeInterval.from_json(edge_data["interval"]),
                **edge_data.get("attrs", {}))
        return trace
