"""The Lineage DB provenance model P_Lin (Definitions 4 and 7).

Activities are SQL statements (query / insert / update / delete),
entities are tuple *versions*. Edge types (information-flow direction):

* ``hasRead``     — tuple → statement (the statement read the tuple),
* ``hasReturned`` — statement → tuple (the statement produced the
  tuple version: a query result or a modification's new version).

Per-result Lineage attribution — which of a statement's read tuples
contributed to which of its result tuples — cannot be recovered from
graph shape alone, so each ``hasReturned`` edge carries a ``lineage``
attribute listing the contributing tuple node ids. Definition 7's
``D(G)`` is read off those attributes.
"""

from __future__ import annotations

from repro.db.provtypes import TupleRef
from repro.provenance.model import EdgeType, ProvenanceModel
from repro.provenance.trace import ExecutionTrace

QUERY = "query"
INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
TUPLE = "tuple"
HAS_READ = "hasRead"
HAS_RETURNED = "hasReturned"

STATEMENT_TYPES = (QUERY, INSERT, UPDATE, DELETE)

LIN_MODEL = ProvenanceModel(
    name="lin",
    activity_types=list(STATEMENT_TYPES),
    entity_types=[TUPLE],
    edge_types=[
        EdgeType(HAS_READ, TUPLE, QUERY),
        EdgeType(HAS_RETURNED, QUERY, TUPLE),
        # modifications read the pre-versions and return the new ones
        EdgeType("hasRead_insert", TUPLE, INSERT),
        EdgeType("hasReturned_insert", INSERT, TUPLE),
        EdgeType("hasRead_update", TUPLE, UPDATE),
        EdgeType("hasReturned_update", UPDATE, TUPLE),
        EdgeType("hasRead_delete", TUPLE, DELETE),
        EdgeType("hasReturned_delete", DELETE, TUPLE),
    ],
)

# The paper writes hasRead(tuple, A) / hasReturned(A, tuple) generically
# over all statement types; a typed model needs one edge type per
# (label, activity-type) pair. These helpers pick the right label.


def read_label(statement_type: str) -> str:
    if statement_type == QUERY:
        return HAS_READ
    return f"hasRead_{statement_type}"


def returned_label(statement_type: str) -> str:
    if statement_type == QUERY:
        return HAS_RETURNED
    return f"hasReturned_{statement_type}"


def is_read_edge(label: str) -> bool:
    return label == HAS_READ or label.startswith("hasRead_")


def is_returned_edge(label: str) -> bool:
    return label == HAS_RETURNED or label.startswith("hasReturned_")


def statement_node_id(statement_id: str) -> str:
    return f"stmt:{statement_id}"


def tuple_node_id(ref: TupleRef) -> str:
    return f"tuple:{ref.table}:{ref.rowid}:v{ref.version}"


def tuple_ref_of(node_id: str) -> TupleRef:
    """Parse a tuple node id back into a :class:`TupleRef`."""
    prefix, table, rowid, version = node_id.split(":")
    if prefix != "tuple" or not version.startswith("v"):
        raise ValueError(f"not a tuple node id: {node_id!r}")
    return TupleRef(table, int(rowid), int(version[1:]))


def lin_dependencies(trace: ExecutionTrace) -> set[tuple[str, str]]:
    """``D(G)`` for P_Lin (Definition 7): pairs ``(t, t')`` meaning
    tuple version ``t`` depends on tuple version ``t'``.

    ``t`` depends on ``t'`` when some statement both read ``t'`` and
    returned ``t`` with ``t'`` in the ``lineage`` attribution of the
    hasReturned edge.
    """
    dependencies: set[tuple[str, str]] = set()
    for activity in trace.activities():
        if activity.type_label not in STATEMENT_TYPES:
            continue
        read_ids = {edge.source for edge in trace.in_edges(activity.node_id)
                    if is_read_edge(edge.label)}
        for edge in trace.out_edges(activity.node_id):
            if not is_returned_edge(edge.label):
                continue
            for contributor in edge.attrs.get("lineage", ()):
                if contributor in read_ids:
                    dependencies.add((edge.target, contributor))
    return dependencies
