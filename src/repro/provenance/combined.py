"""The combined OS+DB provenance model (Definitions 5 and 6).

Adds two cross-model edge types to the union of P_BB and P_Lin:

* ``run``        — process → statement (the process executed the SQL
  statement),
* ``readFromDB`` — tuple → process (the process consumed the result
  tuple). The paper reuses the name ``readFrom`` for this edge; since
  Definition 1 requires pairwise-distinct labels (and the combined
  model already has P_BB's file→process ``readFrom``), the DB-side
  edge is named ``readFromDB`` here.

:class:`TraceBuilder` is the convenience layer the LDV monitor uses to
grow a combined execution trace while an application runs.
"""

from __future__ import annotations

from typing import Iterable

from repro.db.provtypes import TupleRef
from repro.provenance import bb, lineage
from repro.provenance.interval import TimeInterval
from repro.provenance.model import EdgeType, ProvenanceModel
from repro.provenance.trace import ExecutionTrace, Node

RUN = "run"
READ_FROM_DB = "readFromDB"

_CROSS_EDGES = [
    EdgeType(RUN, bb.PROCESS, statement_type)
    for statement_type in lineage.STATEMENT_TYPES
]
# one typed RUN edge per statement type, same naming scheme as lineage
_CROSS_EDGES = (
    [EdgeType(RUN, bb.PROCESS, lineage.QUERY)]
    + [EdgeType(f"run_{statement_type}", bb.PROCESS, statement_type)
       for statement_type in (lineage.INSERT, lineage.UPDATE,
                              lineage.DELETE)]
    + [EdgeType(READ_FROM_DB, lineage.TUPLE, bb.PROCESS)]
)

COMBINED_MODEL = bb.BB_MODEL.combine(
    lineage.LIN_MODEL, _CROSS_EDGES, name="bb+lin")


def run_label(statement_type: str) -> str:
    if statement_type == lineage.QUERY:
        return RUN
    return f"run_{statement_type}"


def is_run_edge(label: str) -> bool:
    return label == RUN or label.startswith("run_")


class TraceBuilder:
    """Grows a combined execution trace during monitoring.

    All methods are idempotent with respect to node creation and widen
    edge intervals on repeated interactions, so the monitor can call
    them straight from its event handlers.
    """

    def __init__(self) -> None:
        self.trace = ExecutionTrace(COMBINED_MODEL)

    # -- OS side -----------------------------------------------------------------

    def process(self, pid: int, name: str = "") -> str:
        node_id = bb.process_node_id(pid)
        self.trace.add_activity(node_id, bb.PROCESS, "bb",
                                pid=pid, name=name)
        return node_id

    def file(self, path: str) -> str:
        node_id = bb.file_node_id(path)
        self.trace.add_entity(node_id, bb.FILE, "bb", path=path)
        return node_id

    def executed(self, parent_pid: int, child_pid: int,
                 tick: int) -> None:
        """Parent forked/executed child (point interval, as in VII-A)."""
        self.trace.add_edge(
            bb.process_node_id(parent_pid), bb.process_node_id(child_pid),
            bb.EXECUTED, TimeInterval.point(tick))

    def read_from(self, pid: int, path: str,
                  interval: TimeInterval) -> None:
        self.file(path)
        self.trace.add_edge(bb.file_node_id(path), bb.process_node_id(pid),
                            bb.READ_FROM, interval)

    def has_written(self, pid: int, path: str,
                    interval: TimeInterval) -> None:
        self.file(path)
        self.trace.add_edge(bb.process_node_id(pid), bb.file_node_id(path),
                            bb.HAS_WRITTEN, interval)

    # -- DB side ------------------------------------------------------------------

    def statement(self, statement_id: str, statement_type: str,
                  sql: str = "") -> str:
        node_id = lineage.statement_node_id(statement_id)
        self.trace.add_activity(node_id, statement_type, "lin",
                                sql=sql, statement_id=statement_id)
        return node_id

    def tuple_version(self, ref: TupleRef) -> str:
        node_id = lineage.tuple_node_id(ref)
        self.trace.add_entity(node_id, lineage.TUPLE, "lin",
                              table=ref.table, rowid=ref.rowid,
                              version=ref.version)
        return node_id

    def has_read(self, statement_node: str, ref: TupleRef,
                 tick: int) -> None:
        statement_type = self.trace.node(statement_node).type_label
        self.trace.add_edge(self.tuple_version(ref), statement_node,
                            lineage.read_label(statement_type),
                            TimeInterval.point(tick))

    def has_returned(self, statement_node: str, ref: TupleRef, tick: int,
                     lineage_refs: Iterable[TupleRef] = ()) -> None:
        """Statement produced a tuple version; ``lineage_refs`` is its
        Lineage attribution (Definition 7)."""
        statement_type = self.trace.node(statement_node).type_label
        self.trace.add_edge(
            statement_node, self.tuple_version(ref),
            lineage.returned_label(statement_type),
            TimeInterval.point(tick),
            lineage=sorted(lineage.tuple_node_id(dep)
                           for dep in lineage_refs))

    # -- cross-model edges -------------------------------------------------------------

    def run(self, pid: int, statement_node: str,
            interval: TimeInterval) -> None:
        statement_type = self.trace.node(statement_node).type_label
        self.trace.add_edge(bb.process_node_id(pid), statement_node,
                            run_label(statement_type), interval)

    def read_from_db(self, pid: int, ref: TupleRef, tick: int) -> None:
        """The process consumed a result tuple returned by a query."""
        self.trace.add_edge(self.tuple_version(ref),
                            bb.process_node_id(pid),
                            READ_FROM_DB, TimeInterval.point(tick))
