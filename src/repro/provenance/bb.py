"""The blackbox process OS provenance model P_BB (Definitions 3 and 8).

Activities are processes, entities are files. Edge types (stored in
information-flow direction):

* ``readFrom``  — file → process (the process read the file),
* ``hasWritten`` — process → file (the process wrote the file),
* ``executed``  — process → process (the parent executed the child).

Definition 8 declares a file ``f`` data-dependent on a file ``f'``
whenever ``f' → P_1 → ... → P_n → f`` with consecutive processes linked
by ``executed`` edges — the conservative "every output depends on every
input" assumption, extended down process chains.
"""

from __future__ import annotations

from repro.provenance.model import EdgeType, ProvenanceModel
from repro.provenance.trace import ExecutionTrace

PROCESS = "process"
FILE = "file"
READ_FROM = "readFrom"
HAS_WRITTEN = "hasWritten"
EXECUTED = "executed"

BB_MODEL = ProvenanceModel(
    name="bb",
    activity_types=[PROCESS],
    entity_types=[FILE],
    edge_types=[
        EdgeType(READ_FROM, FILE, PROCESS),
        EdgeType(HAS_WRITTEN, PROCESS, FILE),
        EdgeType(EXECUTED, PROCESS, PROCESS),
    ],
)


def process_node_id(pid: int) -> str:
    return f"proc:{pid}"


def file_node_id(path: str) -> str:
    return f"file:{path}"


def bb_dependencies(trace: ExecutionTrace) -> set[tuple[str, str]]:
    """``D(G)`` for P_BB (Definition 8): pairs ``(f, f')`` meaning file
    ``f`` depends on file ``f'``.

    Ignores temporal annotations — those are the inference layer's job
    (Definition 11). This is the raw, conservative relation.
    """
    dependencies: set[tuple[str, str]] = set()
    for entity in trace.entities(FILE):
        source_id = entity.node_id
        # walk forward through process chains (executed edges only)
        seen_processes: set[str] = set()
        frontier = [
            edge.target for edge in trace.out_edges(source_id)
            if edge.label == READ_FROM]
        while frontier:
            process_id = frontier.pop()
            if process_id in seen_processes:
                continue
            seen_processes.add(process_id)
            for edge in trace.out_edges(process_id):
                if edge.label == HAS_WRITTEN:
                    dependencies.add((edge.target, source_id))
                elif edge.label == EXECUTED:
                    frontier.append(edge.target)
    return dependencies
