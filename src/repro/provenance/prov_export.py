"""W3C PROV-JSON export of execution traces (Section IV requirement).

The paper requires only that traces be *representable* in PROV. The
mapping used here:

* activities (processes, SQL statements) → ``prov:Activity``,
* entities (files, tuple versions)       → ``prov:Entity``,
* ``readFrom`` / ``hasRead*`` / ``readFromDB`` → ``used`` (the activity
  used the entity; for the entity→process cross edge the process is the
  activity),
* ``hasWritten`` / ``hasReturned*`` → ``wasGeneratedBy``,
* ``executed`` / ``run*`` → ``wasInformedBy``,
* inferred data dependencies (Definition 11) → ``wasDerivedFrom``
  (optional, enabled with ``include_dependencies=True``).

Temporal annotations are exported as ``repro:begin`` / ``repro:end``
attributes on the relation records, since PROV's own ``prov:time``
attributes are instant-valued.
"""

from __future__ import annotations

from typing import Any

from repro.provenance.combined import is_run_edge
from repro.provenance.inference import DependencyInference
from repro.provenance.lineage import is_read_edge, is_returned_edge
from repro.provenance.trace import ExecutionTrace

_PREFIX = "repro"


def _qualified(node_id: str) -> str:
    # PROV-JSON ids are qualified names; make the id QN-safe
    return f"{_PREFIX}:{node_id.replace(':', '_').replace('/', '_')}"


def trace_to_prov(trace: ExecutionTrace,
                  include_dependencies: bool = False) -> dict[str, Any]:
    """Serialize a trace as a PROV-JSON document (a plain dict)."""
    document: dict[str, Any] = {
        "prefix": {_PREFIX: "https://example.org/ldv-repro#"},
        "activity": {},
        "entity": {},
        "used": {},
        "wasGeneratedBy": {},
        "wasInformedBy": {},
        "wasDerivedFrom": {},
    }
    for node in trace.nodes():
        record = {
            f"{_PREFIX}:type": node.type_label,
            f"{_PREFIX}:model": node.model,
        }
        for key, value in node.attrs:
            record[f"{_PREFIX}:{key}"] = value
        section = "activity" if node.is_activity else "entity"
        document[section][_qualified(node.node_id)] = record

    counters = {"u": 0, "g": 0, "i": 0, "d": 0}

    def relation_id(kind: str) -> str:
        counters[kind] += 1
        return f"_:{kind}{counters[kind]}"

    for edge in trace.edges():
        annotation = {
            f"{_PREFIX}:begin": edge.interval.begin,
            f"{_PREFIX}:end": edge.interval.end,
            f"{_PREFIX}:label": edge.label,
        }
        if edge.label == "readFrom" or is_read_edge(edge.label):
            # entity -> activity: the activity used the entity
            document["used"][relation_id("u")] = {
                "prov:activity": _qualified(edge.target),
                "prov:entity": _qualified(edge.source),
                **annotation,
            }
        elif edge.label == "readFromDB":
            # tuple -> process: the process used the tuple
            document["used"][relation_id("u")] = {
                "prov:activity": _qualified(edge.target),
                "prov:entity": _qualified(edge.source),
                **annotation,
            }
        elif edge.label == "hasWritten" or is_returned_edge(edge.label):
            document["wasGeneratedBy"][relation_id("g")] = {
                "prov:entity": _qualified(edge.target),
                "prov:activity": _qualified(edge.source),
                **annotation,
            }
        elif edge.label == "executed" or is_run_edge(edge.label):
            # informer is the parent / the process running the statement
            document["wasInformedBy"][relation_id("i")] = {
                "prov:informed": _qualified(edge.target),
                "prov:informant": _qualified(edge.source),
                **annotation,
            }
        else:  # pragma: no cover - future edge kinds
            document["wasInformedBy"][relation_id("i")] = {
                "prov:informed": _qualified(edge.target),
                "prov:informant": _qualified(edge.source),
                **annotation,
            }

    if include_dependencies:
        inference = DependencyInference(trace)
        for target, source in sorted(inference.all_dependencies()):
            document["wasDerivedFrom"][relation_id("d")] = {
                "prov:generatedEntity": _qualified(target),
                "prov:usedEntity": _qualified(source),
                f"{_PREFIX}:inferred": True,
            }

    # drop empty sections for a tidy document
    return {key: value for key, value in document.items() if value}
