"""SQL tokenizer.

Produces a flat list of :class:`Token` objects. Keywords are recognized
case-insensitively; identifiers preserve their original spelling but are
matched case-insensitively downstream. String literals use single quotes
with ``''`` escaping, as in standard SQL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


KEYWORDS = frozenset({
    "select", "provenance", "distinct", "from", "where", "group", "by",
    "having", "order", "asc", "desc", "limit", "offset", "as",
    "insert", "into", "values", "update", "set", "delete",
    "create", "table", "drop", "if", "exists", "not", "null",
    "primary", "key", "and", "or", "between", "like", "in", "is",
    "true", "false", "join", "inner", "left", "outer", "on", "cross",
    "copy", "to", "with", "csv", "header", "delimiter",
    "begin", "commit", "rollback", "union", "all", "case", "when",
    "explain", "analyze", "index",
    "then", "else", "end",
})

# Multi-character operators must be checked before single-character ones.
_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = {",", "(", ")", ";", "."}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}@{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # line comments
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # string literal
        if ch == "'":
            i, text = _read_string(sql, i)
            tokens.append(Token(TokenKind.STRING, text, i))
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            i, token = _read_number(sql, i)
            tokens.append(token)
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, start))
            continue
        # positional parameter ($1, $2, ...)
        if ch == "$" and i + 1 < n and sql[i + 1].isdigit():
            start = i
            i += 1
            while i < n and sql[i].isdigit():
                i += 1
            tokens.append(Token(TokenKind.PARAM, sql[start + 1:i], start))
            continue
        # quoted identifier
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(TokenKind.IDENTIFIER, sql[i + 1:end], i))
            i = end + 1
            continue
        # operators
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[int, str]:
    """Read a single-quoted string literal starting at ``start``."""
    i = start + 1
    n = len(sql)
    parts: list[str] = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                parts.append("'")
                i += 2
                continue
            return i + 1, "".join(parts)
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[int, Token]:
    """Read an integer or float literal starting at ``start``."""
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # exponent must be followed by digits (optionally signed)
            j = i + 1
            if j < n and sql[j] in "+-":
                j += 1
            if j < n and sql[j].isdigit():
                seen_exp = True
                i = j
            else:
                break
        else:
            break
    text = sql[start:i]
    kind = TokenKind.FLOAT if (seen_dot or seen_exp) else TokenKind.INTEGER
    return i, Token(kind, text, start)
