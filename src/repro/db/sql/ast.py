"""AST node definitions for the SQL dialect.

All nodes are frozen dataclasses so they can be hashed, compared, and
safely shared between planner and provenance rewriter. Expression nodes
and statement nodes live in separate class hierarchies rooted at
:class:`Expression` and :class:`Statement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: integer, float, string, boolean, or NULL (value=None)."""

    value: Any


@dataclass(frozen=True)
class Parameter(Expression):
    """A positional statement parameter (``$1``, ``$2``, ...), 1-based."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly qualified column reference (``t.col`` or ``col``)."""

    name: str
    qualifier: Optional[str] = None

    def display(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or COUNT(*)."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator: ``-expr`` or ``NOT expr``."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` (pattern must be a literal or expr)."""

    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``COUNT(*)`` is represented as ``FunctionCall("count", (Star(),))``.
    """

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN val [WHEN ...] [ELSE val] END``."""

    branches: tuple[tuple[Expression, Expression], ...]
    otherwise: Optional[Expression] = None


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """``(SELECT ...)`` used as a value (must yield ≤ 1 row, 1 col)."""

    query: "Select"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` (one output column)."""

    operand: Expression
    query: "Select"
    negated: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list: an expression plus optional alias."""

    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A table in a FROM clause with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN ... ON`` between a left source and a table."""

    left: "FromSource"
    right: TableRef
    condition: Optional[Expression]  # None for CROSS JOIN
    kind: str = "inner"  # "inner" | "left" | "cross"


FromSource = "TableRef | Join"


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement (optionally prefixed with PROVENANCE)."""

    items: tuple[SelectItem, ...]
    sources: tuple[Any, ...] = ()  # TableRef | Join entries (comma list)
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    provenance: bool = False


@dataclass(frozen=True)
class SetOp(Statement):
    """``<select> UNION [ALL] <select>`` (left-associative chains)."""

    op: str  # currently only "union"
    left: "Select | SetOp"
    right: Select
    all: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES rows`` or ``INSERT ... SELECT``."""

    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()
    query: Optional[Select] = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE cond]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE cond]``."""

    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE INDEX name ON table (column)`` — hash index."""

    name: str
    table: str
    column: str
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CopyFrom(Statement):
    """``COPY table FROM 'path' [WITH] [CSV] [HEADER]`` — bulk load."""

    table: str
    path: str
    header: bool = False
    delimiter: str = ","


@dataclass(frozen=True)
class CopyTo(Statement):
    """``COPY table TO 'path' [WITH] [CSV] [HEADER]`` — bulk dump."""

    table: str
    path: str
    header: bool = False
    delimiter: str = ","


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <select>`` — return the plan as text rows.

    With ``analyze`` the query is actually executed and each plan line
    carries the rows produced and wall time of its operator.
    """

    query: "Select"
    analyze: bool = False


@dataclass(frozen=True)
class Analyze(Statement):
    """``ANALYZE [table]`` — collect planner statistics.

    Without a table name every table in the catalog is analyzed. The
    collected statistics (row count, per-column NDV, null fraction,
    min/max, equi-depth histogram) feed the planner's cost model; see
    :mod:`repro.db.stats`.
    """

    table: Optional[str] = None


@dataclass(frozen=True)
class Begin(Statement):
    pass


@dataclass(frozen=True)
class Commit(Statement):
    pass


@dataclass(frozen=True)
class Rollback(Statement):
    pass
