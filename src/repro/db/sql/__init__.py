"""SQL front end: lexer, AST, and recursive-descent parser."""

from repro.db.sql.parser import parse_sql, parse_expression

__all__ = ["parse_sql", "parse_expression"]
