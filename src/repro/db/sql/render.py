"""Render AST nodes back to SQL text.

Used by the client-side LDV monitor to construct reenactment queries
(``UPDATE t SET ... WHERE w`` → ``SELECT * FROM t WHERE w``) without
touching the server directly, and by tests for parse/render round
trips. Rendering is canonical: keywords upper-case, minimal
parenthesization driven by operator precedence.
"""

from __future__ import annotations

from repro.db.sql import ast
from repro.errors import ExecutionError

# operator precedence for minimal parenthesization (higher binds tighter)
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "between": 4, "like": 4, "in": 4, "is": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
    "neg": 7,
}


def _escape_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    return _escape_string(str(value))


def _precedence_of(expression: ast.Expression) -> int:
    if isinstance(expression, ast.BinaryOp):
        return _PRECEDENCE.get(expression.op, 8)
    if isinstance(expression, ast.UnaryOp):
        return _PRECEDENCE["not"] if expression.op == "not" else _PRECEDENCE["neg"]
    if isinstance(expression, (ast.Between, ast.Like, ast.InList, ast.IsNull)):
        return 4
    return 9  # atoms


def _child(expression: ast.Expression, parent_precedence: int) -> str:
    text = render_expression(expression)
    if _precedence_of(expression) < parent_precedence:
        return f"({text})"
    return text


def render_expression(expression: ast.Expression) -> str:
    """Render an expression AST to SQL text."""
    if isinstance(expression, ast.Literal):
        return render_literal(expression.value)
    if isinstance(expression, ast.Parameter):
        return f"${expression.index}"
    if isinstance(expression, ast.ColumnRef):
        return expression.display()
    if isinstance(expression, ast.Star):
        return f"{expression.qualifier}.*" if expression.qualifier else "*"
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "not":
            return f"NOT {_child(expression.operand, _PRECEDENCE['not'])}"
        inner = _child(expression.operand, _PRECEDENCE["neg"])
        if inner.startswith("-"):
            # avoid "--", which SQL lexes as a line comment
            inner = f"({inner})"
        return f"-{inner}"
    if isinstance(expression, ast.BinaryOp):
        precedence = _PRECEDENCE.get(expression.op, 8)
        operator = expression.op.upper() if expression.op in ("and", "or") \
            else expression.op
        if expression.op in ("=", "<>", "<", "<=", ">", ">="):
            # comparisons are non-associative: parenthesize any
            # same-precedence operand on either side
            left = _child(expression.left, precedence + 1)
        else:
            left = _child(expression.left, precedence)
        # right side needs a strictly-higher bound for left-assoc ops
        right = _child(expression.right, precedence + 1)
        return f"{left} {operator} {right}"
    if isinstance(expression, ast.Between):
        keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
        return (f"{_child(expression.operand, 5)} {keyword} "
                f"{_child(expression.low, 5)} AND "
                f"{_child(expression.high, 5)}")
    if isinstance(expression, ast.Like):
        keyword = "NOT LIKE" if expression.negated else "LIKE"
        return (f"{_child(expression.operand, 5)} {keyword} "
                f"{_child(expression.pattern, 5)}")
    if isinstance(expression, ast.InList):
        keyword = "NOT IN" if expression.negated else "IN"
        items = ", ".join(render_expression(item)
                          for item in expression.items)
        return f"{_child(expression.operand, 5)} {keyword} ({items})"
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{_child(expression.operand, 5)} {keyword}"
    if isinstance(expression, ast.FunctionCall):
        prefix = "DISTINCT " if expression.distinct else ""
        args = ", ".join(render_expression(arg) for arg in expression.args)
        return f"{expression.name}({prefix}{args})"
    if isinstance(expression, ast.ScalarSubquery):
        return f"({render_select(expression.query)})"
    if isinstance(expression, ast.InSubquery):
        keyword = "NOT IN" if expression.negated else "IN"
        return (f"{_child(expression.operand, 5)} {keyword} "
                f"({render_select(expression.query)})")
    if isinstance(expression, ast.CaseWhen):
        parts = ["CASE"]
        for condition, value in expression.branches:
            parts.append(f"WHEN {render_expression(condition)} "
                         f"THEN {render_expression(value)}")
        if expression.otherwise is not None:
            parts.append(f"ELSE {render_expression(expression.otherwise)}")
        parts.append("END")
        return " ".join(parts)
    raise ExecutionError(
        f"cannot render expression node {type(expression).__name__}")


def _render_source(source) -> str:
    if isinstance(source, ast.TableRef):
        if source.alias:
            return f"{source.name} {source.alias}"
        return source.name
    if isinstance(source, ast.Join):
        left = _render_source(source.left)
        right = _render_source(source.right)
        if source.kind == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if source.kind == "left" else "JOIN"
        return (f"{left} {keyword} {right} "
                f"ON {render_expression(source.condition)}")
    raise ExecutionError(f"cannot render FROM entry {source!r}")


def render_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.provenance:
        parts.append("PROVENANCE")
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if select.sources:
        parts.append("FROM")
        parts.append(", ".join(_render_source(source)
                               for source in select.sources))
    if select.where is not None:
        parts.append(f"WHERE {render_expression(select.where)}")
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(
            render_expression(expression)
            for expression in select.group_by))
    if select.having is not None:
        parts.append(f"HAVING {render_expression(select.having)}")
    if select.order_by:
        rendered = []
        for item in select.order_by:
            text = render_expression(item.expression)
            if item.descending:
                text += " DESC"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    if select.offset is not None:
        parts.append(f"OFFSET {select.offset}")
    return " ".join(parts)


def render_statement(statement: ast.Statement) -> str:
    """Render any statement AST to SQL text."""
    if isinstance(statement, ast.Select):
        return render_select(statement)
    if isinstance(statement, ast.Insert):
        parts = [f"INSERT INTO {statement.table}"]
        if statement.columns:
            parts.append("(" + ", ".join(statement.columns) + ")")
        if statement.query is not None:
            parts.append(render_select(statement.query))
        else:
            rows = ", ".join(
                "(" + ", ".join(render_expression(value)
                                for value in row) + ")"
                for row in statement.rows)
            parts.append(f"VALUES {rows}")
        return " ".join(parts)
    if isinstance(statement, ast.Update):
        assignments = ", ".join(
            f"{name} = {render_expression(value)}"
            for name, value in statement.assignments)
        text = f"UPDATE {statement.table} SET {assignments}"
        if statement.where is not None:
            text += f" WHERE {render_expression(statement.where)}"
        return text
    if isinstance(statement, ast.Delete):
        text = f"DELETE FROM {statement.table}"
        if statement.where is not None:
            text += f" WHERE {render_expression(statement.where)}"
        return text
    if isinstance(statement, ast.CreateTable):
        columns = []
        for column in statement.columns:
            text = f"{column.name} {column.type_name}"
            if column.primary_key:
                text += " PRIMARY KEY"
            elif column.not_null:
                text += " NOT NULL"
            columns.append(text)
        exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return (f"CREATE TABLE {exists}{statement.table} "
                f"({', '.join(columns)})")
    if isinstance(statement, ast.DropTable):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP TABLE {exists}{statement.table}"
    if isinstance(statement, ast.CreateIndex):
        exists = "IF NOT EXISTS " if statement.if_not_exists else ""
        return (f"CREATE INDEX {exists}{statement.name} "
                f"ON {statement.table} ({statement.column})")
    if isinstance(statement, ast.DropIndex):
        exists = "IF EXISTS " if statement.if_exists else ""
        return f"DROP INDEX {exists}{statement.name}"
    if isinstance(statement, ast.CopyFrom):
        return _render_copy("FROM", statement)
    if isinstance(statement, ast.CopyTo):
        return _render_copy("TO", statement)
    if isinstance(statement, ast.SetOp):
        keyword = "UNION ALL" if statement.all else "UNION"
        return (f"{render_statement(statement.left)} {keyword} "
                f"{render_select(statement.right)}")
    if isinstance(statement, ast.Explain):
        analyze = "ANALYZE " if statement.analyze else ""
        return f"EXPLAIN {analyze}{render_select(statement.query)}"
    if isinstance(statement, ast.Analyze):
        if statement.table is not None:
            return f"ANALYZE {statement.table}"
        return "ANALYZE"
    if isinstance(statement, ast.Begin):
        return "BEGIN"
    if isinstance(statement, ast.Commit):
        return "COMMIT"
    if isinstance(statement, ast.Rollback):
        return "ROLLBACK"
    raise ExecutionError(
        f"cannot render statement {type(statement).__name__}")


def _render_copy(direction: str, statement) -> str:
    text = (f"COPY {statement.table} {direction} "
            f"{_escape_string(statement.path)} WITH CSV")
    if statement.header:
        text += " HEADER"
    if statement.delimiter != ",":
        text += f" DELIMITER {_escape_string(statement.delimiter)}"
    return text
