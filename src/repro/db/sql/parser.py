"""Recursive-descent SQL parser.

``parse_sql`` turns SQL text into a list of :mod:`repro.db.sql.ast`
statements. The expression grammar uses precedence climbing:

    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive ( comparison | BETWEEN | LIKE | IN | IS NULL )?
    additive   := multiplic ((+|-|'||') multiplic)*
    multiplic  := unary ((*|/|%) unary)*
    unary      := - unary | primary
    primary    := literal | column | function(...) | ( or_expr ) | CASE ...
"""

from __future__ import annotations

from typing import Optional

from repro.db.sql import ast
from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.errors import SQLSyntaxError

_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

_COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})


class _Parser:
    """Stateful token-stream parser; one instance per parse call."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token-stream helpers -------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word.upper()}, found {token.text!r}", token.position)
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text == text:
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.PUNCT or token.text != text:
            raise SQLSyntaxError(
                f"expected {text!r}, found {token.text!r}", token.position)
        return self.advance()

    def expect_identifier(self) -> str:
        token = self.peek()
        if token.kind is TokenKind.IDENTIFIER:
            self.advance()
            return token.text
        # allow non-reserved keywords as identifiers where unambiguous
        if token.kind is TokenKind.KEYWORD and token.text in ("key", "set", "all"):
            self.advance()
            return token.text
        raise SQLSyntaxError(
            f"expected identifier, found {token.text!r}", token.position)

    # -- statements -----------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self.peek().kind is not TokenKind.EOF:
            statements.append(self.parse_statement())
            while self.accept_punct(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.kind is not TokenKind.KEYWORD:
            raise SQLSyntaxError(
                f"expected statement, found {token.text!r}", token.position)
        if token.text == "select":
            return self.parse_select_or_union()
        if token.text == "insert":
            return self.parse_insert()
        if token.text == "update":
            return self.parse_update()
        if token.text == "delete":
            return self.parse_delete()
        if token.text == "create":
            return self.parse_create_table()
        if token.text == "drop":
            return self.parse_drop_table()
        if token.text == "copy":
            return self.parse_copy()
        if token.text == "explain":
            self.advance()
            analyze = self.accept_keyword("analyze")
            return ast.Explain(self.parse_select(), analyze=analyze)
        if token.text == "analyze":
            self.advance()
            table = None
            if self.peek().kind is TokenKind.IDENTIFIER:
                table = self.expect_identifier()
            return ast.Analyze(table=table)
        if token.text == "begin":
            self.advance()
            return ast.Begin()
        if token.text == "commit":
            self.advance()
            return ast.Commit()
        if token.text == "rollback":
            self.advance()
            return ast.Rollback()
        raise SQLSyntaxError(
            f"unsupported statement {token.text!r}", token.position)

    # -- SELECT ---------------------------------------------------------------

    def parse_select_or_union(self) -> "ast.Select | ast.SetOp":
        """A SELECT, possibly chained with UNION [ALL]."""
        result: "ast.Select | ast.SetOp" = self.parse_select()
        while self.accept_keyword("union"):
            all_rows = self.accept_keyword("all")
            right = self.parse_select()
            result = ast.SetOp("union", result, right, all_rows)
        return result

    def parse_select(self) -> ast.Select:
        self.expect_keyword("select")
        provenance = self.accept_keyword("provenance")
        distinct = self.accept_keyword("distinct")
        items = self._parse_select_list()
        sources: tuple = ()
        where = None
        group_by: tuple = ()
        having = None
        order_by: tuple = ()
        limit = None
        offset = None
        if self.accept_keyword("from"):
            sources = self._parse_from_clause()
        if self.accept_keyword("where"):
            where = self.parse_expression()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_exprs = [self.parse_expression()]
            while self.accept_punct(","):
                group_exprs.append(self.parse_expression())
            group_by = tuple(group_exprs)
        if self.accept_keyword("having"):
            having = self.parse_expression()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_items = [self._parse_order_item()]
            while self.accept_punct(","):
                order_items.append(self._parse_order_item())
            order_by = tuple(order_items)
        if self.accept_keyword("limit"):
            limit = self._parse_int_literal()
        if self.accept_keyword("offset"):
            offset = self._parse_int_literal()
        return ast.Select(
            items=items, sources=sources, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit, offset=offset,
            distinct=distinct, provenance=provenance)

    def _parse_int_literal(self) -> int:
        token = self.peek()
        if token.kind is not TokenKind.INTEGER:
            raise SQLSyntaxError(
                f"expected integer, found {token.text!r}", token.position)
        self.advance()
        return int(token.text)

    def _parse_select_list(self) -> tuple[ast.SelectItem, ...]:
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        # bare * or alias.*
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        if (token.kind is TokenKind.IDENTIFIER
                and self.peek(1).kind is TokenKind.PUNCT
                and self.peek(1).text == "."
                and self.peek(2).kind is TokenKind.OPERATOR
                and self.peek(2).text == "*"):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(qualifier=token.text))
        expression = self.parse_expression()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.peek().kind is TokenKind.IDENTIFIER:
            alias = self.expect_identifier()
        return ast.SelectItem(expression, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expression, descending)

    def _parse_from_clause(self) -> tuple:
        sources = [self._parse_join_source()]
        while self.accept_punct(","):
            sources.append(self._parse_join_source())
        return tuple(sources)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self.expect_identifier()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier()
        elif self.peek().kind is TokenKind.IDENTIFIER:
            alias = self.expect_identifier()
        return ast.TableRef(name, alias)

    def _parse_join_source(self):
        source = self._parse_table_ref()
        while True:
            token = self.peek()
            if token.is_keyword("join") or token.is_keyword("inner"):
                self.accept_keyword("inner")
                self.expect_keyword("join")
                right = self._parse_table_ref()
                self.expect_keyword("on")
                condition = self.parse_expression()
                source = ast.Join(source, right, condition, "inner")
            elif token.is_keyword("left"):
                self.advance()
                self.accept_keyword("outer")
                self.expect_keyword("join")
                right = self._parse_table_ref()
                self.expect_keyword("on")
                condition = self.parse_expression()
                source = ast.Join(source, right, condition, "left")
            elif token.is_keyword("cross"):
                self.advance()
                self.expect_keyword("join")
                right = self._parse_table_ref()
                source = ast.Join(source, right, None, "cross")
            else:
                return source

    # -- INSERT / UPDATE / DELETE ----------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier()
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier()]
            while self.accept_punct(","):
                names.append(self.expect_identifier())
            self.expect_punct(")")
            columns = tuple(names)
        if self.peek().is_keyword("select"):
            query = self.parse_select()
            return ast.Insert(table, columns, (), query)
        self.expect_keyword("values")
        rows = [self._parse_value_row()]
        while self.accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, columns, tuple(rows), None)

    def _parse_value_row(self) -> tuple[ast.Expression, ...]:
        self.expect_punct("(")
        values = [self.parse_expression()]
        while self.accept_punct(","):
            values.append(self.parse_expression())
        self.expect_punct(")")
        return tuple(values)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_identifier()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        name = self.expect_identifier()
        token = self.peek()
        if token.kind is not TokenKind.OPERATOR or token.text != "=":
            raise SQLSyntaxError("expected '=' in SET clause", token.position)
        self.advance()
        return name, self.parse_expression()

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return ast.Delete(table, where)

    # -- DDL --------------------------------------------------------------------

    def parse_create_table(self) -> ast.Statement:
        self.expect_keyword("create")
        if self.accept_keyword("index"):
            return self._parse_create_index()
        self.expect_keyword("table")
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        table = self.expect_identifier()
        self.expect_punct("(")
        columns = [self._parse_column_def()]
        while self.accept_punct(","):
            columns.append(self._parse_column_def())
        self.expect_punct(")")
        return ast.CreateTable(table, tuple(columns), if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier()
        type_parts = [self.expect_identifier()]
        # multi-word types: double precision, character varying
        if (type_parts[0].lower() in ("double", "character")
                and self.peek().kind is TokenKind.IDENTIFIER
                and self.peek().text.lower() in ("precision", "varying")):
            type_parts.append(self.expect_identifier())
        type_name = " ".join(type_parts)
        # optional length: varchar(25), decimal(15, 2)
        if self.accept_punct("("):
            self._parse_int_literal()
            if self.accept_punct(","):
                self._parse_int_literal()
            self.expect_punct(")")
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                not_null = True
            elif self.accept_keyword("primary"):
                self.expect_keyword("key")
                primary_key = True
            else:
                break
        return ast.ColumnDef(name, type_name, not_null, primary_key)

    def _parse_create_index(self) -> ast.CreateIndex:
        if_not_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("not")
            self.expect_keyword("exists")
            if_not_exists = True
        name = self.expect_identifier()
        self.expect_keyword("on")
        table = self.expect_identifier()
        self.expect_punct("(")
        column = self.expect_identifier()
        self.expect_punct(")")
        return ast.CreateIndex(name, table, column, if_not_exists)

    def parse_drop_table(self) -> ast.Statement:
        self.expect_keyword("drop")
        if self.accept_keyword("index"):
            if_exists = False
            if self.accept_keyword("if"):
                self.expect_keyword("exists")
                if_exists = True
            return ast.DropIndex(self.expect_identifier(), if_exists)
        self.expect_keyword("table")
        if_exists = False
        if self.accept_keyword("if"):
            self.expect_keyword("exists")
            if_exists = True
        table = self.expect_identifier()
        return ast.DropTable(table, if_exists)

    def parse_copy(self) -> ast.Statement:
        self.expect_keyword("copy")
        table = self.expect_identifier()
        direction = self.peek()
        if self.accept_keyword("from"):
            to = False
        elif self.accept_keyword("to"):
            to = True
        else:
            raise SQLSyntaxError(
                "expected FROM or TO in COPY", direction.position)
        path_token = self.peek()
        if path_token.kind is not TokenKind.STRING:
            raise SQLSyntaxError(
                "expected quoted path in COPY", path_token.position)
        self.advance()
        header = False
        delimiter = ","
        self.accept_keyword("with")
        while True:
            if self.accept_keyword("csv"):
                continue
            if self.accept_keyword("header"):
                header = True
                continue
            if self.accept_keyword("delimiter"):
                delim_token = self.peek()
                if delim_token.kind is not TokenKind.STRING:
                    raise SQLSyntaxError(
                        "expected quoted delimiter", delim_token.position)
                self.advance()
                delimiter = delim_token.text
                continue
            break
        if to:
            return ast.CopyTo(table, path_token.text, header, delimiter)
        return ast.CopyFrom(table, path_token.text, header, delimiter)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept_keyword("or"):
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept_keyword("and"):
            right = self._parse_not()
            left = ast.BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text in _COMPARISONS:
            self.advance()
            right = self._parse_additive()
            op = "<>" if token.text == "!=" else token.text
            return ast.BinaryOp(op, left, right)
        negated = False
        if token.is_keyword("not"):
            nxt = self.peek(1)
            if nxt.is_keyword("between") or nxt.is_keyword("like") or nxt.is_keyword("in"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("between"):
            self.advance()
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated)
        if token.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            if self.peek().is_keyword("select"):
                subquery = self.parse_select()
                self.expect_punct(")")
                return ast.InSubquery(left, subquery, negated)
            items = [self.parse_expression()]
            while self.accept_punct(","):
                items.append(self.parse_expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if token.is_keyword("is"):
            self.advance()
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-", "||"):
                self.advance()
                right = self._parse_multiplicative()
                left = ast.BinaryOp(token.text, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text in ("*", "/", "%"):
                self.advance()
                right = self._parse_unary()
                left = ast.BinaryOp(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text == "-":
            self.advance()
            operand = self._parse_unary()
            # fold unary minus into numeric literals so that -1 is
            # Literal(-1), making parse/render a fixed point
            if (isinstance(operand, ast.Literal)
                    and isinstance(operand.value, (int, float))
                    and not isinstance(operand.value, bool)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if token.kind is TokenKind.OPERATOR and token.text == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.INTEGER:
            self.advance()
            return ast.Literal(int(token.text))
        if token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.Literal(float(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(token.text)
        if token.kind is TokenKind.PARAM:
            self.advance()
            index = int(token.text)
            if index < 1:
                raise SQLSyntaxError(
                    f"parameter ${index} is out of range (parameters "
                    f"are numbered from $1)", token.position)
            return ast.Parameter(index)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if self.accept_punct("("):
            if self.peek().is_keyword("select"):
                subquery = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(subquery)
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_identifier_expression()
        raise SQLSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position)

    def _parse_case(self) -> ast.Expression:
        self.expect_keyword("case")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            self.expect_keyword("then")
            value = self.parse_expression()
            branches.append((condition, value))
        if not branches:
            raise SQLSyntaxError("CASE requires at least one WHEN",
                                 self.peek().position)
        otherwise = None
        if self.accept_keyword("else"):
            otherwise = self.parse_expression()
        self.expect_keyword("end")
        return ast.CaseWhen(tuple(branches), otherwise)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self.expect_identifier()
        # function call
        if self.peek().kind is TokenKind.PUNCT and self.peek().text == "(":
            self.advance()
            distinct = self.accept_keyword("distinct")
            args: list[ast.Expression] = []
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text == "*":
                self.advance()
                args.append(ast.Star())
            elif not (token.kind is TokenKind.PUNCT and token.text == ")"):
                args.append(self.parse_expression())
                while self.accept_punct(","):
                    args.append(self.parse_expression())
            self.expect_punct(")")
            return ast.FunctionCall(name.lower(), tuple(args), distinct)
        # qualified column
        if self.accept_punct("."):
            column = self.expect_identifier()
            return ast.ColumnRef(column, qualifier=name)
        return ast.ColumnRef(name)


def parse_sql(sql: str) -> list[ast.Statement]:
    """Parse SQL text into a list of statements."""
    return _Parser(sql).parse_statements()


def parse_one(sql: str) -> ast.Statement:
    """Parse SQL text that must contain exactly one statement."""
    statements = parse_sql(sql)
    if len(statements) != 1:
        raise SQLSyntaxError(
            f"expected exactly one statement, found {len(statements)}")
    return statements[0]


def parse_expression(sql: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and tools)."""
    parser = _Parser(sql)
    expression = parser.parse_expression()
    token = parser.peek()
    if token.kind is not TokenKind.EOF:
        raise SQLSyntaxError(
            f"trailing input after expression: {token.text!r}", token.position)
    return expression
