"""Positional statement parameters (``$1``, ``$2``, ...).

Prepared statements carry parameter placeholders through the parser as
:class:`repro.db.sql.ast.Parameter` nodes. This module provides the
three operations the engine and wire layer need:

* :func:`max_parameter_index` — how many values a statement expects;
* :func:`bind_statement` — substitute literal values into the AST
  (used for non-cacheable statements and DML, where the bound
  statement runs through the ordinary execution path);
* :func:`bind_sql_text` — substitute rendered literals into the raw
  SQL *text*, producing the canonical statement the monitor records,
  so a prepared execution replays byte-identically to the equivalent
  text-protocol execution.

All AST nodes are frozen dataclasses, so substitution is a generic
structural rewrite that shares unchanged subtrees.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.db.sql import ast
from repro.db.sql.lexer import TokenKind, tokenize
from repro.db.sql.render import render_literal
from repro.errors import ExecutionError


def _rewrite_value(value: Any, fn) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _rewrite_node(value, fn)
    if isinstance(value, tuple):
        items = tuple(_rewrite_value(item, fn) for item in value)
        if any(new is not old for new, old in zip(items, value)):
            return items
        return value
    if isinstance(value, list):
        items = [_rewrite_value(item, fn) for item in value]
        if any(new is not old for new, old in zip(items, value)):
            return items
        return value
    return value


def _rewrite_node(node: Any, fn) -> Any:
    changes = {}
    for field in dataclasses.fields(node):
        old = getattr(node, field.name)
        new = _rewrite_value(old, fn)
        if new is not old:
            changes[field.name] = new
    if changes:
        node = dataclasses.replace(node, **changes)
    if isinstance(node, ast.Expression):
        return fn(node)
    return node


def _visit_value(value: Any, fn) -> None:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fn(value)
        for field in dataclasses.fields(value):
            _visit_value(getattr(value, field.name), fn)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _visit_value(item, fn)


def max_parameter_index(statement: Any) -> int:
    """Highest ``$n`` index referenced anywhere in the statement (0 if
    the statement takes no parameters)."""
    highest = 0

    def note(node: Any) -> None:
        nonlocal highest
        if isinstance(node, ast.Parameter):
            highest = max(highest, node.index)

    _visit_value(statement, note)
    return highest


def bind_statement(statement: Any, values: Sequence[Any]) -> Any:
    """Return a copy of ``statement`` with every :class:`ast.Parameter`
    replaced by the matching literal value (1-based indexing)."""

    def substitute(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.Parameter):
            if node.index > len(values):
                raise ExecutionError(
                    f"statement references ${node.index} but only "
                    f"{len(values)} parameter value(s) were bound")
            return ast.Literal(values[node.index - 1])
        return node

    return _rewrite_node(statement, substitute)


def bind_sql_text(sql: str, values: Sequence[Any]) -> str:
    """Substitute rendered literal values for ``$n`` placeholders in raw
    SQL text. The lexer drives the scan, so placeholders inside string
    literals, comments, and quoted identifiers are left untouched."""
    replacements = []
    for token in tokenize(sql):
        if token.kind is TokenKind.PARAM:
            index = int(token.text)
            if index < 1 or index > len(values):
                raise ExecutionError(
                    f"statement references ${index} but only "
                    f"{len(values)} parameter value(s) were bound")
            end = token.position + 1 + len(token.text)
            replacements.append(
                (token.position, end, render_literal(values[index - 1])))
    for start, end, text in reversed(replacements):
        sql = sql[:start] + text + sql[end:]
    return sql
