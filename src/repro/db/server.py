"""The database server: owns a Database and answers protocol frames.

One :class:`DBServer` serves any number of in-process connections. Its
:meth:`handle_wire` method consumes and produces *encoded* frames
(JSON text), which is the transport handed to clients — every exchange
pays real serialization, like a socket would, and gives interceptors a
faithful wire view.

The wire boundary is a hard error wall: :meth:`handle_wire` never lets
an exception escape. Malformed frames, traffic after :meth:`shutdown`,
statement failures, even unexpected internal errors all come back as
protocol ``error`` frames (transient ones flagged so clients may
retry). The only thing that crosses the wall is a simulated crash from
the fault-injection harness, which — like a real ``kill -9`` — no
handler may absorb.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.clockwork import LogicalClock
from repro.db import protocol
from repro.db.engine import Database
from repro.db.mvcc import Session
from repro.errors import (
    DatabaseError,
    ProtocolError,
    ReproError,
    StatementTimeout,
    TransientError,
    WriteConflictError,
)


def _frame_transient(exc: Exception) -> bool:
    """Should an error frame carry the ``transient`` retry flag?

    A :class:`WriteConflictError` is transient for the *transaction*,
    not for the frame: resending the failed statement verbatim would
    land outside any transaction (the server already rolled it back).
    Clients retry it through
    :meth:`repro.db.client.DBClient.run_transaction` instead.
    """
    return (isinstance(exc, TransientError)
            and not isinstance(exc, WriteConflictError))


class DBServer:
    """A single-process database server.

    ``statement_timeout`` is a per-statement wall-time budget in
    seconds; a statement that overruns it answers with a
    ``StatementTimeout`` error frame instead of its result. The clock
    used to measure it is injectable (``timer``) so tests — and the
    fault harness — can drive timeouts deterministically.
    """

    def __init__(self, database: Database | None = None,
                 data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 statement_timeout: float | None = None,
                 timer: Callable[[], float] = time.monotonic) -> None:
        if database is not None and data_directory is not None:
            raise ProtocolError(
                "pass either a Database or a data_directory, not both")
        if database is None:
            database = Database(data_directory=data_directory, clock=clock)
        self.database = database
        self.statement_timeout = statement_timeout
        self.timer = timer
        self._connections: dict[int, str] = {}
        self._sessions: dict[int, Session] = {}
        self._next_connection_id = 1
        self.started = True

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Checkpoint data files and refuse further traffic.

        Open transactions of still-connected clients are rolled back
        first — exactly what a crashed server's recovery would decide,
        since nothing uncommitted ever reached the WAL.

        Idempotent: a second shutdown is a no-op, and later frames get
        a ``ConnectionClosedError`` error frame rather than an
        exception.
        """
        if not self.started:
            return
        for connection_id in sorted(self._sessions):
            self.database.abort_session(self._sessions[connection_id])
        self.database.close()
        self.started = False
        self._connections.clear()
        self._sessions.clear()

    # -- frame handling ----------------------------------------------------------

    def transport(self) -> Callable[[str], str]:
        """The wire-level transport handed to clients."""
        return self.handle_wire

    def handle_wire(self, request_text: str) -> str:
        """Handle one encoded frame, returning an encoded response.

        Never raises: whatever goes wrong becomes an ``error`` frame.
        (A :class:`repro.faults.SimulatedCrash` still propagates — it
        derives from BaseException precisely so that no server-side
        handler can survive it.)
        """
        try:
            request = protocol.decode_frame(request_text)
        except ProtocolError as exc:
            return protocol.encode_frame(
                protocol.error_frame("ProtocolError", str(exc)))
        try:
            response = self.handle(request)
        except Exception as exc:  # the wall: no raw exception on the wire
            response = protocol.error_frame(
                type(exc).__name__, str(exc),
                transient=_frame_transient(exc))
        return protocol.encode_frame(response)

    def handle_wire_many(self, request_texts: list[str]) -> list[str]:
        """Handle a batch of encoded frames under one group-commit
        window: each transaction still appends its own WAL batch, but
        they all share a single fsync at the end of the batch —
        responses are only returned once that durable barrier holds."""
        with self.database.group_commit():
            return [self.handle_wire(text) for text in request_texts]

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one decoded frame, returning a decoded response."""
        if not self.started:
            return protocol.error_frame(
                "ConnectionClosedError", "server is shut down")
        kind = request.get("frame")
        try:
            if kind == "connect":
                return self._handle_connect(request)
            if kind == "query":
                return self._handle_query(request)
            if kind == "close":
                return self._handle_close(request)
        except DatabaseError as exc:
            frame = protocol.error_frame(
                type(exc).__name__, str(exc),
                transient=_frame_transient(exc))
            self._attach_txn_status(frame, request)
            return frame
        except ReproError as exc:  # pragma: no cover - defensive
            return protocol.error_frame(type(exc).__name__, str(exc))
        return protocol.error_frame(
            "ProtocolError", f"unknown frame type {kind!r}")

    def _attach_txn_status(self, frame: dict[str, Any],
                           request: dict[str, Any]) -> None:
        """Stamp a response with the connection's transaction state so
        clients track BEGIN/COMMIT/conflict-abort without guessing."""
        session = self._sessions.get(request.get("connection_id"))
        if session is not None:
            frame["txn"] = "open" if session.in_transaction else "idle"

    def _handle_connect(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        self._connections[connection_id] = str(
            request.get("process_id", "unknown"))
        self._sessions[connection_id] = self.database.create_session(
            f"conn-{connection_id}")
        return protocol.connected_frame(connection_id)

    def _require_connection(self, request: dict[str, Any]) -> int:
        connection_id = request.get("connection_id")
        if connection_id not in self._connections:
            raise ProtocolError(f"unknown connection {connection_id!r}")
        return connection_id

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._require_connection(request)
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("query frame is missing its sql text")
        session = self._sessions[connection_id]
        started = self.timer()
        with self.database.use_session(session):
            result = self.database.execute(
                sql, provenance=bool(request.get("provenance")))
        elapsed = self.timer() - started
        if (self.statement_timeout is not None
                and elapsed > self.statement_timeout):
            raise StatementTimeout(
                f"statement exceeded the {self.statement_timeout}s "
                f"budget (took {elapsed:.6f}s)")
        if "analyze" in result.stats:
            # EXPLAIN ANALYZE results also report the server-side wall
            # time, so clients can see wire overhead vs execution time
            result.stats["server"] = {"seconds": elapsed}
        frame = protocol.result_to_wire(result)
        self._attach_txn_status(frame, request)
        return frame

    def _handle_close(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._require_connection(request)
        del self._connections[connection_id]
        session = self._sessions.pop(connection_id, None)
        if session is not None:
            # a vanished client must not pin its snapshot (or leave a
            # half-done transaction ambiguous): roll it back
            self.database.abort_session(session)
        return protocol.closed_frame()

    @property
    def open_connections(self) -> int:
        return len(self._connections)
