"""The database server: owns a Database and answers protocol frames.

One :class:`DBServer` serves any number of in-process connections. Its
:meth:`handle_wire` method consumes and produces *encoded* frames
(JSON text), which is the transport handed to clients — every exchange
pays real serialization, like a socket would, and gives interceptors a
faithful wire view.

The wire boundary is a hard error wall: :meth:`handle_wire` never lets
an exception escape. Malformed frames, traffic after :meth:`shutdown`,
statement failures, even unexpected internal errors all come back as
protocol ``error`` frames (transient ones flagged so clients may
retry). The only thing that crosses the wall is a simulated crash from
the fault-injection harness, which — like a real ``kill -9`` — no
handler may absorb.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.clockwork import LogicalClock
from repro.db import protocol
from repro.db.engine import Database
from repro.errors import (
    DatabaseError,
    ProtocolError,
    ReproError,
    StatementTimeout,
    TransientError,
)


class DBServer:
    """A single-process database server.

    ``statement_timeout`` is a per-statement wall-time budget in
    seconds; a statement that overruns it answers with a
    ``StatementTimeout`` error frame instead of its result. The clock
    used to measure it is injectable (``timer``) so tests — and the
    fault harness — can drive timeouts deterministically.
    """

    def __init__(self, database: Database | None = None,
                 data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 statement_timeout: float | None = None,
                 timer: Callable[[], float] = time.monotonic) -> None:
        if database is not None and data_directory is not None:
            raise ProtocolError(
                "pass either a Database or a data_directory, not both")
        if database is None:
            database = Database(data_directory=data_directory, clock=clock)
        self.database = database
        self.statement_timeout = statement_timeout
        self.timer = timer
        self._connections: dict[int, str] = {}
        self._next_connection_id = 1
        self.started = True

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Checkpoint data files and refuse further traffic.

        Idempotent: a second shutdown is a no-op, and later frames get
        a ``ConnectionClosedError`` error frame rather than an
        exception.
        """
        if not self.started:
            return
        self.database.close()
        self.started = False
        self._connections.clear()

    # -- frame handling ----------------------------------------------------------

    def transport(self) -> Callable[[str], str]:
        """The wire-level transport handed to clients."""
        return self.handle_wire

    def handle_wire(self, request_text: str) -> str:
        """Handle one encoded frame, returning an encoded response.

        Never raises: whatever goes wrong becomes an ``error`` frame.
        (A :class:`repro.faults.SimulatedCrash` still propagates — it
        derives from BaseException precisely so that no server-side
        handler can survive it.)
        """
        try:
            request = protocol.decode_frame(request_text)
        except ProtocolError as exc:
            return protocol.encode_frame(
                protocol.error_frame("ProtocolError", str(exc)))
        try:
            response = self.handle(request)
        except Exception as exc:  # the wall: no raw exception on the wire
            response = protocol.error_frame(
                type(exc).__name__, str(exc),
                transient=isinstance(exc, TransientError))
        return protocol.encode_frame(response)

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one decoded frame, returning a decoded response."""
        if not self.started:
            return protocol.error_frame(
                "ConnectionClosedError", "server is shut down")
        kind = request.get("frame")
        try:
            if kind == "connect":
                return self._handle_connect(request)
            if kind == "query":
                return self._handle_query(request)
            if kind == "close":
                return self._handle_close(request)
        except DatabaseError as exc:
            return protocol.error_frame(
                type(exc).__name__, str(exc),
                transient=isinstance(exc, TransientError))
        except ReproError as exc:  # pragma: no cover - defensive
            return protocol.error_frame(type(exc).__name__, str(exc))
        return protocol.error_frame(
            "ProtocolError", f"unknown frame type {kind!r}")

    def _handle_connect(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        self._connections[connection_id] = str(
            request.get("process_id", "unknown"))
        return protocol.connected_frame(connection_id)

    def _require_connection(self, request: dict[str, Any]) -> int:
        connection_id = request.get("connection_id")
        if connection_id not in self._connections:
            raise ProtocolError(f"unknown connection {connection_id!r}")
        return connection_id

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        self._require_connection(request)
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("query frame is missing its sql text")
        started = self.timer()
        result = self.database.execute(
            sql, provenance=bool(request.get("provenance")))
        elapsed = self.timer() - started
        if (self.statement_timeout is not None
                and elapsed > self.statement_timeout):
            raise StatementTimeout(
                f"statement exceeded the {self.statement_timeout}s "
                f"budget (took {elapsed:.6f}s)")
        if "analyze" in result.stats:
            # EXPLAIN ANALYZE results also report the server-side wall
            # time, so clients can see wire overhead vs execution time
            result.stats["server"] = {"seconds": elapsed}
        return protocol.result_to_wire(result)

    def _handle_close(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._require_connection(request)
        del self._connections[connection_id]
        return protocol.closed_frame()

    @property
    def open_connections(self) -> int:
        return len(self._connections)
