"""The database server: owns a Database and answers protocol frames.

One :class:`DBServer` serves any number of in-process connections. Its
:meth:`handle_wire` method consumes and produces *encoded* frames
(JSON text), which is the transport handed to clients — every exchange
pays real serialization, like a socket would, and gives interceptors a
faithful wire view.

The wire boundary is a hard error wall: :meth:`handle_wire` never lets
an exception escape. Malformed frames, traffic after :meth:`shutdown`,
statement failures, even unexpected internal errors all come back as
protocol ``error`` frames (transient ones flagged so clients may
retry). The only thing that crosses the wall is a simulated crash from
the fault-injection harness, which — like a real ``kill -9`` — no
handler may absorb.

The serving fast path (protocol version 2) adds four per-connection
facilities on top of plain query frames:

* **prepared statements** — ``prepare`` parses and classifies once;
  ``bind-execute`` binds ``$n`` values and runs the (plan-cached)
  template, skipping parse and plan per call;
* **pipelining** — a ``pipeline`` envelope executes N frames in one
  exchange under one group-commit window (per-frame error isolation,
  one shared WAL fsync);
* **streamed result sets** — a ``fetch`` budget on query/bind-execute
  answers with a cursor id plus the first chunk; ``fetch`` /
  ``close-cursor`` frames drain it under the pinned snapshot;
* **result cache** — read-only statements are served from
  :class:`ResultCache`, keyed on (normalized SQL, params, catalog
  version, per-table MVCC commit watermarks), so invalidation falls
  out of the commit bookkeeping and hits are snapshot-correct by
  construction.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional

from repro.clockwork import LogicalClock
from repro.db import protocol
from repro.db.engine import Cursor, Database, PlanCache, PreparedStatement
from repro.db.mvcc import MVCCState, Session
from repro.errors import (
    DatabaseError,
    GroupCommitError,
    OverloadedError,
    ProtocolError,
    ReproError,
    StatementTimeout,
    TransientError,
    WriteConflictError,
)


def _frame_transient(exc: Exception) -> bool:
    """Should an error frame carry the ``transient`` retry flag?

    A :class:`WriteConflictError` is transient for the *transaction*,
    not for the frame: resending the failed statement verbatim would
    land outside any transaction (the server already rolled it back).
    Clients retry it through
    :meth:`repro.db.client.DBClient.run_transaction` instead.
    """
    return (isinstance(exc, TransientError)
            and not isinstance(exc, WriteConflictError))


def _looks_like_select(sql: str) -> bool:
    """Cheap syntactic gate for result-cache consultation. Only plain
    SELECTs can produce cacheable results, so other statements skip
    the lookup entirely (and never inflate the miss counter)."""
    return sql.lstrip().lower().startswith("select")


class ResultCache:
    """Read-through cache of ``result`` frames for read-only statements.

    An entry records, besides the frame, the ``catalog.version`` and
    the per-source-table MVCC commit watermarks at store time. A
    lookup is a hit only when every watermark (and the catalog
    version) still matches — i.e. the cached frame reflects the
    *latest committed state* of every table it was derived from.
    Invalidation therefore falls out of the commit map: any commit to
    a source table moves that table's watermark and strands the entry.

    Snapshot correctness inside an open transaction needs one more
    check: the transaction's snapshot must actually *see* the latest
    commit to every source table (``watermark <= snapshot``) and must
    not have private writes overlaying them. When either fails, the
    lookup misses — without evicting, since the entry is still right
    for current-state readers — and the statement executes under the
    transaction's own snapshot. Results computed inside a transaction
    are never stored.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ProtocolError("result cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries: OrderedDict[tuple, dict] = OrderedDict()

    @staticmethod
    def key(sql: str, params: tuple, provenance: bool) -> tuple:
        return (PlanCache.normalize(sql), tuple(params), bool(provenance))

    def _stale(self, entry: dict, mvcc: MVCCState,
               catalog_version: int) -> bool:
        if entry["catalog_version"] != catalog_version:
            return True
        return any(mvcc.watermark(table) != watermark
                   for table, watermark in entry["watermarks"].items())

    def lookup(self, key: tuple, mvcc: MVCCState, catalog_version: int,
               session: Session) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self._stale(entry, mvcc, catalog_version):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        context = session.txn
        if context is not None:
            visible = all(watermark <= context.snapshot
                          for watermark in entry["watermarks"].values())
            overlaid = any(
                not overlay.empty
                for table, overlay in context.overlays.items()
                if table in entry["watermarks"])
            if not visible or overlaid:
                # correct for current-state readers, not for this
                # snapshot: bypass without evicting
                self.misses += 1
                return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry["frame"]

    def store(self, key: tuple, frame: dict, source_tables: list[str],
              mvcc: MVCCState, catalog_version: int) -> None:
        self._entries[key] = {
            "frame": frame,
            "catalog_version": catalog_version,
            "watermarks": {table: mvcc.watermark(table)
                           for table in source_tables},
        }
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def revalidate(self, mvcc: MVCCState, catalog_version: int) -> int:
        """Eagerly evict every entry stranded by a commit or DDL; the
        return value is the number of invalidations, which is exact:
        only entries whose source-table watermarks (or the catalog
        version) actually moved are dropped."""
        stale = [key for key, entry in self._entries.items()
                 if self._stale(entry, mvcc, catalog_version)]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "size": len(self._entries)}

    def __len__(self) -> int:
        return len(self._entries)


class AdmissionControl:
    """Token-bucket admission control: the server's bounded work queue.

    Each work-bearing frame (query, bind-execute, fetch; pipeline
    envelopes charge per inner frame) spends one token; the bucket
    refills at ``refill_per_second`` up to ``capacity``. When the
    bucket is dry the frame is *shed before any execution* — no
    statement runs, no clock tick is consumed — with an
    ``OverloadedError`` frame carrying a ``retry_after`` hint sized to
    when the bucket will hold a token again. The timer is injectable
    so tests and the chaos harness drive load deterministically.
    """

    def __init__(self, capacity: int, refill_per_second: float,
                 timer: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1:
            raise ProtocolError("admission capacity must be positive")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self.timer = timer
        self.tokens = float(capacity)
        self._last = timer()
        self.admitted = 0
        self.shed = 0

    def try_admit(self, cost: float = 1.0) -> Optional[float]:
        """None when admitted; otherwise the retry-after hint in
        seconds until ``cost`` tokens will have refilled."""
        now = self.timer()
        if now > self._last and self.refill_per_second > 0:
            self.tokens = min(self.capacity,
                              self.tokens + (now - self._last)
                              * self.refill_per_second)
        self._last = now
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            return None
        self.shed += 1
        if self.refill_per_second <= 0:
            return 1.0
        return max((cost - self.tokens) / self.refill_per_second, 0.001)

    def counters(self) -> dict[str, Any]:
        return {"admitted": self.admitted, "shed": self.shed,
                "tokens": self.tokens, "capacity": self.capacity}


class _CursorState:
    """A server-side cursor plus exactly-once chunk-replay bookkeeping.

    ``served`` counts rows handed to this connection (including the
    opening chunk); ``last_frame`` retains the most recent chunk so a
    fetch whose ``position`` shows the previous response never arrived
    is answered by replaying that chunk instead of silently skipping
    the rows the dropped frame carried.
    """

    __slots__ = ("cursor", "served", "last_start", "last_frame")

    def __init__(self, cursor: Cursor, first_chunk_rows: int) -> None:
        self.cursor = cursor
        self.served = first_chunk_rows
        self.last_start = 0
        self.last_frame: Optional[dict] = None


class _ConnectionState:
    """Everything the server tracks per wire connection."""

    __slots__ = ("process_id", "session", "protocol_version", "prepared",
                 "cursors", "finished_chunks", "open_frames",
                 "next_cursor_id", "frames_served", "bytes_in",
                 "bytes_out", "last_active")

    # final chunks / opening frames retained per connection for
    # lost-response replay
    FINISHED_RETAINED = 8

    def __init__(self, process_id: str, session: Session,
                 protocol_version: int, last_active: float = 0.0) -> None:
        self.process_id = process_id
        self.session = session
        self.protocol_version = protocol_version
        self.prepared: dict[str, PreparedStatement] = {}
        self.cursors: dict[int, _CursorState] = {}
        # cursor_id -> {"start", "frame"}: the done-chunk of recently
        # exhausted cursors, so a retried final fetch can be answered
        self.finished_chunks: "OrderedDict[int, dict]" = OrderedDict()
        # stream token -> retained opening cursor frame: a retried
        # stream open (its response was lost before the client learned
        # the cursor id) replays the original frame instead of opening
        # a second cursor whose snapshot pin nobody would ever release
        self.open_frames: "OrderedDict[str, dict]" = OrderedDict()
        self.next_cursor_id = 1
        self.frames_served = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.last_active = last_active

    def retain_finished(self, cursor_id: int, start: int,
                        frame: dict) -> None:
        self.finished_chunks[cursor_id] = {"start": start,
                                           "frame": frame}
        while len(self.finished_chunks) > self.FINISHED_RETAINED:
            self.finished_chunks.popitem(last=False)

    def retain_open(self, token: str, frame: dict) -> None:
        self.open_frames[token] = frame
        while len(self.open_frames) > self.FINISHED_RETAINED:
            self.open_frames.popitem(last=False)

    def reap_cursors(self) -> None:
        """Close cursors whose pinning transaction ended (commit or
        rollback tears down the snapshot they were reading)."""
        dead = [cursor_id for cursor_id, holder in self.cursors.items()
                if holder.cursor.defunct]
        for cursor_id in dead:
            self.cursors.pop(cursor_id).cursor.close()

    def close_cursors(self) -> None:
        for holder in self.cursors.values():
            holder.cursor.close()
        self.cursors.clear()
        self.finished_chunks.clear()
        self.open_frames.clear()


class DBServer:
    """A single-process database server.

    ``statement_timeout`` is a per-statement wall-time budget in
    seconds; a statement that overruns it answers with a
    ``StatementTimeout`` error frame instead of its result. The budget
    is enforced *cooperatively during execution* — the engine checks
    the deadline between row batches — so a runaway scan is cancelled
    mid-statement rather than merely reported late. The clock used to
    measure it is injectable (``timer``) so tests — and the fault
    harness — can drive timeouts deterministically.
    """

    def __init__(self, database: Database | None = None,
                 data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 statement_timeout: float | None = None,
                 timer: Callable[[], float] = time.monotonic,
                 result_cache_size: int = 128,
                 result_cache_max_rows: int | None = None,
                 admission: AdmissionControl | None = None,
                 max_pipeline_depth: int | None = None,
                 max_cursors_per_connection: int | None = None,
                 connection_timeout: float | None = None,
                 retry_after_hint: float = 0.05) -> None:
        if database is not None and data_directory is not None:
            raise ProtocolError(
                "pass either a Database or a data_directory, not both")
        if database is None:
            database = Database(data_directory=data_directory, clock=clock)
        self.database = database
        self.statement_timeout = statement_timeout
        self.timer = timer
        self.result_cache = ResultCache(result_cache_size)
        # memory-pressure limit: results wider than this are served
        # but never cached (one giant SELECT must not evict the cache)
        self.result_cache_max_rows = result_cache_max_rows
        self.admission = admission
        self.max_pipeline_depth = max_pipeline_depth
        self.max_cursors_per_connection = max_cursors_per_connection
        # connections idle longer than this are reaped — their cursors
        # closed and transactions rolled back — so a dead client can
        # never pin MVCC history forever
        self.connection_timeout = connection_timeout
        self.retry_after_hint = retry_after_hint
        self._states: dict[int, _ConnectionState] = {}
        self._next_connection_id = 1
        self.started = True
        self.draining = False
        # True while dispatching a pipeline envelope's inner frames —
        # they were admitted as one unit with the envelope
        self._in_pipeline = False
        # server-wide observability counters (per-connection ones live
        # on the _ConnectionState); pipeline envelopes count both the
        # envelope and each inner frame
        self.frames_served = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.connections_reaped = 0
        self.drain_rejections = 0
        self.group_aborts = 0

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Checkpoint data files and refuse further traffic.

        Open cursors are closed and open transactions of
        still-connected clients are rolled back first — exactly what a
        crashed server's recovery would decide, since nothing
        uncommitted ever reached the WAL.

        Idempotent: a second shutdown is a no-op, and later frames get
        a ``ConnectionClosedError`` error frame rather than an
        exception.
        """
        if not self.started:
            return
        for connection_id in sorted(self._states):
            state = self._states[connection_id]
            state.close_cursors()
            self.database.abort_session(state.session)
        self.database.close()
        self.started = False
        self._states.clear()

    def drain(self) -> None:
        """Enter drain mode: finish in-flight work, reject new work.

        Open transactions may still run statements and COMMIT, open
        cursors may still be fetched and closed, connections may
        disconnect — but new connections, new statements on idle
        sessions, and new prepares are rejected with a retryable
        ``ServerDrainingError`` frame carrying a retry-after hint.
        Once :attr:`drained` is true, :meth:`shutdown` is a clean stop
        with nothing to abort.
        """
        self.draining = True
        # resident pool workers are idle capacity a draining server no
        # longer needs; in-flight parallel statements fall back to
        # fork-per-statement pools, which stay correct
        self.database._teardown_parallel_pool()

    def undrain(self) -> None:
        """Cancel drain mode and accept new work again."""
        self.draining = False
        database = self.database
        if (database.parallel_workers > 1
                and database.parallel_pool_factory is None
                and database.parallel_pool is None):
            # restore the resident pool the drain tore down
            database.set_parallel_workers(database.parallel_workers)

    @property
    def drained(self) -> bool:
        """True when draining and no in-flight work remains."""
        return self.draining and not any(
            state.session.in_transaction or state.cursors
            for state in self._states.values())

    def disconnect(self, connection_id: int) -> bool:
        """Forcibly tear down one connection (a dead client): close
        its cursors and roll back its open transaction so it cannot
        pin MVCC history or snapshots. Returns True if it existed."""
        state = self._states.pop(connection_id, None)
        if state is None:
            return False
        state.close_cursors()
        self.database.abort_session(state.session)
        self.connections_reaped += 1
        return True

    def reap_idle(self, now: float | None = None) -> list[int]:
        """Disconnect every connection idle past ``connection_timeout``
        (no-op when no timeout is configured). Returns the reaped ids."""
        if self.connection_timeout is None:
            return []
        now = self.timer() if now is None else now
        dead = [connection_id
                for connection_id, state in self._states.items()
                if now - state.last_active > self.connection_timeout]
        for connection_id in dead:
            self.disconnect(connection_id)
        return dead

    # -- frame handling ----------------------------------------------------------

    def transport(self) -> Callable[[str], str]:
        """The wire-level transport handed to clients."""
        return self.handle_wire

    def handle_wire(self, request_text: str) -> str:
        """Handle one encoded frame, returning an encoded response.

        Never raises: whatever goes wrong becomes an ``error`` frame.
        (A :class:`repro.faults.SimulatedCrash` still propagates — it
        derives from BaseException precisely so that no server-side
        handler can survive it.)
        """
        request: dict[str, Any] | None = None
        try:
            request = protocol.decode_frame(request_text)
        except ProtocolError as exc:
            response = protocol.error_frame("ProtocolError", str(exc))
        else:
            try:
                response = self.handle(request)
            except Exception as exc:  # the wall: no raw exception on the wire
                response = protocol.error_frame(
                    type(exc).__name__, str(exc),
                    transient=_frame_transient(exc))
        response_text = protocol.encode_frame(response)
        self.bytes_in += len(request_text)
        self.bytes_out += len(response_text)
        if request is not None:
            state = self._states.get(request.get("connection_id"))
            if state is not None:
                state.bytes_in += len(request_text)
                state.bytes_out += len(response_text)
        return response_text

    def handle_wire_many(self, request_texts: list[str]) -> list[str]:
        """Handle a batch of encoded frames under one group-commit
        window: each transaction still appends its own WAL batch, but
        they all share a single fsync at the end of the batch —
        responses are only returned once that durable barrier holds.

        If that shared fsync fails, the WAL aborts the *whole group*
        (see :meth:`repro.db.wal.WriteAheadLog.end_group`): every
        response in the batch — including ones already computed — is
        replaced by a transient ``GroupCommitError`` frame, because no
        acknowledgement in the batch is durably backed anymore."""
        try:
            with self.database.group_commit():
                return [self.handle_wire(text) for text in request_texts]
        except GroupCommitError as exc:
            self.group_aborts += 1
            error_text = protocol.encode_frame(protocol.error_frame(
                "GroupCommitError", str(exc), transient=True))
            return [error_text for _ in request_texts]

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one decoded frame, returning a decoded response."""
        if not self.started:
            return protocol.error_frame(
                "ConnectionClosedError", "server is shut down")
        kind = request.get("frame")
        self.frames_served += 1
        state = self._states.get(request.get("connection_id"))
        if state is not None:
            state.frames_served += 1
        if self.connection_timeout is not None:
            # idle tracking only consults the timer when reaping is
            # configured — scripted test timers stay untouched
            if state is not None:
                state.last_active = self.timer()
            # the requesting connection just refreshed last_active, so
            # this sweep only ever reaps *other*, genuinely idle peers
            self.reap_idle()
        if self.database.failed:
            frame = protocol.error_frame(
                "GroupCommitError",
                "the server's database failed after an aborted group "
                "commit; retry once it has been restarted",
                transient=True, retry_after=self.retry_after_hint)
            return frame
        if self.draining and self._drain_rejects(kind, state):
            self.drain_rejections += 1
            frame = protocol.error_frame(
                "ServerDrainingError",
                "server is draining; retry against another server or "
                "after the drain completes",
                transient=True, retry_after=self.retry_after_hint)
            self._attach_txn_status(frame, request)
            return frame
        if (self.admission is not None and not self._in_pipeline
                and kind in ("query", "bind-execute", "fetch",
                             "pipeline")):
            # a pipeline envelope is one admission unit, charged by its
            # depth (inner frames are exempt — the shed must happen
            # before anything executes, or a partially-executed batch
            # would not be safely retryable as a whole)
            cost = 1.0
            if kind == "pipeline":
                depth = len(request.get("frames") or ())
                cost = float(min(max(depth, 1), int(self.admission.capacity)))
            elif kind in ("query", "bind-execute"):
                # parallel statements occupy N workers: charge them N
                # tokens (clamped to capacity, like pipeline depth) so
                # a wide parallel query cannot starve point queries
                workers = self.database.parallel_workers
                if workers > 1:
                    cost = float(min(workers,
                                     int(self.admission.capacity)))
            hint = self.admission.try_admit(cost)
            if hint is not None:
                frame = protocol.error_frame(
                    "OverloadedError",
                    f"server overloaded; retry in {hint:.3f}s",
                    transient=True, retry_after=hint)
                self._attach_txn_status(frame, request)
                return frame
        try:
            if kind == "connect":
                return self._handle_connect(request)
            if kind == "query":
                return self._handle_query(request)
            if kind == "prepare":
                return self._handle_prepare(request)
            if kind == "bind-execute":
                return self._handle_bind_execute(request)
            if kind == "deallocate":
                return self._handle_deallocate(request)
            if kind == "fetch":
                return self._handle_fetch(request)
            if kind == "close-cursor":
                return self._handle_close_cursor(request)
            if kind == "pipeline":
                return self._handle_pipeline(request)
            if kind == "stats":
                return self._handle_stats(request)
            if kind == "close":
                return self._handle_close(request)
        except DatabaseError as exc:
            frame = protocol.error_frame(
                type(exc).__name__, str(exc),
                transient=_frame_transient(exc),
                retry_after=getattr(exc, "retry_after", None))
            self._attach_txn_status(frame, request)
            return frame
        except ReproError as exc:  # pragma: no cover - defensive
            return protocol.error_frame(type(exc).__name__, str(exc))
        return protocol.error_frame(
            "ProtocolError", f"unknown frame type {kind!r}")

    @staticmethod
    def _drain_rejects(kind: str,
                       state: Optional[_ConnectionState]) -> bool:
        """Which frames a draining server bounces: new connections and
        prepares always; statements and pipelines unless the session
        has an open transaction to finish. Fetch, close-cursor,
        deallocate, stats, and close always pass — they only wind
        down existing work."""
        if kind in ("connect", "prepare"):
            return True
        if kind in ("query", "bind-execute", "pipeline"):
            return state is None or not state.session.in_transaction
        return False

    def _attach_txn_status(self, frame: dict[str, Any],
                           request: dict[str, Any]) -> None:
        """Stamp a response with the connection's transaction state so
        clients track BEGIN/COMMIT/conflict-abort without guessing."""
        state = self._states.get(request.get("connection_id"))
        if state is not None:
            frame["txn"] = ("open" if state.session.in_transaction
                            else "idle")

    def _handle_connect(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        client_version = request.get("version", 1)
        if not isinstance(client_version, int) or client_version < 1:
            raise ProtocolError(
                f"bad protocol version {client_version!r}")
        negotiated = min(protocol.PROTOCOL_VERSION, client_version)
        self._states[connection_id] = _ConnectionState(
            str(request.get("process_id", "unknown")),
            self.database.create_session(f"conn-{connection_id}"),
            negotiated,
            last_active=(self.timer()
                         if self.connection_timeout is not None else 0.0))
        limits: dict[str, Any] = {}
        if self.max_pipeline_depth is not None:
            limits["max_pipeline_depth"] = self.max_pipeline_depth
        if self.max_cursors_per_connection is not None:
            limits["max_cursors"] = self.max_cursors_per_connection
        return protocol.connected_frame(connection_id, negotiated,
                                        limits=limits or None)

    def _require_state(self, request: dict[str, Any]) -> _ConnectionState:
        connection_id = request.get("connection_id")
        state = self._states.get(connection_id)
        if state is None:
            raise ProtocolError(f"unknown connection {connection_id!r}")
        return state

    @staticmethod
    def _require_version(state: _ConnectionState, kind: str) -> None:
        if state.protocol_version < 2:
            raise ProtocolError(
                f"{kind} frames require protocol version 2, but this "
                f"connection negotiated version "
                f"{state.protocol_version}")

    def _timed_execute(self, state: _ConnectionState,
                       run: Callable[[], Any]) -> tuple[Any, float]:
        """Run one statement under the session and (when configured)
        the cooperative statement deadline. Returns (result, elapsed);
        the post-execution check is kept as a backstop for statements
        that finish between deadline checks."""
        database = self.database
        started = self.timer()
        with database.use_session(state.session):
            if self.statement_timeout is not None:
                with database.statement_deadline(
                        started + self.statement_timeout, self.timer,
                        self.statement_timeout):
                    result = run()
            else:
                result = run()
        elapsed = self.timer() - started
        if (self.statement_timeout is not None
                and elapsed > self.statement_timeout):
            raise StatementTimeout(
                f"statement exceeded the {self.statement_timeout}s "
                f"budget (took {elapsed:.6f}s)")
        return result, elapsed

    def _maybe_revalidate(self, result) -> None:
        """Sweep the result cache after statements that may have moved
        a commit watermark (or the catalog version)."""
        if (result.written or result.deleted
                or result.kind in ("txn", "create", "drop", "copy")):
            self.result_cache.revalidate(self.database.mvcc,
                                         self.database.catalog.version)

    def _finish_result(self, state: _ConnectionState,
                       request: dict[str, Any], result,
                       elapsed: float,
                       cache_key: tuple | None) -> dict[str, Any]:
        """Shared epilogue of query and bind-execute: cache bookkeeping,
        EXPLAIN ANALYZE server stats, wire encoding, txn stamping."""
        self._maybe_revalidate(result)
        state.reap_cursors()
        if "analyze" in result.stats:
            # EXPLAIN ANALYZE results also report the server-side wall
            # time plus cache health, so clients can see wire overhead
            # vs execution time and whether the fast paths engage
            result.stats["server"] = {
                "seconds": elapsed,
                "result_cache": self.result_cache.counters(),
                "plan_cache": self.database.plan_cache.counters(),
                "scan_cache": self.database.scan_cache.counters(),
            }
            pool_counters = self.database.parallel_pool_counters()
            if pool_counters is not None:
                result.stats["server"]["parallel_pool"] = pool_counters
        frame = protocol.result_to_wire(result)
        if (cache_key is not None and result.cacheable
                and state.session.txn is None
                and (self.result_cache_max_rows is None
                     or len(result.rows) <= self.result_cache_max_rows)):
            # store a private copy: the outgoing frame gets a txn stamp
            self.result_cache.store(
                cache_key, dict(frame), result.source_tables,
                self.database.mvcc, self.database.catalog.version)
        self._attach_txn_status(frame, request)
        return frame

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("query frame is missing its sql text")
        provenance = bool(request.get("provenance"))
        fetch = request.get("fetch")
        if fetch is not None:
            self._require_version(state, "streamed query")
            return self._open_cursor(state, request, sql, (), fetch,
                                     provenance)
        cache_key = None
        if _looks_like_select(sql):
            cache_key = ResultCache.key(sql, (), provenance)
            cached = self.result_cache.lookup(
                cache_key, self.database.mvcc,
                self.database.catalog.version, state.session)
            if cached is not None:
                frame = dict(cached)
                self._attach_txn_status(frame, request)
                return frame
        token = request.get("token")
        # token passed only when present, so tests that stub
        # database.execute with a two-argument fake keep working
        kwargs = ({"token": str(token)} if token is not None else {})
        result, elapsed = self._timed_execute(
            state, lambda: self.database.execute(
                sql, provenance=provenance, **kwargs))
        return self._finish_result(state, request, result, elapsed,
                                   cache_key)

    # -- prepared statements -----------------------------------------------------

    def _handle_prepare(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "prepare")
        name = request.get("name")
        sql = request.get("sql")
        if not isinstance(name, str) or not name:
            raise ProtocolError("prepare frame needs a statement name")
        if not isinstance(sql, str):
            raise ProtocolError("prepare frame is missing its sql text")
        prepared = self.database.prepare(sql)
        state.prepared[name] = prepared
        frame = protocol.prepared_frame(name, prepared.param_count)
        self._attach_txn_status(frame, request)
        return frame

    def _handle_bind_execute(self,
                             request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "bind-execute")
        name = request.get("name")
        prepared = state.prepared.get(name)
        if prepared is None:
            raise ProtocolError(f"unknown prepared statement {name!r}")
        params = tuple(request.get("params") or ())
        provenance = bool(request.get("provenance"))
        fetch = request.get("fetch")
        if fetch is not None:
            return self._open_cursor(state, request, prepared, params,
                                     fetch, provenance)
        cache_key = None
        if prepared.cacheable:
            # the template was normalized once at prepare time
            cache_key = (prepared.normalized_sql, params,
                         bool(provenance))
            cached = self.result_cache.lookup(
                cache_key, self.database.mvcc,
                self.database.catalog.version, state.session)
            if cached is not None:
                frame = dict(cached)
                self._attach_txn_status(frame, request)
                return frame
        token = request.get("token")
        kwargs = ({"token": str(token)} if token is not None else {})
        result, elapsed = self._timed_execute(
            state, lambda: self.database.execute_prepared(
                prepared, params, provenance=provenance,
                session=state.session, **kwargs))
        return self._finish_result(state, request, result, elapsed,
                                   cache_key)

    def _handle_deallocate(self,
                           request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "deallocate")
        name = request.get("name")
        state.prepared.pop(name, None)  # idempotent, like close-cursor
        frame = protocol.deallocated_frame(name)
        self._attach_txn_status(frame, request)
        return frame

    # -- streamed result sets ----------------------------------------------------

    def _open_cursor(self, state: _ConnectionState,
                     request: dict[str, Any],
                     source, params: tuple, fetch: Any,
                     provenance: bool) -> dict[str, Any]:
        if not isinstance(fetch, int) or isinstance(fetch, bool) or fetch < 1:
            raise ProtocolError("fetch size must be a positive integer")
        token = request.get("token")
        if token is not None and str(token) in state.open_frames:
            # a retried stream open whose cursor frame was lost: replay
            # the original instead of opening (and leaking) a second
            # cursor pinned to its own snapshot
            frame = dict(state.open_frames[str(token)])
            self._attach_txn_status(frame, request)
            return frame
        if (self.max_cursors_per_connection is not None
                and len(state.cursors) >= self.max_cursors_per_connection):
            raise OverloadedError(
                f"connection already holds "
                f"{len(state.cursors)} open cursor(s), the server cap; "
                f"close one and retry",
                retry_after=self.retry_after_hint)
        database = self.database
        with database.use_session(state.session):
            cursor = database.open_cursor(source, params,
                                          session=state.session,
                                          provenance=provenance)
            rows, lineages = cursor.fetch(fetch)
        cursor_id = state.next_cursor_id
        state.next_cursor_id += 1
        if cursor.done:
            cursor.close()
        else:
            state.cursors[cursor_id] = _CursorState(cursor, len(rows))
        frame = protocol.cursor_frame(cursor_id, cursor.schema, rows,
                                      lineages, cursor.done,
                                      cursor.source_tables)
        if token is not None:
            # retain the pre-txn-status copy: txn state is re-derived
            # per request when the frame is replayed
            state.retain_open(str(token), dict(frame))
        self._attach_txn_status(frame, request)
        return frame

    def _handle_fetch(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "fetch")
        cursor_id = request.get("cursor_id")
        position = request.get("position")
        holder = state.cursors.get(cursor_id)
        if holder is None:
            # a retried final fetch whose done-chunk response was
            # dropped: the cursor is gone but its last chunk is
            # retained for exactly this replay
            finished = state.finished_chunks.get(cursor_id)
            if finished is not None and (position is None
                                         or position == finished["start"]):
                frame = dict(finished["frame"])
                self._attach_txn_status(frame, request)
                return frame
            raise ProtocolError(f"unknown cursor {cursor_id!r}")
        max_rows = request.get("max_rows")
        if (not isinstance(max_rows, int) or isinstance(max_rows, bool)
                or max_rows < 1):
            raise ProtocolError("max_rows must be a positive integer")
        if (position is not None and holder.last_frame is not None
                and position == holder.last_start):
            # the previous chunk's response never arrived: replay it
            # instead of advancing (and silently skipping its rows)
            frame = dict(holder.last_frame)
            self._attach_txn_status(frame, request)
            return frame
        if position is not None and position != holder.served:
            raise ProtocolError(
                f"fetch position {position} does not match the "
                f"{holder.served} row(s) served on cursor {cursor_id}")
        cursor = holder.cursor
        try:
            with self.database.use_session(state.session):
                rows, lineages = cursor.fetch(max_rows)
        except DatabaseError:
            state.cursors.pop(cursor_id, None)  # reap the dead cursor
            raise
        holder.last_start = holder.served
        holder.served += len(rows)
        frame = protocol.chunk_frame(cursor_id, rows, lineages,
                                     cursor.done)
        holder.last_frame = dict(frame)
        if cursor.done:
            state.cursors.pop(cursor_id, None)
            state.retain_finished(cursor_id, holder.last_start,
                                  dict(frame))
        self._attach_txn_status(frame, request)
        return frame

    def _handle_close_cursor(self,
                             request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "close-cursor")
        cursor_id = request.get("cursor_id")
        holder = state.cursors.pop(cursor_id, None)
        if holder is not None:
            holder.cursor.close()
        state.finished_chunks.pop(cursor_id, None)
        # idempotent: the server reaps cursors on exhaustion and txn
        # end, so a close for an already-gone cursor is not an error
        frame = protocol.cursor_closed_frame(cursor_id)
        self._attach_txn_status(frame, request)
        return frame

    # -- pipelining --------------------------------------------------------------

    def _handle_pipeline(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "pipeline")
        frames = request.get("frames")
        if not isinstance(frames, list):
            raise ProtocolError("pipeline frame carries no frames list")
        if (self.max_pipeline_depth is not None
                and len(frames) > self.max_pipeline_depth):
            # in-flight cap: rejected before anything executes, so the
            # client can split the batch and resend it all
            raise OverloadedError(
                f"pipeline depth {len(frames)} exceeds the server cap "
                f"of {self.max_pipeline_depth}",
                retry_after=self.retry_after_hint)
        connection_id = request.get("connection_id")
        responses: list[dict[str, Any]] = []
        self._in_pipeline = True
        try:
            with self.database.group_commit():
                for inner in frames:
                    if not isinstance(inner, dict):
                        responses.append(protocol.error_frame(
                            "ProtocolError",
                            "pipeline items must be frames"))
                        continue
                    if inner.get("frame") == "pipeline":
                        responses.append(protocol.error_frame(
                            "ProtocolError",
                            "pipeline frames cannot nest"))
                        continue
                    inner = dict(inner)
                    inner.setdefault("connection_id", connection_id)
                    # handle() isolates each inner frame's failure as
                    # its own error frame (with txn status); later
                    # frames in the batch still execute
                    responses.append(self.handle(inner))
        except GroupCommitError as exc:
            # the shared fsync failed: every commit in this envelope
            # was aborted together, so no already-computed response
            # may be delivered — each would acknowledge work the WAL
            # no longer promises
            self.group_aborts += 1
            error = protocol.error_frame("GroupCommitError", str(exc),
                                         transient=True)
            responses = [dict(error) for _ in frames]
        finally:
            self._in_pipeline = False
        return protocol.pipeline_result_frame(responses)

    # -- observability -----------------------------------------------------------

    def _handle_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        self._require_version(state, "stats")
        return {
            "frame": "stats-result",
            "server": self.server_counters(),
            "connection": {
                "connection_id": request.get("connection_id"),
                "protocol_version": state.protocol_version,
                "frames_served": state.frames_served,
                "bytes_in": state.bytes_in,
                "bytes_out": state.bytes_out,
                "open_cursors": len(state.cursors),
                "prepared_statements": len(state.prepared),
            },
        }

    def server_counters(self) -> dict[str, Any]:
        counters = {
            "frames_served": self.frames_served,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "open_connections": len(self._states),
            "open_cursors": sum(len(state.cursors)
                                for state in self._states.values()),
            "prepared_statements": sum(len(state.prepared)
                                       for state in self._states.values()),
            "result_cache": self.result_cache.counters(),
            "plan_cache": self.database.plan_cache.counters(),
            "scan_cache": self.database.scan_cache.counters(),
            "dedupe_ledger": self.database.dedupe_ledger.counters(),
            "draining": self.draining,
            "drain_rejections": self.drain_rejections,
            "connections_reaped": self.connections_reaped,
            "group_aborts": self.group_aborts,
        }
        if self.admission is not None:
            counters["admission"] = self.admission.counters()
        pool_counters = self.database.parallel_pool_counters()
        if pool_counters is not None:
            counters["parallel_pool"] = pool_counters
        return counters

    # -- teardown ----------------------------------------------------------------

    def _handle_close(self, request: dict[str, Any]) -> dict[str, Any]:
        state = self._require_state(request)
        del self._states[request.get("connection_id")]
        state.close_cursors()
        # a vanished client must not pin its snapshot (or leave a
        # half-done transaction ambiguous): roll it back
        self.database.abort_session(state.session)
        return protocol.closed_frame()

    @property
    def open_connections(self) -> int:
        return len(self._states)
