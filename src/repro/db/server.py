"""The database server: owns a Database and answers protocol frames.

One :class:`DBServer` serves any number of in-process connections. Its
:meth:`handle_wire` method consumes and produces *encoded* frames
(JSON text), which is the transport handed to clients — every exchange
pays real serialization, like a socket would, and gives interceptors a
faithful wire view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.clockwork import LogicalClock
from repro.db import protocol
from repro.db.engine import Database
from repro.errors import DatabaseError, ProtocolError, ReproError


class DBServer:
    """A single-process database server."""

    def __init__(self, database: Database | None = None,
                 data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None) -> None:
        if database is not None and data_directory is not None:
            raise ProtocolError(
                "pass either a Database or a data_directory, not both")
        if database is None:
            database = Database(data_directory=data_directory, clock=clock)
        self.database = database
        self._connections: dict[int, str] = {}
        self._next_connection_id = 1
        self.started = True

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Checkpoint data files and refuse further traffic."""
        self.database.close()
        self.started = False
        self._connections.clear()

    # -- frame handling ----------------------------------------------------------

    def transport(self) -> Callable[[str], str]:
        """The wire-level transport handed to clients."""
        return self.handle_wire

    def handle_wire(self, request_text: str) -> str:
        """Handle one encoded frame, returning an encoded response."""
        try:
            request = protocol.decode_frame(request_text)
        except ProtocolError as exc:
            return protocol.encode_frame(
                protocol.error_frame("ProtocolError", str(exc)))
        response = self.handle(request)
        return protocol.encode_frame(response)

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Handle one decoded frame, returning a decoded response."""
        if not self.started:
            return protocol.error_frame(
                "ConnectionClosedError", "server is shut down")
        kind = request.get("frame")
        try:
            if kind == "connect":
                return self._handle_connect(request)
            if kind == "query":
                return self._handle_query(request)
            if kind == "close":
                return self._handle_close(request)
        except DatabaseError as exc:
            return protocol.error_frame(type(exc).__name__, str(exc))
        except ReproError as exc:  # pragma: no cover - defensive
            return protocol.error_frame(type(exc).__name__, str(exc))
        return protocol.error_frame(
            "ProtocolError", f"unknown frame type {kind!r}")

    def _handle_connect(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        self._connections[connection_id] = str(
            request.get("process_id", "unknown"))
        return protocol.connected_frame(connection_id)

    def _require_connection(self, request: dict[str, Any]) -> int:
        connection_id = request.get("connection_id")
        if connection_id not in self._connections:
            raise ProtocolError(f"unknown connection {connection_id!r}")
        return connection_id

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        self._require_connection(request)
        result = self.database.execute(
            request["sql"], provenance=bool(request.get("provenance")))
        return protocol.result_to_wire(result)

    def _handle_close(self, request: dict[str, Any]) -> dict[str, Any]:
        connection_id = self._require_connection(request)
        del self._connections[connection_id]
        return protocol.closed_frame()

    @property
    def open_connections(self) -> int:
        return len(self._connections)
