"""Versioned heap storage with data-directory persistence.

Every table row carries two pieces of system metadata in addition to its
user-visible values:

* ``rowid`` — a table-unique, stable identifier (the paper's
  ``prov_rowid``), and
* ``version`` — the logical tick of the last statement that wrote the
  row (the paper's ``prov_v``).

Tables persist to one file each inside a *data directory*
(``<table>.tbl``: a JSON schema header line followed by CSV rows). The
on-disk bytes are what PTU-style packaging copies wholesale and what the
package-size experiments (Fig 9) measure.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.db.fileio import FileIO
from repro.db.types import (
    Column,
    Schema,
    SQLType,
    coerce_row,
    value_from_csv,
    value_to_csv,
)
from repro.errors import CatalogError, ExecutionError, IntegrityError

TABLE_FILE_SUFFIX = ".tbl"
WAL_FILE_NAME = "wal.log"
META_FILE_NAME = "checkpoint.json"


class HashIndex:
    """An equality index: column value → set of rowids."""

    def __init__(self, name: str, column: str, position: int) -> None:
        self.name = name.lower()
        self.column = column.lower()
        self.position = position
        self.buckets: dict[Any, set[int]] = {}

    def add(self, rowid: int, value: Any) -> None:
        if value is not None:
            self.buckets.setdefault(value, set()).add(rowid)

    def remove(self, rowid: int, value: Any) -> None:
        bucket = self.buckets.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self.buckets[value]

    def lookup(self, value: Any) -> frozenset[int]:
        if value is None:
            return frozenset()  # NULL never equals anything
        return frozenset(self.buckets.get(value, ()))


class HeapTable:
    """An in-memory heap of versioned rows with optional PK enforcement."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        self.name = name.lower()
        self.schema = schema
        self.rows: dict[int, tuple[Any, ...]] = {}
        self.versions: dict[int, int] = {}
        self.next_rowid = 1
        self._pk_positions: tuple[int, ...] = tuple(
            index for index, column in enumerate(schema.columns)
            if column.primary_key)
        self._pk_index: dict[tuple[Any, ...], int] = {}
        self.indexes: dict[str, HashIndex] = {}

    # -- row operations --------------------------------------------------------

    def insert(self, values: Iterable[Any], tick: int) -> int:
        """Insert a row, returning its new rowid."""
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = self.next_rowid
        rowid = self.next_rowid
        self.next_rowid += 1
        self.rows[rowid] = row
        self.versions[rowid] = tick
        for index in self.indexes.values():
            index.add(rowid, row[index.position])
        return rowid

    def update(self, rowid: int, values: Iterable[Any], tick: int) -> None:
        """Replace a row's values, bumping its version."""
        if rowid not in self.rows:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            old_key = tuple(self.rows[rowid][i] for i in self._pk_positions)
            new_key = tuple(row[i] for i in self._pk_positions)
            if new_key != old_key:
                if new_key in self._pk_index:
                    raise IntegrityError(
                        f"duplicate primary key {new_key!r} in {self.name}")
                del self._pk_index[old_key]
                self._pk_index[new_key] = rowid
        old_row = self.rows[rowid]
        for index in self.indexes.values():
            index.remove(rowid, old_row[index.position])
            index.add(rowid, row[index.position])
        self.rows[rowid] = row
        self.versions[rowid] = tick

    def delete(self, rowid: int) -> None:
        """Remove a row."""
        row = self.rows.pop(rowid, None)
        if row is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        self.versions.pop(rowid, None)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            self._pk_index.pop(key, None)
        for index in self.indexes.values():
            index.remove(rowid, row[index.position])

    def put_row(self, rowid: int, values: Iterable[Any],
                version: int) -> None:
        """Idempotently install a row at an explicit rowid/version.

        This is WAL-redo semantics: if the rowid already holds a row
        (because a checkpoint captured it before the crash), the row is
        overwritten and all bookkeeping stays consistent — replaying a
        log twice converges.
        """
        row = coerce_row(values, self.schema)
        if rowid in self.rows:
            self._detach_row(rowid)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            holder = self._pk_index.get(key)
            if holder is not None and holder != rowid:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = rowid
        self.rows[rowid] = row
        self.versions[rowid] = version
        self.next_rowid = max(self.next_rowid, rowid + 1)
        for index in self.indexes.values():
            index.add(rowid, row[index.position])

    def remove_row(self, rowid: int) -> None:
        """Delete a row if present (idempotent WAL-redo delete)."""
        if rowid in self.rows:
            self.delete(rowid)

    def _detach_row(self, rowid: int) -> None:
        """Drop a row's PK and secondary-index entries, then the row."""
        row = self.rows.pop(rowid)
        self.versions.pop(rowid, None)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if self._pk_index.get(key) == rowid:
                del self._pk_index[key]
        for index in self.indexes.values():
            index.remove(rowid, row[index.position])

    def restore_row(self, rowid: int, values: Iterable[Any],
                    version: int) -> None:
        """Install a row under an explicit rowid/version (package
        restore). Keeps the PK index and rowid counter consistent."""
        if rowid in self.rows:
            raise ExecutionError(
                f"rowid {rowid} already present in table {self.name}")
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = rowid
        self.rows[rowid] = row
        self.versions[rowid] = version
        self.next_rowid = max(self.next_rowid, rowid + 1)
        for index in self.indexes.values():
            index.add(rowid, row[index.position])

    def get(self, rowid: int) -> tuple[Any, ...]:
        row = self.rows.get(rowid)
        if row is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        return row

    def version_of(self, rowid: int) -> int:
        version = self.versions.get(rowid)
        if version is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        return version

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Yield ``(rowid, values)`` in rowid order (deterministic)."""
        for rowid in sorted(self.rows):
            yield rowid, self.rows[rowid]

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def truncate(self) -> None:
        """Drop all rows but keep the schema and rowid counter."""
        self.rows.clear()
        self.versions.clear()
        self._pk_index.clear()
        for index in self.indexes.values():
            index.buckets.clear()

    # -- secondary indexes -------------------------------------------------------

    def create_index(self, name: str, column: str,
                     if_not_exists: bool = False) -> HashIndex:
        """Build a hash index over one column."""
        key = name.lower()
        if key in self.indexes:
            if if_not_exists:
                return self.indexes[key]
            raise CatalogError(f"index {name!r} already exists on "
                               f"{self.name}")
        position = self.schema.index_of(column)
        index = HashIndex(key, column, position)
        for rowid, row in self.rows.items():
            index.add(rowid, row[position])
        self.indexes[key] = index
        return index

    def drop_index(self, name: str) -> None:
        if name.lower() not in self.indexes:
            raise CatalogError(f"no index {name!r} on {self.name}")
        del self.indexes[name.lower()]

    def index_on(self, column: str) -> HashIndex | None:
        """An index covering ``column``, if any."""
        wanted = column.lower()
        for index in self.indexes.values():
            if index.column == wanted:
                return index
        return None

    # -- persistence -----------------------------------------------------------

    def serialize(self) -> str:
        """Render the table as its on-disk file format."""
        buffer = io.StringIO()
        header = {
            "name": self.name,
            "next_rowid": self.next_rowid,
            "indexes": [{"name": index.name, "column": index.column}
                        for index in self.indexes.values()],
            "columns": [
                {
                    "name": column.name,
                    "type": column.sql_type.value,
                    "not_null": column.not_null,
                    "primary_key": column.primary_key,
                }
                for column in self.schema.columns
            ],
        }
        buffer.write(json.dumps(header, separators=(",", ":")))
        buffer.write("\n")
        writer = csv.writer(buffer, lineterminator="\n")
        for rowid in sorted(self.rows):
            cells = [str(rowid), str(self.versions[rowid])]
            cells.extend(value_to_csv(value) for value in self.rows[rowid])
            writer.writerow(cells)
        return buffer.getvalue()

    @classmethod
    def deserialize(cls, text: str) -> "HeapTable":
        """Parse the on-disk file format back into a table."""
        newline = text.find("\n")
        if newline == -1:
            raise CatalogError("table file is missing its header line")
        header = json.loads(text[:newline])
        columns = [
            Column(
                name=column["name"],
                sql_type=SQLType(column["type"]),
                not_null=column["not_null"],
                primary_key=column["primary_key"],
            )
            for column in header["columns"]
        ]
        table = cls(header["name"], Schema(columns))
        types = table.schema.types()
        reader = csv.reader(io.StringIO(text[newline + 1:]))
        for cells in reader:
            if not cells:
                continue
            rowid = int(cells[0])
            version = int(cells[1])
            values = tuple(
                value_from_csv(cell, sql_type)
                for cell, sql_type in zip(cells[2:], types))
            table.rows[rowid] = values
            table.versions[rowid] = version
            if table._pk_positions:
                key = tuple(values[i] for i in table._pk_positions)
                table._pk_index[key] = rowid
        table.next_rowid = max(header["next_rowid"],
                               max(table.rows, default=0) + 1)
        for index_def in header.get("indexes", ()):
            table.create_index(index_def["name"], index_def["column"])
        return table


class DataDirectory:
    """The on-disk home of a database: one ``.tbl`` file per table,
    plus the write-ahead log and the checkpoint metadata file.

    All writes go through an injectable :class:`FileIO`; table files are
    replaced atomically (temp → fsync → rename) so a crash mid-save
    never leaves a half-written ``.tbl``.
    """

    def __init__(self, path: str | Path, io: FileIO | None = None) -> None:
        self.path = Path(path)
        self.io = io if io is not None else FileIO()
        self.path.mkdir(parents=True, exist_ok=True)

    def table_path(self, name: str) -> Path:
        return self.path / f"{name.lower()}{TABLE_FILE_SUFFIX}"

    @property
    def wal_path(self) -> Path:
        return self.path / WAL_FILE_NAME

    @property
    def meta_path(self) -> Path:
        return self.path / META_FILE_NAME

    def save_table(self, table: HeapTable) -> None:
        self.io.atomic_write_bytes(
            self.table_path(table.name),
            table.serialize().encode("utf-8"),
            point="checkpoint.table")

    def save_meta(self, meta: dict) -> None:
        """Atomically persist checkpoint metadata (the logical clock)."""
        self.io.atomic_write_bytes(
            self.meta_path,
            json.dumps(meta, separators=(",", ":")).encode("utf-8"),
            point="checkpoint.meta")

    def load_meta(self) -> dict:
        if not self.meta_path.exists():
            return {}
        try:
            meta = json.loads(self.meta_path.read_text())
        except ValueError:
            # the meta file is advisory (the WAL carries the committed
            # ticks); a torn one is ignored, not fatal
            return {}
        return meta if isinstance(meta, dict) else {}

    def load_table(self, name: str) -> HeapTable:
        path = self.table_path(name)
        if not path.exists():
            raise CatalogError(f"no stored table {name!r} in {self.path}")
        return HeapTable.deserialize(path.read_text())

    def drop_table(self, name: str) -> None:
        path = self.table_path(name)
        if path.exists():
            self.io.unlink(path, point="checkpoint.drop")

    def table_names(self) -> list[str]:
        return sorted(
            path.name[: -len(TABLE_FILE_SUFFIX)]
            for path in self.path.glob(f"*{TABLE_FILE_SUFFIX}"))

    def total_bytes(self) -> int:
        """Total size of all table files (what PTU packaging copies)."""
        return sum(
            path.stat().st_size
            for path in self.path.glob(f"*{TABLE_FILE_SUFFIX}"))
