"""Versioned heap storage with data-directory persistence.

Every table row carries two pieces of system metadata in addition to its
user-visible values:

* ``rowid`` — a table-unique, stable identifier (the paper's
  ``prov_rowid``), and
* ``version`` — the logical tick of the last statement that wrote the
  row (the paper's ``prov_v``).

Tables persist to one file each inside a *data directory*
(``<table>.tbl``: a JSON schema header line followed by CSV rows). The
on-disk bytes are what PTU-style packaging copies wholesale and what the
package-size experiments (Fig 9) measure.
"""

from __future__ import annotations

import csv
import io
import json
import zlib
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.db.fileio import FileIO
from repro.db.types import (
    Column,
    Schema,
    SQLType,
    coerce_row,
    value_from_csv,
    value_to_csv,
)
from repro.errors import CatalogError, ExecutionError, IntegrityError

TABLE_FILE_SUFFIX = ".tbl"
WAL_FILE_NAME = "wal.log"
META_FILE_NAME = "checkpoint.json"


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash for partition assignment.

    ``hash()`` is randomized per process for strings (PYTHONHASHSEED),
    which would make partition membership unstable across restarts and
    across the parent/worker boundary. Integers map to themselves
    (masked non-negative); everything else hashes its canonical repr
    through crc32.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0x7FFFFFFF
    return zlib.crc32(repr(value).encode("utf-8")) & 0x7FFFFFFF


class PartitionSpec:
    """Logical hash partitioning of a heap on one column.

    Partitioning never moves row bytes — ``.tbl`` files are unchanged,
    so PTU packaging stays byte-identical whether or not a table is
    partitioned. The spec (column + bucket count) is persisted through
    the WAL and checkpoint metadata, and the table maintains an
    incremental rowid→bucket membership map alongside its indexes.
    """

    __slots__ = ("column", "position", "count")

    def __init__(self, column: str, position: int, count: int) -> None:
        self.column = column.lower()
        self.position = position
        self.count = count

    def to_dict(self) -> dict:
        return {"column": self.column, "count": self.count}


class HashIndex:
    """An equality index: column value → set of rowids."""

    def __init__(self, name: str, column: str, position: int) -> None:
        self.name = name.lower()
        self.column = column.lower()
        self.position = position
        self.buckets: dict[Any, set[int]] = {}

    def add(self, rowid: int, value: Any) -> None:
        if value is not None:
            self.buckets.setdefault(value, set()).add(rowid)

    def remove(self, rowid: int, value: Any) -> None:
        bucket = self.buckets.get(value)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self.buckets[value]

    def lookup(self, value: Any) -> frozenset[int]:
        if value is None:
            return frozenset()  # NULL never equals anything
        return frozenset(self.buckets.get(value, ()))


class HeapTable:
    """An in-memory heap of versioned rows with optional PK enforcement.

    ``rows``/``versions`` hold the *committed-latest* state — what
    checkpoints serialize and what the WAL describes. While any
    transaction is open (``mvcc.has_active()``), superseded committed
    versions are additionally retained in ``history`` as
    ``(begin, end, values)`` chains so concurrent snapshots can still
    read them; history is in-memory only and is pruned as soon as no
    snapshot can reach it. ``mvcc`` is the database-wide
    :class:`repro.db.mvcc.MVCCState`, attached by the catalog
    (standalone tables never record history and scan the heap
    directly).
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        self.name = name.lower()
        self.schema = schema
        self.rows: dict[int, tuple[Any, ...]] = {}
        self.versions: dict[int, int] = {}
        self.history: dict[int, list[tuple[int, int, tuple]]] = {}
        self.mvcc = None  # set by Catalog; None for standalone tables
        # the catalog's shared columnar scan cache (see
        # repro.db.scancache); None for standalone tables, which are
        # never served from cached segments
        self.scan_cache = None
        # committed-rowid list reused across scans until a mutation
        # changes the rowid set; builds are counted so tests can probe
        # the reuse
        self._rowid_cache: list[int] | None = None
        self.rowid_cache_builds = 0
        self.next_rowid = 1
        self._pk_positions: tuple[int, ...] = tuple(
            index for index, column in enumerate(schema.columns)
            if column.primary_key)
        self._pk_index: dict[tuple[Any, ...], int] = {}
        self.indexes: dict[str, HashIndex] = {}
        self.partition_spec: PartitionSpec | None = None
        self.partitions: list[set[int]] = []

    # -- MVCC hooks ------------------------------------------------------------

    def active_view(self):
        """The ambient :class:`~repro.db.mvcc.ReadView`, if any."""
        return self.mvcc.current if self.mvcc is not None else None

    def _record_history(self, rowid: int, begin: int, end: int,
                        values: tuple) -> None:
        """Retain a superseded committed version for open snapshots."""
        if (self.mvcc is not None and self.mvcc.has_active()
                and end is not None):
            self.history.setdefault(rowid, []).append((begin, end, values))

    def prune_history(self, minimum: int | None, commit_stamp) -> None:
        """Drop history no active snapshot can see.

        A chain entry ``(begin, end, values)`` is only readable by
        snapshots that do *not* see ``end``; once every active snapshot
        is at or past ``commit_stamp(end)`` — or nothing is active —
        the entry is dead.
        """
        if not self.history:
            return
        if minimum is None:
            self.history.clear()
            return
        for rowid in list(self.history):
            kept = [entry for entry in self.history[rowid]
                    if commit_stamp(entry[1]) > minimum]
            if kept:
                self.history[rowid] = kept
            else:
                del self.history[rowid]

    def _note_mutation(self, rowids_changed: bool = True) -> None:
        """Heap changed: strand cached scan state.

        Every mutator calls this, so the scan cache can never serve a
        stale segment — including from paths that bypass the WAL/MVCC
        bookkeeping (direct bulk loads, WAL redo, package restore) and
        from the mid-statement window where a multi-row statement has
        already moved the commit watermark but not yet written its
        last row. UPDATE keeps the rowid-list cache (the rowid *set*
        is unchanged) but still drops segments (values changed).
        """
        if rowids_changed:
            self._rowid_cache = None
        if self.scan_cache is not None:
            self.scan_cache.invalidate_table(self.name)

    def pk_key(self, row: tuple) -> tuple[Any, ...] | None:
        """The row's primary-key value, or None for PK-less tables."""
        if not self._pk_positions:
            return None
        return tuple(row[i] for i in self._pk_positions)

    def pk_holder(self, key: tuple[Any, ...]) -> int | None:
        """The committed rowid currently holding a PK value, if any."""
        return self._pk_index.get(key)

    # -- row operations --------------------------------------------------------

    def insert(self, values: Iterable[Any], tick: int) -> int:
        """Insert a row, returning its new rowid."""
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = self.next_rowid
        rowid = self.next_rowid
        self.next_rowid += 1
        self.rows[rowid] = row
        self.versions[rowid] = tick
        for index in self.indexes.values():
            index.add(rowid, row[index.position])
        self._partition_add(rowid, row)
        self._note_mutation()
        return rowid

    def update(self, rowid: int, values: Iterable[Any], tick: int) -> None:
        """Replace a row's values, bumping its version."""
        if rowid not in self.rows:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            old_key = tuple(self.rows[rowid][i] for i in self._pk_positions)
            new_key = tuple(row[i] for i in self._pk_positions)
            if new_key != old_key:
                if new_key in self._pk_index:
                    raise IntegrityError(
                        f"duplicate primary key {new_key!r} in {self.name}")
                del self._pk_index[old_key]
                self._pk_index[new_key] = rowid
        old_row = self.rows[rowid]
        self._record_history(rowid, self.versions[rowid], tick, old_row)
        for index in self.indexes.values():
            index.remove(rowid, old_row[index.position])
            index.add(rowid, row[index.position])
        self._partition_remove(rowid, old_row)
        self._partition_add(rowid, row)
        self.rows[rowid] = row
        self.versions[rowid] = tick
        self._note_mutation(rowids_changed=False)

    def delete(self, rowid: int, tick: int | None = None) -> None:
        """Remove a row. ``tick`` is the logical time of the removal;
        it stamps the ``end`` of the retained history entry when
        concurrent snapshots might still read the row."""
        row = self.rows.pop(rowid, None)
        if row is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        version = self.versions.pop(rowid, None)
        if version is not None and tick is not None:
            self._record_history(rowid, version, tick, row)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            self._pk_index.pop(key, None)
        for index in self.indexes.values():
            index.remove(rowid, row[index.position])
        self._partition_remove(rowid, row)
        self._note_mutation()

    def put_row(self, rowid: int, values: Iterable[Any],
                version: int) -> None:
        """Idempotently install a row at an explicit rowid/version.

        This is WAL-redo semantics: if the rowid already holds a row
        (because a checkpoint captured it before the crash), the row is
        overwritten and all bookkeeping stays consistent — replaying a
        log twice converges.
        """
        row = coerce_row(values, self.schema)
        if rowid in self.rows:
            self._detach_row(rowid)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            holder = self._pk_index.get(key)
            if holder is not None and holder != rowid:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = rowid
        self.rows[rowid] = row
        self.versions[rowid] = version
        self.next_rowid = max(self.next_rowid, rowid + 1)
        for index in self.indexes.values():
            index.add(rowid, row[index.position])
        self._partition_add(rowid, row)
        self._note_mutation()

    def remove_row(self, rowid: int) -> None:
        """Delete a row if present (idempotent WAL-redo delete)."""
        if rowid in self.rows:
            self.delete(rowid)

    def _detach_row(self, rowid: int) -> None:
        """Drop a row's PK and secondary-index entries, then the row."""
        row = self.rows.pop(rowid)
        self.versions.pop(rowid, None)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if self._pk_index.get(key) == rowid:
                del self._pk_index[key]
        for index in self.indexes.values():
            index.remove(rowid, row[index.position])
        self._partition_remove(rowid, row)

    def restore_row(self, rowid: int, values: Iterable[Any],
                    version: int) -> None:
        """Install a row under an explicit rowid/version (package
        restore). Keeps the PK index and rowid counter consistent."""
        if rowid in self.rows:
            raise ExecutionError(
                f"rowid {rowid} already present in table {self.name}")
        row = coerce_row(values, self.schema)
        if self._pk_positions:
            key = tuple(row[i] for i in self._pk_positions)
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name}")
            self._pk_index[key] = rowid
        self.rows[rowid] = row
        self.versions[rowid] = version
        self.next_rowid = max(self.next_rowid, rowid + 1)
        for index in self.indexes.values():
            index.add(rowid, row[index.position])
        self._partition_add(rowid, row)
        self._note_mutation()

    def get(self, rowid: int) -> tuple[Any, ...]:
        row = self.rows.get(rowid)
        if row is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        return row

    def version_of(self, rowid: int) -> int:
        version = self.versions.get(rowid)
        if version is None:
            raise ExecutionError(
                f"rowid {rowid} not found in table {self.name}")
        return version

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """Yield ``(rowid, values)`` in rowid order (deterministic).

        Under an ambient :class:`~repro.db.mvcc.ReadView` the scan is
        snapshot-correct: it merges the view's private overlay over the
        committed versions visible at the snapshot (skipping overlay
        deletes and versions committed after it).
        """
        view = self.active_view()
        if view is None:
            for rowid in sorted(self.rows):
                yield rowid, self.rows[rowid]
            return
        for rowid, values, _version in self._scan_view(view):
            yield rowid, values

    def scan_versions(self) -> Iterator[tuple[int, tuple[Any, ...], int]]:
        """Like :meth:`scan`, additionally yielding each row's begin
        stamp — for the visible version, which under a snapshot may be
        a history entry or an uncommitted overlay write."""
        view = self.active_view()
        if view is None:
            for rowid in sorted(self.rows):
                yield rowid, self.rows[rowid], self.versions[rowid]
            return
        yield from self._scan_view(view)

    def _scan_view(self, view) -> Iterator[tuple[int, tuple[Any, ...], int]]:
        overlay = view.overlay_for(self.name)
        rowids = set(self.rows)
        if self.history:
            rowids.update(self.history)
        if overlay is not None:
            rowids.update(overlay.upserts)
        for rowid in sorted(rowids):
            if overlay is not None:
                entry = overlay.upserts.get(rowid)
                if entry is not None:
                    yield rowid, entry[0], entry[1]
                    continue
                if rowid in overlay.deletes:
                    continue
            found = self.visible_version(rowid, view)
            if found is not None:
                yield rowid, found[0], found[1]

    def candidate_rowids(self) -> list[int]:
        """Every rowid the ambient view *might* see, sorted.

        This is the rowid universe :meth:`_scan_view` iterates —
        committed rows plus history chains plus the view's private
        overlay upserts. Partition-parallel scans split this list into
        chunks; resolving each rowid through :meth:`view_entry` then
        yields exactly the serial scan's rows, in the serial order.
        """
        view = self.active_view()
        if view is None:
            # reused across scans until a mutation changes the rowid
            # set; callers only slice it (partition splitting), so the
            # shared list is safe
            cached = self._rowid_cache
            if cached is None:
                rowids = list(self.rows)
                cached = (rowids if rowids == sorted(rowids)
                          else sorted(rowids))
                self._rowid_cache = cached
                self.rowid_cache_builds += 1
            return cached
        universe = set(self.rows)
        if self.history:
            universe.update(self.history)
        overlay = view.overlay_for(self.name)
        if overlay is not None:
            universe.update(overlay.upserts)
        return sorted(universe)

    def view_entry(self, rowid: int, view,
                   overlay) -> tuple[tuple[Any, ...], int] | None:
        """What one rowid resolves to under a view: ``(values,
        version)`` or None when invisible — the per-rowid core of
        :meth:`_scan_view`, exposed so partition scans can resolve an
        explicit rowid subset with identical semantics."""
        if overlay is not None:
            entry = overlay.upserts.get(rowid)
            if entry is not None:
                return entry[0], entry[1]
            if rowid in overlay.deletes:
                return None
        return self.visible_version(rowid, view)

    def visible_version(self, rowid: int,
                        view) -> tuple[tuple[Any, ...], int] | None:
        """The committed ``(values, begin)`` a view sees for a rowid,
        or None when the row did not exist (or no longer existed) at
        the snapshot."""
        version = self.versions.get(rowid)
        if version is not None and view.sees(version):
            return self.rows[rowid], version
        for begin, end, values in reversed(self.history.get(rowid, ())):
            if view.sees(begin) and not view.sees(end):
                return values, begin
        return None

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def visible_row_count(self) -> int:
        """Estimated row count as seen by the ambient read view.

        Without a view this is the committed heap size. Under a view
        the committed count is adjusted by the transaction's private
        overlay (its inserts and deletes), without paying a full scan —
        the planner calls this per table per plan. Versions committed
        after the snapshot are approximated as visible; the figure is
        a cardinality estimate, not a COUNT(*).
        """
        count = len(self.rows)
        view = self.active_view()
        if view is None:
            return count
        overlay = view.overlay_for(self.name)
        if overlay is not None:
            for rowid in overlay.upserts:
                if rowid not in self.rows:
                    count += 1
            for rowid in overlay.deletes:
                if rowid in self.rows:
                    count -= 1
        return count

    def truncate(self) -> None:
        """Drop all rows but keep the schema and rowid counter."""
        self.rows.clear()
        self.versions.clear()
        self.history.clear()
        self._pk_index.clear()
        for index in self.indexes.values():
            index.buckets.clear()
        for bucket in self.partitions:
            bucket.clear()
        self._note_mutation()

    # -- hash partitioning -------------------------------------------------------

    def set_partitioning(self, column: str, count: int) -> PartitionSpec:
        """(Re)declare hash partitioning on ``column`` into ``count``
        buckets, rebuilding bucket membership from the committed heap.
        Row bytes never move; only the membership map changes."""
        if count < 1:
            raise CatalogError(
                f"partition count must be >= 1, got {count}")
        position = self.schema.index_of(column)
        spec = PartitionSpec(self.schema.columns[position].name,
                             position, count)
        self.partition_spec = spec
        self.partitions = [set() for _ in range(count)]
        for rowid, row in self.rows.items():
            self.partitions[stable_hash(row[position]) % count].add(rowid)
        return spec

    def clear_partitioning(self) -> None:
        self.partition_spec = None
        self.partitions = []

    def partition_of(self, row: tuple) -> int:
        """The bucket a row's key value assigns it to (total: every
        value, including NULL, lands in exactly one bucket)."""
        spec = self.partition_spec
        return stable_hash(row[spec.position]) % spec.count

    def partition_rowids(self) -> list[list[int]]:
        """Committed-latest bucket contents, each sorted by rowid."""
        return [sorted(bucket) for bucket in self.partitions]

    def _partition_add(self, rowid: int, row: tuple) -> None:
        if self.partition_spec is not None:
            self.partitions[self.partition_of(row)].add(rowid)

    def _partition_remove(self, rowid: int, row: tuple) -> None:
        if self.partition_spec is not None:
            self.partitions[self.partition_of(row)].discard(rowid)

    # -- secondary indexes -------------------------------------------------------

    def create_index(self, name: str, column: str,
                     if_not_exists: bool = False) -> HashIndex:
        """Build a hash index over one column."""
        key = name.lower()
        if key in self.indexes:
            if if_not_exists:
                return self.indexes[key]
            raise CatalogError(f"index {name!r} already exists on "
                               f"{self.name}")
        position = self.schema.index_of(column)
        index = HashIndex(key, column, position)
        for rowid, row in self.rows.items():
            index.add(rowid, row[position])
        self.indexes[key] = index
        return index

    def drop_index(self, name: str) -> None:
        if name.lower() not in self.indexes:
            raise CatalogError(f"no index {name!r} on {self.name}")
        del self.indexes[name.lower()]

    def index_on(self, column: str) -> HashIndex | None:
        """An index covering ``column``, if any."""
        wanted = column.lower()
        for index in self.indexes.values():
            if index.column == wanted:
                return index
        return None

    # -- persistence -----------------------------------------------------------

    def serialize(self) -> str:
        """Render the table as its on-disk file format."""
        buffer = io.StringIO()
        header = {
            "name": self.name,
            "next_rowid": self.next_rowid,
            "indexes": [{"name": index.name, "column": index.column}
                        for index in self.indexes.values()],
            "columns": [
                {
                    "name": column.name,
                    "type": column.sql_type.value,
                    "not_null": column.not_null,
                    "primary_key": column.primary_key,
                }
                for column in self.schema.columns
            ],
        }
        buffer.write(json.dumps(header, separators=(",", ":")))
        buffer.write("\n")
        writer = csv.writer(buffer, lineterminator="\n")
        for rowid in sorted(self.rows):
            cells = [str(rowid), str(self.versions[rowid])]
            cells.extend(value_to_csv(value) for value in self.rows[rowid])
            writer.writerow(cells)
        return buffer.getvalue()

    @classmethod
    def deserialize(cls, text: str) -> "HeapTable":
        """Parse the on-disk file format back into a table."""
        newline = text.find("\n")
        if newline == -1:
            raise CatalogError("table file is missing its header line")
        header = json.loads(text[:newline])
        columns = [
            Column(
                name=column["name"],
                sql_type=SQLType(column["type"]),
                not_null=column["not_null"],
                primary_key=column["primary_key"],
            )
            for column in header["columns"]
        ]
        table = cls(header["name"], Schema(columns))
        types = table.schema.types()
        reader = csv.reader(io.StringIO(text[newline + 1:]))
        for cells in reader:
            if not cells:
                continue
            rowid = int(cells[0])
            version = int(cells[1])
            values = tuple(
                value_from_csv(cell, sql_type)
                for cell, sql_type in zip(cells[2:], types))
            table.rows[rowid] = values
            table.versions[rowid] = version
            if table._pk_positions:
                key = tuple(values[i] for i in table._pk_positions)
                table._pk_index[key] = rowid
        table.next_rowid = max(header["next_rowid"],
                               max(table.rows, default=0) + 1)
        for index_def in header.get("indexes", ()):
            table.create_index(index_def["name"], index_def["column"])
        return table


class DataDirectory:
    """The on-disk home of a database: one ``.tbl`` file per table,
    plus the write-ahead log and the checkpoint metadata file.

    All writes go through an injectable :class:`FileIO`; table files are
    replaced atomically (temp → fsync → rename) so a crash mid-save
    never leaves a half-written ``.tbl``.
    """

    def __init__(self, path: str | Path, io: FileIO | None = None) -> None:
        self.path = Path(path)
        self.io = io if io is not None else FileIO()
        self.path.mkdir(parents=True, exist_ok=True)

    def table_path(self, name: str) -> Path:
        return self.path / f"{name.lower()}{TABLE_FILE_SUFFIX}"

    @property
    def wal_path(self) -> Path:
        return self.path / WAL_FILE_NAME

    @property
    def meta_path(self) -> Path:
        return self.path / META_FILE_NAME

    def save_table(self, table: HeapTable) -> None:
        self.io.atomic_write_bytes(
            self.table_path(table.name),
            table.serialize().encode("utf-8"),
            point="checkpoint.table")

    def save_meta(self, meta: dict) -> None:
        """Atomically persist checkpoint metadata (the logical clock)."""
        self.io.atomic_write_bytes(
            self.meta_path,
            json.dumps(meta, separators=(",", ":")).encode("utf-8"),
            point="checkpoint.meta")

    def load_meta(self) -> dict:
        if not self.meta_path.exists():
            return {}
        try:
            meta = json.loads(self.meta_path.read_text())
        except ValueError:
            # the meta file is advisory (the WAL carries the committed
            # ticks); a torn one is ignored, not fatal
            return {}
        return meta if isinstance(meta, dict) else {}

    def load_table(self, name: str) -> HeapTable:
        path = self.table_path(name)
        if not path.exists():
            raise CatalogError(f"no stored table {name!r} in {self.path}")
        return HeapTable.deserialize(path.read_text())

    def drop_table(self, name: str) -> None:
        path = self.table_path(name)
        if path.exists():
            self.io.unlink(path, point="checkpoint.drop")

    def table_names(self) -> list[str]:
        return sorted(
            path.name[: -len(TABLE_FILE_SUFFIX)]
            for path in self.path.glob(f"*{TABLE_FILE_SUFFIX}"))

    def total_bytes(self) -> int:
        """Total size of all table files (what PTU packaging copies)."""
        return sum(
            path.stat().st_size
            for path in self.path.glob(f"*{TABLE_FILE_SUFFIX}"))
