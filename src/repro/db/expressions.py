"""Expression evaluation with SQL three-valued logic.

Two evaluation strategies share one set of semantics:

* :class:`Evaluator` interprets an AST expression against rows,
  re-walking the tree per row. It remains the reference implementation
  and the path used for one-shot evaluation (INSERT literals, UPDATE
  assignments, WAL replay).
* :func:`compile_expression` lowers an AST once into nested Python
  closures — column references become tuple indexing, constants are
  bound, comparisons and arithmetic become direct operator calls — so
  the per-row cost is a chain of function calls with no dispatch on
  node types. The executor's operators compile their expressions once
  in ``__init__`` and call the closures per row.

Both paths implement identical semantics: NULL (``None``) propagates
through arithmetic and comparisons; ``AND``/``OR`` follow Kleene
logic; filters treat an unknown result as false.

Aggregate functions are *not* evaluated here — the aggregate operator in
:mod:`repro.db.executor` drives :class:`Accumulator` objects created by
:func:`make_accumulator` and evaluates the aggregate's argument
expression per input row. Aggregate *results* flow back into compiled
select-list/HAVING expressions through :class:`BindingSlots`.
"""

from __future__ import annotations

import operator as _operator
import re
from contextlib import contextmanager
from decimal import Decimal, InvalidOperation, ROUND_CEILING, ROUND_FLOOR, ROUND_HALF_UP
from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator

from repro.db.sql import ast
from repro.db.types import Schema
from repro.errors import ExecutionError

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# AST analysis helpers
# ---------------------------------------------------------------------------


def walk(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Yield ``expression`` and all sub-expressions, depth first."""
    yield expression
    if isinstance(expression, ast.UnaryOp):
        yield from walk(expression.operand)
    elif isinstance(expression, ast.BinaryOp):
        yield from walk(expression.left)
        yield from walk(expression.right)
    elif isinstance(expression, ast.Between):
        yield from walk(expression.operand)
        yield from walk(expression.low)
        yield from walk(expression.high)
    elif isinstance(expression, ast.Like):
        yield from walk(expression.operand)
        yield from walk(expression.pattern)
    elif isinstance(expression, ast.InList):
        yield from walk(expression.operand)
        for item in expression.items:
            yield from walk(item)
    elif isinstance(expression, ast.IsNull):
        yield from walk(expression.operand)
    elif isinstance(expression, ast.FunctionCall):
        for arg in expression.args:
            yield from walk(arg)
    elif isinstance(expression, ast.CaseWhen):
        for condition, value in expression.branches:
            yield from walk(condition)
            yield from walk(value)
        if expression.otherwise is not None:
            yield from walk(expression.otherwise)


def find_aggregates(expression: ast.Expression) -> list[ast.FunctionCall]:
    """Return all aggregate function calls inside ``expression``."""
    return [node for node in walk(expression)
            if isinstance(node, ast.FunctionCall)
            and node.name in AGGREGATE_NAMES]


def contains_aggregate(expression: ast.Expression) -> bool:
    return bool(find_aggregates(expression))


def columns_referenced(expression: ast.Expression) -> list[ast.ColumnRef]:
    """All column references inside ``expression`` (with duplicates)."""
    return [node for node in walk(expression)
            if isinstance(node, ast.ColumnRef)]


# ---------------------------------------------------------------------------
# LIKE pattern matching
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (% and _) to an anchored regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def sql_like(value: Any, pattern: Any) -> Any:
    """Evaluate ``value LIKE pattern`` with NULL propagation."""
    if value is None or pattern is None:
        return None
    return _like_regex(str(pattern)).match(str(value)) is not None


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_guard(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a scalar function so any NULL argument yields NULL."""
    def wrapped(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)
    return wrapped


def _fn_substr(value: str, start: int, length: int | None = None) -> str:
    # SQL substr is 1-based; negative/overhang semantics follow PostgreSQL.
    begin = max(start - 1, 0)
    if length is None:
        return str(value)[begin:]
    if length < 0:
        raise ExecutionError("negative substring length")
    return str(value)[begin:begin + length]


def _as_decimal(value: Any) -> Decimal:
    """Exact decimal view of a numeric value.

    Floats go through ``str()`` (the shortest round-tripping decimal),
    so ``round(0.285, 2)`` sees the decimal ``0.285`` the user wrote,
    not the binary ``0.28499999999999998`` underneath it — the SQL
    NUMERIC reading that money columns need.
    """
    if isinstance(value, Decimal):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Decimal(value)
    try:
        return Decimal(str(value))
    except InvalidOperation as exc:
        raise ExecutionError(
            f"cannot use {value!r} as a number") from exc


def _fn_round(value: Any, digits: Any = 0) -> Any:
    quantum = Decimal(1).scaleb(-int(digits))
    rounded = _as_decimal(value).quantize(quantum, rounding=ROUND_HALF_UP)
    if isinstance(value, Decimal):
        return rounded
    return float(rounded)


def _fn_floor(value: Any) -> int:
    return int(_as_decimal(value).to_integral_value(rounding=ROUND_FLOOR))


def _fn_ceil(value: Any) -> int:
    return int(_as_decimal(value).to_integral_value(rounding=ROUND_CEILING))


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": _null_guard(lambda v: str(v).upper()),
    "lower": _null_guard(lambda v: str(v).lower()),
    "length": _null_guard(lambda v: len(str(v))),
    "abs": _null_guard(abs),
    "round": _null_guard(_fn_round),
    "floor": _null_guard(_fn_floor),
    "ceil": _null_guard(_fn_ceil),
    "mod": _null_guard(lambda a, b: a % b),
    "coalesce": _fn_coalesce,
    "substr": _null_guard(_fn_substr),
    "substring": _null_guard(_fn_substr),
    "concat": lambda *args: "".join(str(a) for a in args if a is not None),
}


# ---------------------------------------------------------------------------
# Aggregate accumulators
# ---------------------------------------------------------------------------


class Accumulator:
    """Incremental aggregate state: feed values with :meth:`add`."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class _CountAll(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class _Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class _Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class _Distinct(Accumulator):
    """Wrap another accumulator to only feed it distinct non-seen values."""

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


def make_accumulator(call: ast.FunctionCall) -> Accumulator:
    """Create the accumulator for an aggregate function call."""
    name = call.name
    if name == "count":
        star = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
        inner: Accumulator = _CountAll() if star and not call.distinct else _Count()
    elif name == "sum":
        inner = _Sum()
    elif name == "avg":
        inner = _Avg()
    elif name == "min":
        inner = _Min()
    elif name == "max":
        inner = _Max()
    else:
        raise ExecutionError(f"unknown aggregate function {name!r}")
    if call.distinct:
        return _Distinct(inner)
    return inner


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


def _compare(op: str, left: Any, right: Any) -> Any:
    """SQL comparison with NULL propagation."""
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    """SQL arithmetic with NULL propagation."""
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                # SQL integer division truncates toward zero
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            return left / right
        if op == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left % right
        if op == "||":
            return str(left) + str(right)
    except ExecutionError:
        raise
    except TypeError as exc:
        raise ExecutionError(
            f"bad operand types for {op!r}: {left!r}, {right!r}") from exc
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


class Evaluator:
    """Evaluates expressions against rows of a fixed schema.

    Aggregate function calls can be *pre-bound* to computed values via
    ``bindings`` (used by the aggregate operator to substitute aggregate
    results when evaluating HAVING / select-list expressions).
    """

    def __init__(self, schema: Schema,
                 bindings: dict[ast.Expression, Any] | None = None) -> None:
        self.schema = schema
        self.bindings = bindings or {}
        self._column_cache: dict[tuple[str, str | None], int] = {}

    def _column_index(self, ref: ast.ColumnRef) -> int:
        key = (ref.name.lower(),
               ref.qualifier.lower() if ref.qualifier else None)
        index = self._column_cache.get(key)
        if index is None:
            index = self.schema.index_of(ref.name, ref.qualifier)
            self._column_cache[key] = index
        return index

    def evaluate(self, expression: ast.Expression, row: tuple) -> Any:
        """Evaluate ``expression`` against ``row``; NULL is ``None``."""
        if expression in self.bindings:
            return self.bindings[expression]
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.ColumnRef):
            return row[self._column_index(expression)]
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression, row)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression, row)
        if isinstance(expression, ast.Between):
            return self._evaluate_between(expression, row)
        if isinstance(expression, ast.Like):
            result = sql_like(self.evaluate(expression.operand, row),
                              self.evaluate(expression.pattern, row))
            if result is None:
                return None
            return (not result) if expression.negated else result
        if isinstance(expression, ast.InList):
            return self._evaluate_in(expression, row)
        if isinstance(expression, ast.IsNull):
            is_null = self.evaluate(expression.operand, row) is None
            return (not is_null) if expression.negated else is_null
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_function(expression, row)
        if isinstance(expression, ast.CaseWhen):
            for condition, value in expression.branches:
                if self.evaluate(condition, row) is True:
                    return self.evaluate(value, row)
            if expression.otherwise is not None:
                return self.evaluate(expression.otherwise, row)
            return None
        if isinstance(expression, ast.Star):
            raise ExecutionError("'*' is only valid in select lists/COUNT")
        raise ExecutionError(
            f"cannot evaluate expression node {type(expression).__name__}")

    def matches(self, expression: ast.Expression, row: tuple) -> bool:
        """Filter semantics: unknown (NULL) counts as false."""
        return self.evaluate(expression, row) is True

    # -- node-specific evaluation ------------------------------------------------

    def _evaluate_binary(self, node: ast.BinaryOp, row: tuple) -> Any:
        op = node.op
        if op == "and":
            left = self.evaluate(node.left, row)
            if left is False:
                return False
            right = self.evaluate(node.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.evaluate(node.left, row)
            if left is True:
                return True
            right = self.evaluate(node.right, row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(node.left, row)
        right = self.evaluate(node.right, row)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)

    def _evaluate_unary(self, node: ast.UnaryOp, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        if node.op == "not":
            if value is None:
                return None
            return not value
        if node.op == "-":
            if value is None:
                return None
            return -value
        raise ExecutionError(f"unknown unary operator {node.op!r}")

    def _evaluate_between(self, node: ast.Between, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        low = self.evaluate(node.low, row)
        high = self.evaluate(node.high, row)
        lower_ok = _compare(">=", value, low)
        upper_ok = _compare("<=", value, high)
        if lower_ok is False or upper_ok is False:
            result: Any = False
        elif lower_ok is None or upper_ok is None:
            result = None
        else:
            result = True
        if result is None:
            return None
        return (not result) if node.negated else result

    def _evaluate_in(self, node: ast.InList, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in node.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if node.negated else True
        if saw_null:
            return None
        return True if node.negated else False

    def _evaluate_function(self, node: ast.FunctionCall, row: tuple) -> Any:
        if node.name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {node.name}() used outside GROUP BY context")
        fn = SCALAR_FUNCTIONS.get(node.name)
        if fn is None:
            raise ExecutionError(f"unknown function {node.name!r}")
        args = [self.evaluate(arg, row) for arg in node.args]
        return fn(*args)


# ---------------------------------------------------------------------------
# Compiled expressions
# ---------------------------------------------------------------------------


class BindingSlots:
    """Mutable value slots for expressions bound outside the row.

    The aggregate operator computes aggregate results (and group-key
    values) per group, then evaluates select-list/HAVING expressions
    that *contain* those sub-expressions. Compilation resolves each
    bound sub-expression to a slot index once; per group the operator
    only rewrites ``values`` and re-calls the compiled closures.
    """

    def __init__(self, expressions: Iterable[ast.Expression]) -> None:
        self.index: dict[ast.Expression, int] = {}
        for expression in expressions:
            if expression not in self.index:
                self.index[expression] = len(self.index)
        self.values: list[Any] = [None] * len(self.index)

    def assign(self, expression: ast.Expression, value: Any) -> None:
        self.values[self.index[expression]] = value

    def as_bindings(self) -> "_SlotView":
        return _SlotView(self)


class _SlotView:
    """A live mapping view of :class:`BindingSlots` for the interpreter
    fallback (duck-types the ``bindings`` dict an Evaluator expects)."""

    def __init__(self, slots: BindingSlots) -> None:
        self._slots = slots

    def __contains__(self, expression: object) -> bool:
        return expression in self._slots.index

    def __getitem__(self, expression: ast.Expression) -> Any:
        return self._slots.values[self._slots.index[expression]]

    def __len__(self) -> int:
        return len(self._slots.index)


# Benchmarks flip this to quantify the compiled path against the
# interpreter on identical plans; production code never touches it.
_INTERPRET_ONLY = False


@contextmanager
def interpreted_expressions():
    """Force operators planned inside the block onto the interpreter."""
    global _INTERPRET_ONLY
    previous = _INTERPRET_ONLY
    _INTERPRET_ONLY = True
    try:
        yield
    finally:
        _INTERPRET_ONLY = previous


RowFunction = Callable[[tuple], Any]

_COMPARISONS: dict[str, Callable[[Any, Any], Any]] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def compile_expression(expression: ast.Expression, schema: Schema,
                       slots: BindingSlots | None = None) -> RowFunction:
    """Lower ``expression`` once into a closure over rows of ``schema``.

    The returned callable has exactly the semantics of
    ``Evaluator(schema).evaluate(expression, row)`` (NULL propagation,
    Kleene logic, SQL integer division, scalar functions) without
    re-walking the AST per row. Sub-expressions present in ``slots``
    compile to slot reads, mirroring the Evaluator's ``bindings``.

    Name-resolution errors (unknown/ambiguous columns) surface at
    compile time — i.e. at plan time — instead of on the first row.
    """
    if _INTERPRET_ONLY:
        evaluator = Evaluator(
            schema, slots.as_bindings() if slots is not None else None)
        return lambda row: evaluator.evaluate(expression, row)
    return _compile(expression, schema, slots)


def compile_predicate(expression: ast.Expression, schema: Schema,
                      slots: BindingSlots | None = None
                      ) -> Callable[[tuple], bool]:
    """Like :func:`compile_expression` with filter semantics: the
    result is ``True`` only for SQL TRUE (unknown counts as false)."""
    fn = compile_expression(expression, schema, slots)
    return lambda row: fn(row) is True


def _compile(node: ast.Expression, schema: Schema,
             slots: BindingSlots | None) -> RowFunction:
    if slots is not None and node in slots.index:
        values = slots.values
        position = slots.index[node]
        return lambda row: values[position]
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda row: value
    if isinstance(node, ast.ColumnRef):
        return _operator.itemgetter(schema.index_of(node.name,
                                                    node.qualifier))
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, schema, slots)
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node, schema, slots)
    if isinstance(node, ast.Between):
        return _compile_between(node, schema, slots)
    if isinstance(node, ast.Like):
        return _compile_like(node, schema, slots)
    if isinstance(node, ast.InList):
        return _compile_in(node, schema, slots)
    if isinstance(node, ast.IsNull):
        operand = _compile(node.operand, schema, slots)
        if node.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(node, ast.FunctionCall):
        return _compile_function(node, schema, slots)
    if isinstance(node, ast.CaseWhen):
        return _compile_case(node, schema, slots)
    if isinstance(node, ast.Star):
        raise ExecutionError("'*' is only valid in select lists/COUNT")
    raise ExecutionError(
        f"cannot evaluate expression node {type(node).__name__}")


def _compile_binary(node: ast.BinaryOp, schema: Schema,
                    slots: BindingSlots | None) -> RowFunction:
    op = node.op
    left = _compile(node.left, schema, slots)
    right = _compile(node.right, schema, slots)
    if op == "and":
        def kleene_and(row: tuple) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return kleene_and
    if op == "or":
        def kleene_or(row: tuple) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return kleene_or
    comparison = _COMPARISONS.get(op)
    if comparison is not None:
        def compare(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return comparison(lhs, rhs)
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {lhs!r} and {rhs!r}") from exc
        return compare
    if op in ("+", "-", "*"):
        arith = {"+": _operator.add, "-": _operator.sub,
                 "*": _operator.mul}[op]
        def arithmetic(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return arith(lhs, rhs)
            except TypeError as exc:
                raise ExecutionError(
                    f"bad operand types for {op!r}: {lhs!r}, {rhs!r}"
                ) from exc
        return arithmetic
    if op in ("/", "%", "||"):
        def general(row: tuple) -> Any:
            return _arith(op, left(row), right(row))
        return general
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _compile_unary(node: ast.UnaryOp, schema: Schema,
                   slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    if node.op == "not":
        def negate(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            return not value
        return negate
    if node.op == "-":
        def minus(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            return -value
        return minus
    raise ExecutionError(f"unknown unary operator {node.op!r}")


def _compile_between(node: ast.Between, schema: Schema,
                     slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    low = _compile(node.low, schema, slots)
    high = _compile(node.high, schema, slots)
    negated = node.negated

    def between(row: tuple) -> Any:
        value = operand(row)
        lower_ok = _compare(">=", value, low(row))
        upper_ok = _compare("<=", value, high(row))
        if lower_ok is False or upper_ok is False:
            result: Any = False
        elif lower_ok is None or upper_ok is None:
            return None
        else:
            result = True
        return (not result) if negated else result
    return between


def _compile_like(node: ast.Like, schema: Schema,
                  slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    negated = node.negated
    if isinstance(node.pattern, ast.Literal) and node.pattern.value is not None:
        regex = _like_regex(str(node.pattern.value))

        def like_constant(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            result = regex.match(str(value)) is not None
            return (not result) if negated else result
        return like_constant
    pattern = _compile(node.pattern, schema, slots)

    def like(row: tuple) -> Any:
        result = sql_like(operand(row), pattern(row))
        if result is None:
            return None
        return (not result) if negated else result
    return like


def _compile_in(node: ast.InList, schema: Schema,
                slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    negated = node.negated
    item_fns = [_compile(item, schema, slots) for item in node.items]

    def in_list(row: tuple) -> Any:
        value = operand(row)
        if value is None:
            return None
        saw_null = False
        for item_fn in item_fns:
            candidate = item_fn(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False
    return in_list


def _compile_function(node: ast.FunctionCall, schema: Schema,
                      slots: BindingSlots | None) -> RowFunction:
    if node.name in AGGREGATE_NAMES:
        raise ExecutionError(
            f"aggregate {node.name}() used outside GROUP BY context")
    fn = SCALAR_FUNCTIONS.get(node.name)
    if fn is None:
        raise ExecutionError(f"unknown function {node.name!r}")
    arg_fns = [_compile(arg, schema, slots) for arg in node.args]
    if len(arg_fns) == 1:
        only = arg_fns[0]
        return lambda row: fn(only(row))
    return lambda row: fn(*(arg_fn(row) for arg_fn in arg_fns))


def _compile_case(node: ast.CaseWhen, schema: Schema,
                  slots: BindingSlots | None) -> RowFunction:
    branches = [(_compile(condition, schema, slots),
                 _compile(value, schema, slots))
                for condition, value in node.branches]
    otherwise = (_compile(node.otherwise, schema, slots)
                 if node.otherwise is not None else None)

    def case(row: tuple) -> Any:
        for condition_fn, value_fn in branches:
            if condition_fn(row) is True:
                return value_fn(row)
        if otherwise is not None:
            return otherwise(row)
        return None
    return case
