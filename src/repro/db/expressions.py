"""Expression evaluation with SQL three-valued logic.

Two evaluation strategies share one set of semantics:

* :class:`Evaluator` interprets an AST expression against rows,
  re-walking the tree per row. It remains the reference implementation
  and the path used for one-shot evaluation (INSERT literals, UPDATE
  assignments, WAL replay).
* :func:`compile_expression` lowers an AST once into nested Python
  closures — column references become tuple indexing, constants are
  bound, comparisons and arithmetic become direct operator calls — so
  the per-row cost is a chain of function calls with no dispatch on
  node types. The executor's operators compile their expressions once
  in ``__init__`` and call the closures per row.

Both paths implement identical semantics: NULL (``None``) propagates
through arithmetic and comparisons; ``AND``/``OR`` follow Kleene
logic; filters treat an unknown result as false.

Aggregate functions are *not* evaluated here — the aggregate operator in
:mod:`repro.db.executor` drives :class:`Accumulator` objects created by
:func:`make_accumulator` and evaluates the aggregate's argument
expression per input row. Aggregate *results* flow back into compiled
select-list/HAVING expressions through :class:`BindingSlots`.
"""

from __future__ import annotations

import operator as _operator
import re
from contextlib import contextmanager
from decimal import Decimal, InvalidOperation, ROUND_CEILING, ROUND_FLOOR, ROUND_HALF_UP
from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator

from repro.db.sql import ast
from repro.db.types import Schema, SQLType
from repro.errors import ExecutionError

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


# ---------------------------------------------------------------------------
# AST analysis helpers
# ---------------------------------------------------------------------------


def walk(expression: ast.Expression) -> Iterator[ast.Expression]:
    """Yield ``expression`` and all sub-expressions, depth first."""
    yield expression
    if isinstance(expression, ast.UnaryOp):
        yield from walk(expression.operand)
    elif isinstance(expression, ast.BinaryOp):
        yield from walk(expression.left)
        yield from walk(expression.right)
    elif isinstance(expression, ast.Between):
        yield from walk(expression.operand)
        yield from walk(expression.low)
        yield from walk(expression.high)
    elif isinstance(expression, ast.Like):
        yield from walk(expression.operand)
        yield from walk(expression.pattern)
    elif isinstance(expression, ast.InList):
        yield from walk(expression.operand)
        for item in expression.items:
            yield from walk(item)
    elif isinstance(expression, ast.IsNull):
        yield from walk(expression.operand)
    elif isinstance(expression, ast.FunctionCall):
        for arg in expression.args:
            yield from walk(arg)
    elif isinstance(expression, ast.CaseWhen):
        for condition, value in expression.branches:
            yield from walk(condition)
            yield from walk(value)
        if expression.otherwise is not None:
            yield from walk(expression.otherwise)


def find_aggregates(expression: ast.Expression) -> list[ast.FunctionCall]:
    """Return all aggregate function calls inside ``expression``."""
    return [node for node in walk(expression)
            if isinstance(node, ast.FunctionCall)
            and node.name in AGGREGATE_NAMES]


def contains_aggregate(expression: ast.Expression) -> bool:
    return bool(find_aggregates(expression))


def columns_referenced(expression: ast.Expression) -> list[ast.ColumnRef]:
    """All column references inside ``expression`` (with duplicates)."""
    return [node for node in walk(expression)
            if isinstance(node, ast.ColumnRef)]


# ---------------------------------------------------------------------------
# LIKE pattern matching
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (% and _) to an anchored regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def sql_like(value: Any, pattern: Any) -> Any:
    """Evaluate ``value LIKE pattern`` with NULL propagation."""
    if value is None or pattern is None:
        return None
    return _like_regex(str(pattern)).match(str(value)) is not None


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_guard(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a scalar function so any NULL argument yields NULL."""
    def wrapped(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return fn(*args)
    return wrapped


def _fn_substr(value: str, start: int, length: int | None = None) -> str:
    # SQL substr is 1-based; negative/overhang semantics follow PostgreSQL.
    begin = max(start - 1, 0)
    if length is None:
        return str(value)[begin:]
    if length < 0:
        raise ExecutionError("negative substring length")
    return str(value)[begin:begin + length]


def _as_decimal(value: Any) -> Decimal:
    """Exact decimal view of a numeric value.

    Floats go through ``str()`` (the shortest round-tripping decimal),
    so ``round(0.285, 2)`` sees the decimal ``0.285`` the user wrote,
    not the binary ``0.28499999999999998`` underneath it — the SQL
    NUMERIC reading that money columns need.
    """
    if isinstance(value, Decimal):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Decimal(value)
    try:
        return Decimal(str(value))
    except InvalidOperation as exc:
        raise ExecutionError(
            f"cannot use {value!r} as a number") from exc


def _fn_round(value: Any, digits: Any = 0) -> Any:
    quantum = Decimal(1).scaleb(-int(digits))
    rounded = _as_decimal(value).quantize(quantum, rounding=ROUND_HALF_UP)
    if isinstance(value, Decimal):
        return rounded
    return float(rounded)


def _fn_floor(value: Any) -> int:
    return int(_as_decimal(value).to_integral_value(rounding=ROUND_FLOOR))


def _fn_ceil(value: Any) -> int:
    return int(_as_decimal(value).to_integral_value(rounding=ROUND_CEILING))


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": _null_guard(lambda v: str(v).upper()),
    "lower": _null_guard(lambda v: str(v).lower()),
    "length": _null_guard(lambda v: len(str(v))),
    "abs": _null_guard(abs),
    "round": _null_guard(_fn_round),
    "floor": _null_guard(_fn_floor),
    "ceil": _null_guard(_fn_ceil),
    "mod": _null_guard(lambda a, b: a % b),
    "coalesce": _fn_coalesce,
    "substr": _null_guard(_fn_substr),
    "substring": _null_guard(_fn_substr),
    "concat": lambda *args: "".join(str(a) for a in args if a is not None),
}


# ---------------------------------------------------------------------------
# Aggregate accumulators
# ---------------------------------------------------------------------------


class Accumulator:
    """Incremental aggregate state: feed values with :meth:`add`.

    :meth:`add_many` consumes a whole value vector (one batch worth);
    subclasses override it where a bulk formulation beats the per-value
    loop without changing the fold order (SUM/AVG keep the exact
    left-to-right accumulation so float results stay bit-identical to
    row-at-a-time execution).
    """

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_many(self, values: list) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "Accumulator") -> None:
        """Fold another partial accumulator of the same kind into this
        one (partition-parallel aggregation). Only aggregates that
        :func:`merge_exact_aggregate` approves are ever merged — for
        those, the merged result is bit-identical to a serial fold no
        matter how the input rows were split across partitions."""
        raise NotImplementedError  # pragma: no cover - interface

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class _CountAll(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def add_many(self, values: list) -> None:
        self.count += len(values)

    def merge(self, other: "_CountAll") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class _Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def add_many(self, values: list) -> None:
        self.count += len(values) - values.count(None)

    def merge(self, other: "_Count") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def add_many(self, values: list) -> None:
        total = self.total
        for value in values:
            if value is not None:
                total = value if total is None else total + value
        self.total = total

    def merge(self, other: "_Sum") -> None:
        if other.total is not None:
            self.total = (other.total if self.total is None
                          else self.total + other.total)

    def result(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def add_many(self, values: list) -> None:
        total = self.total
        count = self.count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self.total = total
        self.count = count

    def merge(self, other: "_Avg") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> Any:
        if self.count == 0:
            return None
        return self.total / self.count


class _Min(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        best = min(present)
        if self.best is None or best < self.best:
            self.best = best

    def merge(self, other: "_Min") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class _Max(Accumulator):
    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if not present:
            return
        best = max(present)
        if self.best is None or best > self.best:
            self.best = best

    def merge(self, other: "_Max") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class _Distinct(Accumulator):
    """Wrap another accumulator to only feed it distinct non-seen values."""

    def __init__(self, inner: Accumulator) -> None:
        self.inner = inner
        self.seen: set[Any] = set()

    def add(self, value: Any) -> None:
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def add_many(self, values: list) -> None:
        seen = self.seen
        add = self.inner.add
        for value in values:
            if value not in seen:
                seen.add(value)
                add(value)

    def merge(self, other: "_Distinct") -> None:
        for value in other.seen:
            self.add(value)

    def result(self) -> Any:
        return self.inner.result()


def make_accumulator(call: ast.FunctionCall) -> Accumulator:
    """Create the accumulator for an aggregate function call."""
    name = call.name
    if name == "count":
        star = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
        inner: Accumulator = _CountAll() if star and not call.distinct else _Count()
    elif name == "sum":
        inner = _Sum()
    elif name == "avg":
        inner = _Avg()
    elif name == "min":
        inner = _Min()
    elif name == "max":
        inner = _Max()
    else:
        raise ExecutionError(f"unknown aggregate function {name!r}")
    if call.distinct:
        return _Distinct(inner)
    return inner


def merge_exact_aggregate(call: ast.FunctionCall, schema: Schema) -> bool:
    """True when partition-parallel partial accumulators for this
    aggregate merge into a *bit-identical* final result, no matter how
    input rows were split.

    COUNT, MIN, and MAX are order-insensitive outright. SUM is exact
    only over INTEGER columns (Python int addition is associative;
    float addition is not, and a merged float SUM could differ in the
    last ulp from the serial left-to-right fold). AVG accumulates a
    float total even for integer inputs, so it is never merged —
    parallel plans still parallelize its *scan* and fold serially.
    DISTINCT wrappers merge by unioning seen-sets, which preserves
    exactness for the order-insensitive inners.
    """
    name = call.name
    if name in ("count", "min", "max"):
        return True
    if name == "sum":
        argument = call.args[0] if call.args else None
        if isinstance(argument, ast.ColumnRef):
            try:
                position = schema.index_of(argument.name,
                                           argument.qualifier)
            except Exception:
                return False
            return schema.columns[position].sql_type is SQLType.INTEGER
    return False


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


def _compare(op: str, left: Any, right: Any) -> Any:
    """SQL comparison with NULL propagation."""
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {left!r} and {right!r}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    """SQL arithmetic with NULL propagation."""
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                # SQL integer division truncates toward zero
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            return left / right
        if op == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left % right
        if op == "||":
            return str(left) + str(right)
    except ExecutionError:
        raise
    except TypeError as exc:
        raise ExecutionError(
            f"bad operand types for {op!r}: {left!r}, {right!r}") from exc
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


class Evaluator:
    """Evaluates expressions against rows of a fixed schema.

    Aggregate function calls can be *pre-bound* to computed values via
    ``bindings`` (used by the aggregate operator to substitute aggregate
    results when evaluating HAVING / select-list expressions).
    """

    def __init__(self, schema: Schema,
                 bindings: dict[ast.Expression, Any] | None = None) -> None:
        self.schema = schema
        self.bindings = bindings or {}
        self._column_cache: dict[tuple[str, str | None], int] = {}

    def _column_index(self, ref: ast.ColumnRef) -> int:
        key = (ref.name.lower(),
               ref.qualifier.lower() if ref.qualifier else None)
        index = self._column_cache.get(key)
        if index is None:
            index = self.schema.index_of(ref.name, ref.qualifier)
            self._column_cache[key] = index
        return index

    def evaluate(self, expression: ast.Expression, row: tuple) -> Any:
        """Evaluate ``expression`` against ``row``; NULL is ``None``."""
        if expression in self.bindings:
            return self.bindings[expression]
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Parameter):
            return parameter_value(expression.index)
        if isinstance(expression, ast.ColumnRef):
            return row[self._column_index(expression)]
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression, row)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression, row)
        if isinstance(expression, ast.Between):
            return self._evaluate_between(expression, row)
        if isinstance(expression, ast.Like):
            result = sql_like(self.evaluate(expression.operand, row),
                              self.evaluate(expression.pattern, row))
            if result is None:
                return None
            return (not result) if expression.negated else result
        if isinstance(expression, ast.InList):
            return self._evaluate_in(expression, row)
        if isinstance(expression, ast.IsNull):
            is_null = self.evaluate(expression.operand, row) is None
            return (not is_null) if expression.negated else is_null
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_function(expression, row)
        if isinstance(expression, ast.CaseWhen):
            for condition, value in expression.branches:
                if self.evaluate(condition, row) is True:
                    return self.evaluate(value, row)
            if expression.otherwise is not None:
                return self.evaluate(expression.otherwise, row)
            return None
        if isinstance(expression, ast.Star):
            raise ExecutionError("'*' is only valid in select lists/COUNT")
        raise ExecutionError(
            f"cannot evaluate expression node {type(expression).__name__}")

    def matches(self, expression: ast.Expression, row: tuple) -> bool:
        """Filter semantics: unknown (NULL) counts as false."""
        return self.evaluate(expression, row) is True

    # -- node-specific evaluation ------------------------------------------------

    def _evaluate_binary(self, node: ast.BinaryOp, row: tuple) -> Any:
        op = node.op
        if op == "and":
            left = self.evaluate(node.left, row)
            if left is False:
                return False
            right = self.evaluate(node.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.evaluate(node.left, row)
            if left is True:
                return True
            right = self.evaluate(node.right, row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(node.left, row)
        right = self.evaluate(node.right, row)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)

    def _evaluate_unary(self, node: ast.UnaryOp, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        if node.op == "not":
            if value is None:
                return None
            return not value
        if node.op == "-":
            if value is None:
                return None
            return -value
        raise ExecutionError(f"unknown unary operator {node.op!r}")

    def _evaluate_between(self, node: ast.Between, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        low = self.evaluate(node.low, row)
        high = self.evaluate(node.high, row)
        lower_ok = _compare(">=", value, low)
        upper_ok = _compare("<=", value, high)
        if lower_ok is False or upper_ok is False:
            result: Any = False
        elif lower_ok is None or upper_ok is None:
            result = None
        else:
            result = True
        if result is None:
            return None
        return (not result) if node.negated else result

    def _evaluate_in(self, node: ast.InList, row: tuple) -> Any:
        value = self.evaluate(node.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in node.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if node.negated else True
        if saw_null:
            return None
        return True if node.negated else False

    def _evaluate_function(self, node: ast.FunctionCall, row: tuple) -> Any:
        if node.name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {node.name}() used outside GROUP BY context")
        fn = SCALAR_FUNCTIONS.get(node.name)
        if fn is None:
            raise ExecutionError(f"unknown function {node.name!r}")
        args = [self.evaluate(arg, row) for arg in node.args]
        return fn(*args)


# ---------------------------------------------------------------------------
# Compiled expressions
# ---------------------------------------------------------------------------


class BindingSlots:
    """Mutable value slots for expressions bound outside the row.

    The aggregate operator computes aggregate results (and group-key
    values) per group, then evaluates select-list/HAVING expressions
    that *contain* those sub-expressions. Compilation resolves each
    bound sub-expression to a slot index once; per group the operator
    only rewrites ``values`` and re-calls the compiled closures.
    """

    def __init__(self, expressions: Iterable[ast.Expression]) -> None:
        self.index: dict[ast.Expression, int] = {}
        for expression in expressions:
            if expression not in self.index:
                self.index[expression] = len(self.index)
        self.values: list[Any] = [None] * len(self.index)

    def assign(self, expression: ast.Expression, value: Any) -> None:
        self.values[self.index[expression]] = value

    def as_bindings(self) -> "_SlotView":
        return _SlotView(self)


class _SlotView:
    """A live mapping view of :class:`BindingSlots` for the interpreter
    fallback (duck-types the ``bindings`` dict an Evaluator expects)."""

    def __init__(self, slots: BindingSlots) -> None:
        self._slots = slots

    def __contains__(self, expression: object) -> bool:
        return expression in self._slots.index

    def __getitem__(self, expression: ast.Expression) -> Any:
        return self._slots.values[self._slots.index[expression]]

    def __len__(self) -> int:
        return len(self._slots.index)


# Ambient parameter bindings for the statement currently executing.
# Compiled closures read this at *call* time (not compile time), so a
# plan cached for a parameterized template re-binds on every execution.
_BOUND_PARAMS: tuple | None = None


@contextmanager
def bound_parameters(values):
    """Install the positional parameter values for ``$n`` references
    evaluated inside the block. Single-threaded per statement, like
    the MVCC ambient read view."""
    global _BOUND_PARAMS
    previous = _BOUND_PARAMS
    _BOUND_PARAMS = tuple(values)
    try:
        yield
    finally:
        _BOUND_PARAMS = previous


def parameter_value(index: int) -> Any:
    """Value bound to ``$index`` (1-based); raises when unbound."""
    values = _BOUND_PARAMS
    if values is None or not (1 <= index <= len(values)):
        raise ExecutionError(f"parameter ${index} is not bound")
    return values[index - 1]


# Benchmarks flip this to quantify the compiled path against the
# interpreter on identical plans; production code never touches it.
_INTERPRET_ONLY = False


@contextmanager
def interpreted_expressions():
    """Force operators planned inside the block onto the interpreter."""
    global _INTERPRET_ONLY
    previous = _INTERPRET_ONLY
    _INTERPRET_ONLY = True
    try:
        yield
    finally:
        _INTERPRET_ONLY = previous


RowFunction = Callable[[tuple], Any]

_COMPARISONS: dict[str, Callable[[Any, Any], Any]] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def compile_expression(expression: ast.Expression, schema: Schema,
                       slots: BindingSlots | None = None) -> RowFunction:
    """Lower ``expression`` once into a closure over rows of ``schema``.

    The returned callable has exactly the semantics of
    ``Evaluator(schema).evaluate(expression, row)`` (NULL propagation,
    Kleene logic, SQL integer division, scalar functions) without
    re-walking the AST per row. Sub-expressions present in ``slots``
    compile to slot reads, mirroring the Evaluator's ``bindings``.

    Name-resolution errors (unknown/ambiguous columns) surface at
    compile time — i.e. at plan time — instead of on the first row.
    """
    if _INTERPRET_ONLY:
        evaluator = Evaluator(
            schema, slots.as_bindings() if slots is not None else None)
        return lambda row: evaluator.evaluate(expression, row)
    return _compile(expression, schema, slots)


def compile_predicate(expression: ast.Expression, schema: Schema,
                      slots: BindingSlots | None = None
                      ) -> Callable[[tuple], bool]:
    """Like :func:`compile_expression` with filter semantics: the
    result is ``True`` only for SQL TRUE (unknown counts as false)."""
    fn = compile_expression(expression, schema, slots)
    return lambda row: fn(row) is True


def _compile(node: ast.Expression, schema: Schema,
             slots: BindingSlots | None) -> RowFunction:
    if slots is not None and node in slots.index:
        values = slots.values
        position = slots.index[node]
        return lambda row: values[position]
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda row: value
    if isinstance(node, ast.Parameter):
        index = node.index
        return lambda row: parameter_value(index)
    if isinstance(node, ast.ColumnRef):
        return _operator.itemgetter(schema.index_of(node.name,
                                                    node.qualifier))
    if isinstance(node, ast.BinaryOp):
        return _compile_binary(node, schema, slots)
    if isinstance(node, ast.UnaryOp):
        return _compile_unary(node, schema, slots)
    if isinstance(node, ast.Between):
        return _compile_between(node, schema, slots)
    if isinstance(node, ast.Like):
        return _compile_like(node, schema, slots)
    if isinstance(node, ast.InList):
        return _compile_in(node, schema, slots)
    if isinstance(node, ast.IsNull):
        operand = _compile(node.operand, schema, slots)
        if node.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(node, ast.FunctionCall):
        return _compile_function(node, schema, slots)
    if isinstance(node, ast.CaseWhen):
        return _compile_case(node, schema, slots)
    if isinstance(node, ast.Star):
        raise ExecutionError("'*' is only valid in select lists/COUNT")
    raise ExecutionError(
        f"cannot evaluate expression node {type(node).__name__}")


def _compile_binary(node: ast.BinaryOp, schema: Schema,
                    slots: BindingSlots | None) -> RowFunction:
    op = node.op
    left = _compile(node.left, schema, slots)
    right = _compile(node.right, schema, slots)
    if op == "and":
        def kleene_and(row: tuple) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return kleene_and
    if op == "or":
        def kleene_or(row: tuple) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return kleene_or
    comparison = _COMPARISONS.get(op)
    if comparison is not None:
        def compare(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return comparison(lhs, rhs)
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {lhs!r} and {rhs!r}") from exc
        return compare
    if op in ("+", "-", "*"):
        arith = {"+": _operator.add, "-": _operator.sub,
                 "*": _operator.mul}[op]
        def arithmetic(row: tuple) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return arith(lhs, rhs)
            except TypeError as exc:
                raise ExecutionError(
                    f"bad operand types for {op!r}: {lhs!r}, {rhs!r}"
                ) from exc
        return arithmetic
    if op in ("/", "%", "||"):
        def general(row: tuple) -> Any:
            return _arith(op, left(row), right(row))
        return general
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _compile_unary(node: ast.UnaryOp, schema: Schema,
                   slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    if node.op == "not":
        def negate(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            return not value
        return negate
    if node.op == "-":
        def minus(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            return -value
        return minus
    raise ExecutionError(f"unknown unary operator {node.op!r}")


def _compile_between(node: ast.Between, schema: Schema,
                     slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    low = _compile(node.low, schema, slots)
    high = _compile(node.high, schema, slots)
    negated = node.negated

    def between(row: tuple) -> Any:
        value = operand(row)
        lower_ok = _compare(">=", value, low(row))
        upper_ok = _compare("<=", value, high(row))
        if lower_ok is False or upper_ok is False:
            result: Any = False
        elif lower_ok is None or upper_ok is None:
            return None
        else:
            result = True
        return (not result) if negated else result
    return between


def _compile_like(node: ast.Like, schema: Schema,
                  slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    negated = node.negated
    if isinstance(node.pattern, ast.Literal) and node.pattern.value is not None:
        regex = _like_regex(str(node.pattern.value))

        def like_constant(row: tuple) -> Any:
            value = operand(row)
            if value is None:
                return None
            result = regex.match(str(value)) is not None
            return (not result) if negated else result
        return like_constant
    pattern = _compile(node.pattern, schema, slots)

    def like(row: tuple) -> Any:
        result = sql_like(operand(row), pattern(row))
        if result is None:
            return None
        return (not result) if negated else result
    return like


def _compile_in(node: ast.InList, schema: Schema,
                slots: BindingSlots | None) -> RowFunction:
    operand = _compile(node.operand, schema, slots)
    negated = node.negated
    item_fns = [_compile(item, schema, slots) for item in node.items]

    def in_list(row: tuple) -> Any:
        value = operand(row)
        if value is None:
            return None
        saw_null = False
        for item_fn in item_fns:
            candidate = item_fn(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False
    return in_list


def _compile_function(node: ast.FunctionCall, schema: Schema,
                      slots: BindingSlots | None) -> RowFunction:
    if node.name in AGGREGATE_NAMES:
        raise ExecutionError(
            f"aggregate {node.name}() used outside GROUP BY context")
    fn = SCALAR_FUNCTIONS.get(node.name)
    if fn is None:
        raise ExecutionError(f"unknown function {node.name!r}")
    arg_fns = [_compile(arg, schema, slots) for arg in node.args]
    if len(arg_fns) == 1:
        only = arg_fns[0]
        return lambda row: fn(only(row))
    return lambda row: fn(*(arg_fn(row) for arg_fn in arg_fns))


def _compile_case(node: ast.CaseWhen, schema: Schema,
                  slots: BindingSlots | None) -> RowFunction:
    branches = [(_compile(condition, schema, slots),
                 _compile(value, schema, slots))
                for condition, value in node.branches]
    otherwise = (_compile(node.otherwise, schema, slots)
                 if node.otherwise is not None else None)

    def case(row: tuple) -> Any:
        for condition_fn, value_fn in branches:
            if condition_fn(row) is True:
                return value_fn(row)
        if otherwise is not None:
            return otherwise(row)
        return None
    return case


# -- batch compilation ---------------------------------------------------------
#
# The vectorized executor evaluates expressions one *batch* at a time:
# a batch is a list of column vectors plus a selection vector ``sel``
# of row positions still alive within those vectors. A batch-compiled
# expression maps (columns, sel) -> one output value per sel entry.
#
# Semantics are identical to the row compiler — same NULL propagation,
# same error messages — with two deliberate deviations, both handled
# by falling back to the row closure:
#
# * AND/OR evaluate both sides eagerly over the batch. If that raises
#   (a division error the row path would have short-circuited past),
#   the batch re-runs through the row-compiled closure, which restores
#   true short-circuit order. The fallback sticks for that closure.
# * Comparisons and + - * vectorize without per-element type checks;
#   a TypeError reruns the batch element-wise through `_compare` /
#   `_arith` so the reported error matches the row path exactly.

BatchFunction = Callable[[list, Any], list]


def _gather(column: list, sel: Any) -> list:
    """Materialize ``column`` at the positions in ``sel``.

    The identity selection (``range(0, len(column))``) returns the
    column itself — callers must not mutate gathered vectors.
    """
    if (type(sel) is range and sel.start == 0 and sel.step == 1
            and sel.stop == len(column)):
        return column
    return [column[i] for i in sel]


def _rows_at(columns: list, sel: Any) -> list:
    """Row-tuple view of a batch — the bridge back to row closures."""
    return [tuple(column[i] for column in columns) for i in sel]


def compile_batch_expression(expression: ast.Expression, schema: Schema,
                             slots: BindingSlots | None = None
                             ) -> BatchFunction:
    """Lower ``expression`` into a closure over column batches.

    The returned callable takes ``(columns, sel)`` and returns one
    value per entry of ``sel``, equal to what the row-compiled
    expression yields on the corresponding row.
    """
    if _INTERPRET_ONLY:
        evaluator = Evaluator(
            schema, slots.as_bindings() if slots is not None else None)

        def interpret_batch(columns: list, sel: Any) -> list:
            return [evaluator.evaluate(expression, row)
                    for row in _rows_at(columns, sel)]
        return interpret_batch
    return _compile_batch(expression, schema, slots)


def compile_batch_predicate(expression: ast.Expression, schema: Schema,
                            slots: BindingSlots | None = None
                            ) -> BatchFunction:
    """Filter form of :func:`compile_batch_expression`: the closure
    returns the *refined selection vector* — the subset of ``sel``
    whose rows evaluate to SQL TRUE (unknown counts as false)."""
    if not _INTERPRET_ONLY:
        selector = _compile_batch_selector(expression, schema, slots)
        if selector is not None:
            return selector
    fn = compile_batch_expression(expression, schema, slots)

    def refine(columns: list, sel: Any) -> list:
        mask = fn(columns, sel)
        return [index for index, keep in zip(sel, mask) if keep is True]
    return refine


# the single-pass selector bodies; `v <op> value` must be written out
# literally per operator so the comprehension uses the native operator
# instead of a per-element call
_SELECTOR_SWEEPS: dict[str, Callable] = {
    "=": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v == value],
    "<>": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v != value],
    "<": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v < value],
    "<=": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v <= value],
    ">": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v > value],
    ">=": lambda value: lambda sel, operands: [
        index for index, v in zip(sel, operands)
        if v is not None and v >= value],
}

# orient a literal-on-the-left comparison as value-on-the-right
_FLIPPED_COMPARISON = {"=": "=", "<>": "<>", "<": ">", "<=": ">=",
                       ">": "<", ">=": "<="}


def _compile_batch_selector(expression: ast.Expression, schema: Schema,
                            slots: BindingSlots | None
                            ) -> BatchFunction | None:
    """Fused compare-and-refine for ``<expr> <cmp> <literal>``.

    The hottest predicate shape skips the intermediate truth-value
    mask entirely: one comprehension pass selects the surviving
    positions with a native comparison. A TypeError re-runs the batch
    through :func:`_compare` in the original operand order, raising
    the row path's exact error."""
    if not isinstance(expression, ast.BinaryOp):
        return None
    if expression.op not in _SELECTOR_SWEEPS:
        return None
    constant = _batch_constant_operand(expression, slots)
    if constant is None:
        return None
    side, value = constant
    op = expression.op
    varying = _compile_batch(
        expression.left if side == "right" else expression.right,
        schema, slots)
    if value is None:
        # <anything> <cmp> NULL is UNKNOWN: no row survives, but the
        # varying side still evaluates so its errors surface
        def none_selected(columns: list, sel: Any) -> list:
            varying(columns, sel)
            return []
        return none_selected
    sweep = _SELECTOR_SWEEPS[op if side == "right"
                             else _FLIPPED_COMPARISON[op]](value)

    def select(columns: list, sel: Any) -> list:
        operands = varying(columns, sel)
        try:
            return sweep(sel, operands)
        except TypeError:
            if side == "right":
                mask = [_compare(op, v, value) for v in operands]
            else:
                mask = [_compare(op, value, v) for v in operands]
            return [index for index, keep in zip(sel, mask)
                    if keep is True]
    return select


def compile_fused_kernel(predicates: list, projections: list | None,
                         schema: Schema) -> Callable[[list, Any], tuple]:
    """Fuse Scan→Filter→Project into one per-batch closure.

    ``kernel(columns, sel)`` returns ``(out_columns, out_sel, picked)``
    where ``picked`` is the absolute positions that survived every
    predicate (callers gather lineage annotations with it). With
    projections the output columns are dense and ``out_sel`` is None
    (identity selection); without, the input columns pass through with
    ``out_sel is picked``.
    """
    predicate_fns = [compile_batch_predicate(predicate, schema)
                     for predicate in predicates]
    projection_fns = (None if projections is None else
                      [compile_batch_expression(projection, schema)
                       for projection in projections])

    def kernel(columns: list, sel: Any) -> tuple:
        for refine in predicate_fns:
            if not sel:
                break
            sel = refine(columns, sel)
        if projection_fns is None:
            return columns, sel, sel
        if not sel:
            return [[] for _ in projection_fns], None, sel
        return [fn(columns, sel) for fn in projection_fns], None, sel
    return kernel


def vector_safe_columns(expressions: list,
                        schema: Schema) -> set[int] | None:
    """Column positions the batch closures for ``expressions`` read,
    or None when any node may evaluate through the row bridge
    (:func:`_rows_at` touches *every* column). The planner uses this
    to prune scan materialization under a fused projection."""
    needed: set[int] = set()
    if all(_collect_safe(expression, schema, needed)
           for expression in expressions):
        return needed
    return None


def _collect_safe(node: ast.Expression, schema: Schema,
                  needed: set[int]) -> bool:
    if isinstance(node, ast.Literal):
        return True
    if isinstance(node, ast.Parameter):
        return True  # reads the ambient binding, no columns
    if isinstance(node, ast.ColumnRef):
        needed.add(schema.index_of(node.name, node.qualifier))
        return True
    if isinstance(node, ast.BinaryOp):
        if node.op in ("and", "or"):
            return False  # eager eval falls back to rows on error
        return (_collect_safe(node.left, schema, needed)
                and _collect_safe(node.right, schema, needed))
    if isinstance(node, ast.UnaryOp):
        return _collect_safe(node.operand, schema, needed)
    if isinstance(node, ast.Between):
        return (_collect_safe(node.operand, schema, needed)
                and _collect_safe(node.low, schema, needed)
                and _collect_safe(node.high, schema, needed))
    if isinstance(node, ast.Like):
        return (_collect_safe(node.operand, schema, needed)
                and _collect_safe(node.pattern, schema, needed))
    if isinstance(node, ast.InList):
        if not all(isinstance(item, ast.Literal)
                   for item in node.items):
            return False  # compiles through the row closure
        return _collect_safe(node.operand, schema, needed)
    if isinstance(node, ast.IsNull):
        return _collect_safe(node.operand, schema, needed)
    if isinstance(node, ast.FunctionCall):
        return all(_collect_safe(arg, schema, needed)
                   for arg in node.args)
    return False  # CaseWhen / exotic: row fallback


def _batch_via_rows(node: ast.Expression, schema: Schema,
                    slots: BindingSlots | None) -> BatchFunction:
    """Evaluate a batch through the row-compiled closure — the escape
    hatch for nodes with no profitable vector form (CASE, nested IN
    with expressions) and for the eager-evaluation error fallbacks."""
    row_fn = _compile(node, schema, slots)

    def via_rows(columns: list, sel: Any) -> list:
        return [row_fn(row) for row in _rows_at(columns, sel)]
    return via_rows


def _compile_batch(node: ast.Expression, schema: Schema,
                   slots: BindingSlots | None) -> BatchFunction:
    if slots is not None and node in slots.index:
        values = slots.values
        position = slots.index[node]
        return lambda columns, sel: [values[position]] * len(sel)
    if isinstance(node, ast.Literal):
        value = node.value
        return lambda columns, sel: [value] * len(sel)
    if isinstance(node, ast.Parameter):
        index = node.index
        return lambda columns, sel: [parameter_value(index)] * len(sel)
    if isinstance(node, ast.ColumnRef):
        index = schema.index_of(node.name, node.qualifier)
        return lambda columns, sel: _gather(columns[index], sel)
    if isinstance(node, ast.BinaryOp):
        return _compile_batch_binary(node, schema, slots)
    if isinstance(node, ast.UnaryOp):
        return _compile_batch_unary(node, schema, slots)
    if isinstance(node, ast.Between):
        return _compile_batch_between(node, schema, slots)
    if isinstance(node, ast.Like):
        return _compile_batch_like(node, schema, slots)
    if isinstance(node, ast.InList):
        return _compile_batch_in(node, schema, slots)
    if isinstance(node, ast.IsNull):
        operand = _compile_batch(node.operand, schema, slots)
        if node.negated:
            return lambda columns, sel: [value is not None
                                         for value in operand(columns, sel)]
        return lambda columns, sel: [value is None
                                     for value in operand(columns, sel)]
    if isinstance(node, ast.FunctionCall):
        return _compile_batch_function(node, schema, slots)
    if isinstance(node, ast.Star):
        raise ExecutionError("'*' is only valid in select lists/COUNT")
    # CaseWhen and anything exotic: correctness over vector width
    return _batch_via_rows(node, schema, slots)


def _batch_constant_operand(node: ast.BinaryOp,
                            slots: BindingSlots | None):
    """(side, value) when one operand is a plain Literal, else None."""
    for side, operand in (("right", node.right), ("left", node.left)):
        if (isinstance(operand, ast.Literal)
                and (slots is None or operand not in slots.index)):
            return side, operand.value
    return None


def _batch_op_with_constant(op: str, fast, slow, left, right,
                            constant) -> BatchFunction:
    """Comparison/arithmetic against a literal: one-operand sweep with
    the same NULL propagation and TypeError re-run as the vector
    form."""
    side, value = constant
    varying = left if side == "right" else right
    if value is None:
        # still sweep the varying side: an error it raises (division
        # by zero) must surface exactly as in the row path
        def all_null(columns: list, sel: Any) -> list:
            return [None for _ in varying(columns, sel)]
        return all_null

    if side == "right":
        def batch_constant(columns: list, sel: Any) -> list:
            operands = varying(columns, sel)
            try:
                return [None if lhs is None else fast(lhs, value)
                        for lhs in operands]
            except TypeError:
                return [slow(op, lhs, value) for lhs in operands]
    else:
        def batch_constant(columns: list, sel: Any) -> list:
            operands = varying(columns, sel)
            try:
                return [None if rhs is None else fast(value, rhs)
                        for rhs in operands]
            except TypeError:
                return [slow(op, value, rhs) for rhs in operands]
    return batch_constant


def _batch_arith_col_col(op: str, left_index: int,
                         right_index: int) -> BatchFunction:
    """Arithmetic between two plain columns: gather and combine in a
    single sweep instead of materializing both operand vectors."""
    if op == "+":
        def sweep(columns: list, sel: Any) -> list:
            ca, cb = columns[left_index], columns[right_index]
            try:
                return [None if (lhs := ca[i]) is None
                        or (rhs := cb[i]) is None else lhs + rhs
                        for i in sel]
            except TypeError:
                return [_arith(op, ca[i], cb[i]) for i in sel]
    elif op == "-":
        def sweep(columns: list, sel: Any) -> list:
            ca, cb = columns[left_index], columns[right_index]
            try:
                return [None if (lhs := ca[i]) is None
                        or (rhs := cb[i]) is None else lhs - rhs
                        for i in sel]
            except TypeError:
                return [_arith(op, ca[i], cb[i]) for i in sel]
    else:
        def sweep(columns: list, sel: Any) -> list:
            ca, cb = columns[left_index], columns[right_index]
            try:
                return [None if (lhs := ca[i]) is None
                        or (rhs := cb[i]) is None else lhs * rhs
                        for i in sel]
            except TypeError:
                return [_arith(op, ca[i], cb[i]) for i in sel]
    return sweep


def _compile_batch_binary(node: ast.BinaryOp, schema: Schema,
                          slots: BindingSlots | None) -> BatchFunction:
    op = node.op
    left = _compile_batch(node.left, schema, slots)
    right = _compile_batch(node.right, schema, slots)
    if op in ("and", "or"):
        # Eager evaluation of both sides; on an ExecutionError the row
        # closure takes over permanently to restore short-circuiting.
        row_fallback: list = []

        if op == "and":
            def combine(lhs: Any, rhs: Any) -> Any:
                if lhs is False or rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True
        else:
            def combine(lhs: Any, rhs: Any) -> Any:
                if lhs is True or rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

        def batch_logic(columns: list, sel: Any) -> list:
            if row_fallback:
                return row_fallback[0](columns, sel)
            try:
                lefts = left(columns, sel)
                rights = right(columns, sel)
            except ExecutionError:
                row_fallback.append(_batch_via_rows(node, schema, slots))
                return row_fallback[0](columns, sel)
            return [combine(lhs, rhs) for lhs, rhs in zip(lefts, rights)]
        return batch_logic
    # a Literal operand folds into the closure: single-operand
    # comprehension, no broadcast vector, no per-element zip
    constant = _batch_constant_operand(node, slots)
    comparison = _COMPARISONS.get(op)
    if comparison is not None:
        if constant is not None:
            return _batch_op_with_constant(
                op, comparison, _compare, left, right, constant)

        def batch_compare(columns: list, sel: Any) -> list:
            lefts = left(columns, sel)
            rights = right(columns, sel)
            try:
                return [None if lhs is None or rhs is None
                        else comparison(lhs, rhs)
                        for lhs, rhs in zip(lefts, rights)]
            except TypeError:
                # rerun element-wise for the row path's exact error
                return [_compare(op, lhs, rhs)
                        for lhs, rhs in zip(lefts, rights)]
        return batch_compare
    if op in ("+", "-", "*"):
        arith = {"+": _operator.add, "-": _operator.sub,
                 "*": _operator.mul}[op]
        if constant is not None:
            return _batch_op_with_constant(
                op, arith, _arith, left, right, constant)
        if (isinstance(node.left, ast.ColumnRef)
                and isinstance(node.right, ast.ColumnRef)
                and (slots is None or (node.left not in slots.index
                                       and node.right not in slots.index))):
            return _batch_arith_col_col(
                op, schema.index_of(node.left.name, node.left.qualifier),
                schema.index_of(node.right.name, node.right.qualifier))

        def batch_arithmetic(columns: list, sel: Any) -> list:
            lefts = left(columns, sel)
            rights = right(columns, sel)
            try:
                return [None if lhs is None or rhs is None
                        else arith(lhs, rhs)
                        for lhs, rhs in zip(lefts, rights)]
            except TypeError:
                return [_arith(op, lhs, rhs)
                        for lhs, rhs in zip(lefts, rights)]
        return batch_arithmetic
    if op in ("/", "%", "||"):
        def batch_general(columns: list, sel: Any) -> list:
            lefts = left(columns, sel)
            rights = right(columns, sel)
            return [_arith(op, lhs, rhs)
                    for lhs, rhs in zip(lefts, rights)]
        return batch_general
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _compile_batch_unary(node: ast.UnaryOp, schema: Schema,
                         slots: BindingSlots | None) -> BatchFunction:
    operand = _compile_batch(node.operand, schema, slots)
    if node.op == "not":
        return lambda columns, sel: [None if value is None else (not value)
                                     for value in operand(columns, sel)]
    if node.op == "-":
        return lambda columns, sel: [None if value is None else -value
                                     for value in operand(columns, sel)]
    raise ExecutionError(f"unknown unary operator {node.op!r}")


def _compile_batch_between(node: ast.Between, schema: Schema,
                           slots: BindingSlots | None) -> BatchFunction:
    operand = _compile_batch(node.operand, schema, slots)
    low = _compile_batch(node.low, schema, slots)
    high = _compile_batch(node.high, schema, slots)
    negated = node.negated

    def batch_between(columns: list, sel: Any) -> list:
        out = []
        append = out.append
        for value, lower, upper in zip(operand(columns, sel),
                                       low(columns, sel),
                                       high(columns, sel)):
            lower_ok = _compare(">=", value, lower)
            upper_ok = _compare("<=", value, upper)
            if lower_ok is False or upper_ok is False:
                append(True if negated else False)
            elif lower_ok is None or upper_ok is None:
                append(None)
            else:
                append(False if negated else True)
        return out
    return batch_between


def _compile_batch_like(node: ast.Like, schema: Schema,
                        slots: BindingSlots | None) -> BatchFunction:
    operand = _compile_batch(node.operand, schema, slots)
    negated = node.negated
    if isinstance(node.pattern, ast.Literal) and node.pattern.value is not None:
        match = _like_regex(str(node.pattern.value)).match

        def batch_like_constant(columns: list, sel: Any) -> list:
            return [None if value is None
                    else ((match(str(value)) is None) if negated
                          else (match(str(value)) is not None))
                    for value in operand(columns, sel)]
        return batch_like_constant
    pattern = _compile_batch(node.pattern, schema, slots)

    def batch_like(columns: list, sel: Any) -> list:
        out = []
        for value, pat in zip(operand(columns, sel), pattern(columns, sel)):
            result = sql_like(value, pat)
            out.append(None if result is None
                       else ((not result) if negated else result))
        return out
    return batch_like


def _compile_batch_in(node: ast.InList, schema: Schema,
                      slots: BindingSlots | None) -> BatchFunction:
    if not all(isinstance(item, ast.Literal) for item in node.items):
        return _batch_via_rows(node, schema, slots)
    operand = _compile_batch(node.operand, schema, slots)
    negated = node.negated
    literals = [item.value for item in node.items]
    members = {value for value in literals if value is not None}
    saw_null = any(value is None for value in literals)
    on_hit = not negated
    on_miss = None if saw_null else negated

    def batch_in(columns: list, sel: Any) -> list:
        return [None if value is None
                else (on_hit if value in members else on_miss)
                for value in operand(columns, sel)]
    return batch_in


def _compile_batch_function(node: ast.FunctionCall, schema: Schema,
                            slots: BindingSlots | None) -> BatchFunction:
    if node.name in AGGREGATE_NAMES:
        raise ExecutionError(
            f"aggregate {node.name}() used outside GROUP BY context")
    fn = SCALAR_FUNCTIONS.get(node.name)
    if fn is None:
        raise ExecutionError(f"unknown function {node.name!r}")
    arg_fns = [_compile_batch(arg, schema, slots) for arg in node.args]
    if len(arg_fns) == 1:
        only = arg_fns[0]
        return lambda columns, sel: [fn(value)
                                     for value in only(columns, sel)]
    if not arg_fns:
        return lambda columns, sel: [fn() for _ in sel]

    def batch_call(columns: list, sel: Any) -> list:
        vectors = [arg_fn(columns, sel) for arg_fn in arg_fns]
        return [fn(*args) for args in zip(*vectors)]
    return batch_call
