"""File-system primitives behind the durability layer.

Every byte the engine persists — table checkpoints, the write-ahead log,
checkpoint metadata — flows through one :class:`FileIO` instance. That
gives the durability code a single narrow surface where faults can be
interposed (:class:`repro.faults.FaultyIO`) without monkey-patching, and
it is where the atomic-write protocol (temp file → fsync → rename) lives
so every caller gets it right.

Each primitive takes a ``point`` label: a stable, logical name for *why*
the operation happens (``"wal.append"``, ``"checkpoint.table.rename"``).
The base class ignores it; the fault injector keys its crash/torn-write
schedule on it.
"""

from __future__ import annotations

import os
from pathlib import Path


class FileIO:
    """Primitive file operations, each tagged with an injection point."""

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()

    def size(self, path: str | Path) -> int:
        """Current size of ``path`` in bytes (0 if it does not exist).

        A read-side primitive (never faulted, like :meth:`read_bytes`):
        the WAL captures the file size at the start of a commit group so
        a failed group fsync can truncate the group's batches back out.
        """
        try:
            return os.path.getsize(str(path))
        except OSError:
            return 0

    def write_bytes(self, path: str | Path, data: bytes,
                    point: str = "io.write") -> None:
        """Create or fully overwrite ``path`` (not atomic by itself)."""
        Path(path).write_bytes(data)

    def append_bytes(self, path: str | Path, data: bytes,
                     point: str = "io.append") -> None:
        with open(path, "ab") as handle:
            handle.write(data)

    def fsync(self, path: str | Path, point: str = "io.fsync") -> None:
        """Force ``path``'s content to stable storage."""
        fd = os.open(str(path), os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def rename(self, src: str | Path, dst: str | Path,
               point: str = "io.rename") -> None:
        """Atomically replace ``dst`` with ``src``, then sync the
        directory entry."""
        os.replace(str(src), str(dst))
        try:
            dir_fd = os.open(str(Path(dst).parent), os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover - not all filesystems allow it
            pass
        finally:
            os.close(dir_fd)

    def truncate(self, path: str | Path, size: int,
                 point: str = "io.truncate") -> None:
        with open(path, "rb+") as handle:
            handle.truncate(size)

    def unlink(self, path: str | Path, point: str = "io.unlink") -> None:
        Path(path).unlink(missing_ok=True)

    def atomic_write_bytes(self, path: str | Path, data: bytes,
                           point: str = "io.atomic") -> None:
        """Crash-safe full-file replacement.

        Writes a sibling temp file, fsyncs it, then renames it over the
        target — at every intermediate crash the old file is intact.
        The three steps surface as ``<point>.write``, ``<point>.fsync``,
        and ``<point>.rename`` injection points.
        """
        target = Path(path)
        temp = target.with_name(target.name + ".tmp")
        self.write_bytes(temp, data, point=f"{point}.write")
        self.fsync(temp, point=f"{point}.fsync")
        self.rename(temp, target, point=f"{point}.rename")
