"""Uncorrelated subquery expansion.

The executor evaluates expressions row-at-a-time against one schema,
so subqueries are *expanded before planning*: each ``(SELECT ...)``
value and ``IN (SELECT ...)`` predicate is executed once (innermost
first) and replaced with the resulting literal / literal list.

Correlated subqueries (referencing outer columns) are detected when
the inner query's planner fails to resolve the column and surface as
the usual CatalogError — they are out of the supported dialect.

Lineage semantics: a subquery's input tuples influenced the enclosing
statement's result through the filter or value it computed, so when
lineage tracking is on, the union of the subquery's lineage is added
to every result row of the enclosing query. This matches the
conservative reading of Lineage for nested queries (all-or-nothing
influence through a scalar).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.db.provtypes import EMPTY_LINEAGE
from repro.db.sql import ast
from repro.errors import ExecutionError

# type of the callback that runs a Select and returns (rows, lineages)
RunSelect = Callable[[ast.Select, bool], tuple[list[tuple], list[frozenset]]]


def has_subqueries(expression: ast.Expression | None) -> bool:
    if expression is None:
        return False
    found = False

    def visit(node: ast.Expression) -> ast.Expression:
        nonlocal found
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
            found = True
        return node

    _rewrite(expression, visit)
    return found


def expand_statement(statement: ast.Statement, run_select: RunSelect,
                     track_lineage: bool):
    """Expand every subquery in a statement.

    Returns ``(rewritten_statement, extra_lineage)``.
    """
    extra: set = set()

    def run_and_collect(select: ast.Select, expect_one_column: bool,
                        scalar: bool) -> Any:
        inner, inner_extra = expand_statement(select, run_select,
                                              track_lineage)
        rows, lineages = run_select(inner, track_lineage)
        extra.update(inner_extra)
        for lineage in lineages:
            extra.update(lineage)
        if expect_one_column and rows and len(rows[0]) != 1:
            raise ExecutionError(
                "subquery must return exactly one column")
        if scalar:
            if len(rows) > 1:
                raise ExecutionError(
                    "scalar subquery returned more than one row")
            return rows[0][0] if rows else None
        return [row[0] for row in rows]

    def replace(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ScalarSubquery):
            value = run_and_collect(node.query, True, scalar=True)
            return ast.Literal(value)
        if isinstance(node, ast.InSubquery):
            values = run_and_collect(node.query, True, scalar=False)
            return ast.InList(node.operand,
                              tuple(ast.Literal(value)
                                    for value in values),
                              node.negated)
        return node

    rewritten = _rewrite_statement(statement, replace)
    return rewritten, frozenset(extra)


# ---------------------------------------------------------------------------
# AST rewriting
# ---------------------------------------------------------------------------


def _rewrite(expression: ast.Expression,
             replace: Callable[[ast.Expression], ast.Expression]
             ) -> ast.Expression:
    """Bottom-up expression rewrite (children first, then the node)."""
    node = expression
    if isinstance(node, ast.UnaryOp):
        node = ast.UnaryOp(node.op, _rewrite(node.operand, replace))
    elif isinstance(node, ast.BinaryOp):
        node = ast.BinaryOp(node.op, _rewrite(node.left, replace),
                            _rewrite(node.right, replace))
    elif isinstance(node, ast.Between):
        node = ast.Between(_rewrite(node.operand, replace),
                           _rewrite(node.low, replace),
                           _rewrite(node.high, replace), node.negated)
    elif isinstance(node, ast.Like):
        node = ast.Like(_rewrite(node.operand, replace),
                        _rewrite(node.pattern, replace), node.negated)
    elif isinstance(node, ast.InList):
        node = ast.InList(_rewrite(node.operand, replace),
                          tuple(_rewrite(item, replace)
                                for item in node.items), node.negated)
    elif isinstance(node, ast.InSubquery):
        node = ast.InSubquery(_rewrite(node.operand, replace),
                              node.query, node.negated)
    elif isinstance(node, ast.IsNull):
        node = ast.IsNull(_rewrite(node.operand, replace), node.negated)
    elif isinstance(node, ast.FunctionCall):
        node = ast.FunctionCall(node.name,
                                tuple(_rewrite(arg, replace)
                                      for arg in node.args),
                                node.distinct)
    elif isinstance(node, ast.CaseWhen):
        node = ast.CaseWhen(
            tuple((_rewrite(cond, replace), _rewrite(value, replace))
                  for cond, value in node.branches),
            _rewrite(node.otherwise, replace)
            if node.otherwise is not None else None)
    return replace(node)


def _maybe(expression: ast.Expression | None,
           replace) -> ast.Expression | None:
    if expression is None:
        return None
    return _rewrite(expression, replace)


def _rewrite_statement(statement: ast.Statement, replace):
    if isinstance(statement, ast.Select):
        return ast.Select(
            items=tuple(
                ast.SelectItem(_rewrite(item.expression, replace),
                               item.alias)
                for item in statement.items),
            sources=statement.sources,
            where=_maybe(statement.where, replace),
            group_by=tuple(_rewrite(expression, replace)
                           for expression in statement.group_by),
            having=_maybe(statement.having, replace),
            order_by=tuple(
                ast.OrderItem(_rewrite(item.expression, replace),
                              item.descending)
                for item in statement.order_by),
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
            provenance=statement.provenance)
    if isinstance(statement, ast.SetOp):
        return ast.SetOp(statement.op,
                         _rewrite_statement(statement.left, replace),
                         _rewrite_statement(statement.right, replace),
                         statement.all)
    if isinstance(statement, ast.Update):
        return ast.Update(
            statement.table,
            tuple((name, _rewrite(value, replace))
                  for name, value in statement.assignments),
            _maybe(statement.where, replace))
    if isinstance(statement, ast.Delete):
        return ast.Delete(statement.table,
                          _maybe(statement.where, replace))
    if isinstance(statement, ast.Insert):
        return ast.Insert(
            statement.table, statement.columns,
            tuple(tuple(_rewrite(value, replace) for value in row)
                  for row in statement.rows),
            _rewrite_statement(statement.query, replace)
            if statement.query is not None else None)
    return statement
