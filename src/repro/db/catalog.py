"""Schema catalog: the set of tables known to a database instance."""

from __future__ import annotations

from typing import Iterator

from repro.db.mvcc import MVCCState
from repro.db.scancache import ScanCache
from repro.db.stats import TableStats
from repro.db.storage import DataDirectory, HeapTable
from repro.db.types import Schema
from repro.errors import CatalogError


class Catalog:
    """Name → table mapping with optional data-directory backing.

    ``version`` is a monotonic counter bumped on every schema change
    (table and index DDL). Plan-cache keys include it, so any cached
    plan built against an older schema becomes unreachable the moment
    the schema changes. ``stats_version`` plays the same role for
    ANALYZE statistics: it bumps whenever planner statistics change,
    so plans costed against stale statistics age out of the cache.

    The catalog also owns the database-wide :class:`MVCCState` and
    wires it into every table it manages, so scans anywhere in the
    engine observe the ambient read view (see :mod:`repro.db.mvcc`).
    """

    def __init__(self, data_directory: DataDirectory | None = None) -> None:
        self._tables: dict[str, HeapTable] = {}
        self.data_directory = data_directory
        self.version = 0
        self.mvcc = MVCCState()
        # the columnar scan cache is shared across tables like the
        # MVCC state, and keyed by its commit watermarks; watermark
        # moves strand segments eagerly via the write listener
        self.scan_cache = ScanCache()
        self.mvcc.write_listeners.append(self.scan_cache.invalidate_table)
        # ANALYZE statistics, table name → TableStats (advisory: the
        # planner falls back to rote heuristics for absent entries)
        self.stats: dict[str, TableStats] = {}
        self.stats_version = 0
        if data_directory is not None:
            for name in data_directory.table_names():
                table = data_directory.load_table(name)
                table.mvcc = self.mvcc
                table.scan_cache = self.scan_cache
                self._tables[name] = table

    def bump_version(self) -> None:
        """Record a schema change (called for index DDL, which goes
        through the table object rather than the catalog)."""
        self.version += 1

    def create_table(self, name: str, schema: Schema,
                     if_not_exists: bool = False) -> HeapTable:
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = HeapTable(key, schema)
        table.mvcc = self.mvcc
        table.scan_cache = self.scan_cache
        self._tables[key] = table
        self.version += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self.scan_cache.invalidate_table(key)
        self.version += 1
        if key in self.stats:
            del self.stats[key]
            self.stats_version += 1
        # disk removal is deferred to flush()/sync_drops(): destroying
        # durable state belongs to the checkpoint, after the DROP has
        # been committed to the WAL — an uncommitted DROP must be
        # recoverable

    def get_table(self, name: str) -> HeapTable:
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"table {name!r} does not exist")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- planner statistics ------------------------------------------------------

    def set_stats(self, name: str, stats: TableStats) -> None:
        """Install ANALYZE statistics for a table and age out every
        plan costed against the previous statistics."""
        self.stats[name.lower()] = stats
        self.stats_version += 1

    def stats_for(self, name: str) -> TableStats | None:
        return self.stats.get(name.lower())

    def dump_stats(self) -> dict[str, dict]:
        """JSON-ready snapshot of all statistics (checkpoint meta)."""
        return {name: stats.to_dict()
                for name, stats in sorted(self.stats.items())}

    def load_stats(self, dumped: dict[str, dict]) -> None:
        """Restore checkpointed statistics (tables only — entries for
        tables the catalog no longer knows are dropped)."""
        for name, entry in dumped.items():
            if name.lower() in self._tables:
                self.stats[name.lower()] = TableStats.from_dict(entry)
        if dumped:
            self.stats_version += 1

    # -- hash partitioning -------------------------------------------------------

    def dump_partitions(self) -> dict[str, dict]:
        """JSON-ready snapshot of partition specs (checkpoint meta).

        Partitioning deliberately lives outside the ``.tbl`` files so
        declaring or changing it never alters packaged table bytes."""
        return {
            name: table.partition_spec.to_dict()
            for name, table in sorted(self._tables.items())
            if table.partition_spec is not None
        }

    def load_partitions(self, dumped: dict[str, dict]) -> None:
        """Restore checkpointed partition specs, rebuilding bucket
        membership from the loaded heaps (entries for tables the
        catalog no longer knows are dropped)."""
        for name, entry in dumped.items():
            if name.lower() in self._tables:
                self._tables[name.lower()].set_partitioning(
                    entry["column"], int(entry["count"]))

    def table_of_index(self, index_name: str) -> HeapTable:
        """Find the table holding a (globally unique) index name."""
        wanted = index_name.lower()
        for table in self._tables.values():
            if wanted in table.indexes:
                return table
        raise CatalogError(f"index {index_name!r} does not exist")

    def has_index(self, index_name: str) -> bool:
        wanted = index_name.lower()
        return any(wanted in table.indexes
                   for table in self._tables.values())

    def __iter__(self) -> Iterator[HeapTable]:
        for name in sorted(self._tables):
            yield self._tables[name]

    # -- persistence -----------------------------------------------------------

    def flush(self) -> None:
        """Write every table to the data directory (checkpoint) and
        delete files for tables that were dropped since the last one."""
        if self.data_directory is None:
            return
        for table in self._tables.values():
            self.data_directory.save_table(table)
        self.sync_drops()

    def flush_table(self, name: str) -> None:
        if self.data_directory is None:
            return
        self.data_directory.save_table(self.get_table(name))

    def sync_drops(self) -> None:
        """Remove on-disk files of tables no longer in the catalog."""
        if self.data_directory is None:
            return
        for name in self.data_directory.table_names():
            if name not in self._tables:
                self.data_directory.drop_table(name)
