"""The client library ("libpq") with interposition hooks.

:class:`DBClient` is the only way applications in this reproduction talk
to a database server, exactly as libpq is for PostgreSQL clients. LDV
instruments this layer (paper Section VII-C): an :class:`Interceptor`
registered on a client sees every connect, every statement before it is
sent, and every result after it returns — and may *substitute* a result
without contacting the server at all, which is how server-excluded
replay works (Section VIII).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.db import protocol
from repro.db.engine import StatementResult
from repro.db.sql.params import bind_sql_text
from repro.db.types import Column, Schema, SQLType
from repro.errors import (
    ConnectionClosedError,
    DatabaseError,
    ProtocolError,
    TransientError,
)
from repro import errors as errors_module

Transport = Callable[[str], str]


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for transient wire failures.

    A round trip is retried when the transport raises
    :class:`repro.errors.TransientError` or the server answers with an
    error frame flagged ``transient`` — both guarantee the statement
    either had no durable effect or is idempotency-token-deduped, so a
    resend is safe. The ``sleep`` hook is injectable so tests can
    assert the backoff sequence without actually waiting.

    ``jitter`` spreads concurrent retriers apart: each delay is scaled
    by a factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using
    the injectable ``rng`` (seed it for deterministic tests). The
    default of 0 keeps the classic deterministic exponential sequence.
    Servers shedding load attach a ``retry_after`` hint to their error
    frames; it acts as a floor under the computed delay, so a client
    never hammers a server faster than the server asked to be left
    alone.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    sleep: Callable[[float], None] = field(default=time.sleep)
    jitter: float = 0.0
    rng: Optional[random.Random] = None

    def delay_for(self, attempt: int,
                  retry_after: float | None = None) -> float:
        """The pause before retry number ``attempt + 1`` (0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        if self.jitter and self.rng is not None:
            delay *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        return delay

    def backoff(self, attempt: int,
                retry_after: float | None = None) -> float:
        """Compute the delay for ``attempt``, sleep it, return it."""
        delay = self.delay_for(attempt, retry_after)
        self.sleep(delay)
        return delay


class Interceptor:
    """Base class for client-side interposition.

    Subclass and override any subset of the hooks. ``before_execute``
    may return a :class:`StatementResult` to short-circuit the server
    round trip (replay), or ``None`` to let the call proceed.
    """

    def on_connect(self, client: "DBClient") -> None:
        """Called after a connection is established."""

    def before_execute(self, client: "DBClient", sql: str,
                       provenance: bool) -> Optional[StatementResult]:
        """Called before a statement is sent; may substitute the result."""
        return None

    def after_execute(self, client: "DBClient", sql: str,
                      provenance: bool, result: StatementResult) -> None:
        """Called after a result arrives (or was substituted)."""

    def on_close(self, client: "DBClient") -> None:
        """Called when the connection closes."""


_READONLY_KEYWORDS = frozenset({"select", "explain"})


def _statement_mutates(sql: str) -> bool:
    """Heuristic: does this statement need an idempotency token?

    Anything whose leading keyword is not a pure read (SELECT /
    EXPLAIN) may change server state when re-executed — DML, DDL,
    COPY, and the transaction-control verbs all qualify. Stamping a
    read would be harmless but wasteful (its result would be recorded
    in the dedupe ledger for nothing).
    """
    head = sql.lstrip().split(None, 1)
    return bool(head) and head[0].lower() not in _READONLY_KEYWORDS


def _error_from_frame(frame: dict[str, Any]) -> Exception:
    """Build the local exception matching a server-side error frame."""
    error_type = frame.get("error_type", "DatabaseError")
    message = frame.get("message", "unknown server error")
    exception_class = getattr(errors_module, error_type, None)
    if exception_class is None or not (
            isinstance(exception_class, type)
            and issubclass(exception_class, Exception)):
        exception_class = DatabaseError
    exc = exception_class(message)
    # overload / drain responses carry the server's advisory backoff
    # hint; surface it so run_transaction's retry loop can honor it
    if frame.get("retry_after") is not None:
        exc.retry_after = float(frame["retry_after"])
    return exc


def _raise_from_error_frame(frame: dict[str, Any]) -> None:
    """Re-raise a server-side error as the matching local exception."""
    raise _error_from_frame(frame)


def _schema_from_frame(frame: dict[str, Any]) -> Schema:
    return Schema([Column(name, SQLType(type_name))
                   for name, type_name in zip(frame["columns"],
                                              frame["types"])])


class Prepared:
    """A client-side handle to a server-side prepared statement."""

    def __init__(self, client: "DBClient", name: str, sql: str,
                 param_count: int) -> None:
        self.client = client
        self.name = name
        self.sql = sql
        self.param_count = param_count
        self.closed = False

    def execute(self, params: list | tuple = (),
                provenance: bool = False,
                token: str | None = None) -> StatementResult:
        return self.client._execute_prepared(self, params, provenance,
                                             token=token)

    def query(self, params: list | tuple = ()) -> list[tuple]:
        return self.execute(params).rows

    def stream(self, params: list | tuple = (),
               fetch_size: int = 256,
               provenance: bool = False) -> "ResultCursor":
        return self.client.execute_stream(self, params=params,
                                          fetch_size=fetch_size,
                                          provenance=provenance)

    def deallocate(self) -> None:
        if not self.closed:
            self.closed = True
            self.client._deallocate(self.name)

    def bound_sql(self, params: list | tuple) -> str:
        """The canonical SQL text with ``params`` substituted — what
        interceptors (the monitor) observe for this execution, so a
        prepared call records and replays exactly like the equivalent
        text-protocol statement."""
        return bind_sql_text(self.sql, params)


class ResultCursor:
    """A streamed result set drained in bounded chunks.

    The first chunk arrives with the opening response (time-to-first-
    row does not wait for the full scan); ``fetch``/iteration pull
    further chunks over ``fetch`` frames. Once the stream is exhausted
    (or closed), the assembled prefix is reported to ``after_execute``
    interceptors as one ordinary result, so recorded traces stay
    replayable: a server-excluded replay substitutes the full result
    and the cursor chunks it locally.
    """

    def __init__(self, client: "DBClient", sql: str, provenance: bool,
                 schema: Schema, rows: list[tuple], lineages: list,
                 done: bool, fetch_size: int,
                 cursor_id: int | None = None,
                 source_tables: list[str] | None = None,
                 remote: bool = True) -> None:
        self.client = client
        self.sql = sql
        self.provenance = provenance
        self.schema = schema
        self.cursor_id = cursor_id
        self.fetch_size = fetch_size
        self.source_tables = source_tables or []
        self.rows_fetched = 0
        self.chunks_fetched = 0
        self.closed = False
        self._remote = remote
        self._done = done
        # rows received over the wire so far; sent as the ``position``
        # of every fetch so the server can detect (and replay) a chunk
        # whose response frame was lost in transit
        self._received = len(rows) if remote else 0
        self._pending: list[tuple] = list(rows)
        self._pending_lineages: list = list(lineages)
        self._rows: list[tuple] = []
        self._lineages: list = []
        self._reported = False
        self._absorb()
        if self._done and not self._pending:
            self._finish()

    @property
    def done(self) -> bool:
        return self._done and not self._pending

    def _absorb(self) -> None:
        self.rows_fetched += len(self._pending)
        if self._pending:
            self.chunks_fetched += 1
        self._rows.extend(self._pending)
        self._lineages.extend(self._pending_lineages)

    def fetch(self, max_rows: int | None = None) -> list[tuple]:
        """The next chunk of rows ([] when the stream is exhausted)."""
        if self.closed:
            raise ProtocolError("cursor is closed")
        limit = max_rows or self.fetch_size
        if not self._pending:
            if self._done:
                self._finish()
                return []
            response = self.client._round_trip(protocol.fetch_frame(
                self.client.connection_id, self.cursor_id, limit,
                position=self._received))
            if response.get("frame") == "error":
                _raise_from_error_frame(response)
            if response.get("frame") != "chunk":
                raise ProtocolError(
                    f"unexpected fetch response {response.get('frame')!r}")
            self._pending = [tuple(row) for row in response["rows"]]
            self._pending_lineages = list(response["lineages"])
            self._done = bool(response["done"])
            self._received += len(self._pending)
            self._absorb()
        chunk = self._pending[:limit]
        del self._pending[:limit]
        del self._pending_lineages[:limit]
        if self._done and not self._pending:
            self._finish()
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            chunk = self.fetch()
            if not chunk:
                return
            yield from chunk

    def fetch_all(self) -> list[tuple]:
        """Drain the stream and return every remaining row."""
        rows: list[tuple] = []
        for row in self:
            rows.append(row)
        return rows

    def result(self) -> StatementResult:
        """The rows served so far, as one StatementResult."""
        lineages = [lineage if isinstance(lineage, frozenset)
                    else frozenset(protocol._ref_from_wire(ref)
                                   for ref in lineage)
                    for lineage in self._lineages]
        return StatementResult(
            kind="select", schema=self.schema, rows=list(self._rows),
            lineages=lineages, rowcount=len(self._rows),
            source_tables=list(self.source_tables))

    def close(self) -> None:
        """Release the server-side cursor; idempotent."""
        if self.closed:
            return
        self.closed = True
        if self._remote and not self._done:
            self.client._round_trip(protocol.close_cursor_frame(
                self.client.connection_id, self.cursor_id))
        self._done = True
        self._pending = []
        self._pending_lineages = []
        self._report()

    def _finish(self) -> None:
        self._report()

    def _report(self) -> None:
        if self._reported:
            return
        self._reported = True
        self.client._after_execute(self.sql, self.provenance,
                                   self.result())


class PipelineHandle:
    """The eventual outcome of one pipelined statement."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self._result: Optional[StatementResult] = None
        self._error: Optional[Exception] = None
        self._settled = False

    def _settle(self, result: Optional[StatementResult],
                error: Optional[Exception]) -> None:
        self._result = result
        self._error = error
        self._settled = True

    @property
    def settled(self) -> bool:
        return self._settled

    def result(self) -> StatementResult:
        if not self._settled:
            raise ProtocolError(
                "pipeline has not been flushed yet")
        if self._error is not None:
            raise self._error
        return self._result

    def rows(self) -> list[tuple]:
        return self.result().rows


class Pipeline:
    """Batches statements into one wire exchange.

    ``execute``/``execute_prepared`` queue work and return
    :class:`PipelineHandle`\\ s; :meth:`flush` ships every queued frame
    in a single ``pipeline`` envelope (one round trip, one group-commit
    fsync on the server) and settles the handles in order. Frame
    failures are isolated: a failed statement settles its handle with
    the error while later statements still execute.

    Statements substituted by an interceptor (server-excluded replay)
    settle immediately and never reach the wire.
    """

    def __init__(self, client: "DBClient") -> None:
        self.client = client
        self._queued: list[
            tuple[dict, PipelineHandle, str, bool, str]] = []

    def execute(self, sql: str,
                provenance: bool = False,
                token: str | None = None) -> PipelineHandle:
        handle = PipelineHandle(sql)
        substituted = self.client._substitute(sql, provenance, "text")
        if substituted is not None:
            self.client._after_execute(sql, provenance, substituted)
            handle._settle(substituted, None)
            return handle
        frame = protocol.query_frame(self.client.connection_id, sql,
                                     provenance,
                                     token=self.client._token_for(
                                         sql, token))
        self._queued.append((frame, handle, sql, provenance, "text"))
        return handle

    def execute_prepared(self, prepared: Prepared,
                         params: list | tuple = (),
                         provenance: bool = False,
                         token: str | None = None) -> PipelineHandle:
        bound_sql = (prepared.bound_sql(params)
                     if self.client.interceptors else prepared.sql)
        handle = PipelineHandle(bound_sql)
        substituted = self.client._substitute(bound_sql, provenance,
                                              "prepared")
        if substituted is not None:
            self.client._after_execute(bound_sql, provenance, substituted)
            handle._settle(substituted, None)
            return handle
        frame = protocol.bind_execute_frame(
            self.client.connection_id, prepared.name, list(params),
            provenance,
            token=self.client._token_for(prepared.sql, token))
        self._queued.append((frame, handle, bound_sql, provenance,
                             "prepared"))
        return handle

    def __len__(self) -> int:
        return len(self._queued)

    def flush(self) -> None:
        """Ship the queued frames and settle every handle; a no-op
        when nothing is queued.

        Normally everything goes in one ``pipeline`` envelope. When
        the server advertised a ``max_pipeline_depth`` limit at
        connect time, the queue is chunked into envelopes of at most
        that many frames, so a deep batch degrades to several round
        trips instead of being bounced with an overload error."""
        if not self._queued:
            return
        queued, self._queued = self._queued, []
        depth = self.client.server_limits.get("max_pipeline_depth")
        size = int(depth) if depth else len(queued)
        for start in range(0, len(queued), size):
            self._flush_batch(queued[start:start + size])

    def _flush_batch(self, queued: list[
            tuple[dict, PipelineHandle, str, bool, str]]) -> None:
        envelope = protocol.pipeline_frame(
            self.client.connection_id,
            [frame for frame, _, _, _, _ in queued])
        response = self.client._round_trip(envelope)
        if response.get("frame") != "pipeline-result":
            raise ProtocolError(
                f"unexpected pipeline response {response.get('frame')!r}")
        frames = response.get("frames") or []
        if len(frames) != len(queued):
            raise ProtocolError(
                f"pipeline answered {len(frames)} frames "
                f"for {len(queued)} requests")
        for inner, (_, handle, sql, provenance, path) in zip(frames,
                                                             queued):
            status = inner.get("txn")
            if status is not None:
                self.client.in_transaction = status == "open"
            if inner.get("frame") == "error":
                handle._settle(None, _error_from_frame(inner))
                continue
            result = protocol.result_from_wire(inner)
            self.client.last_execution_path = path
            self.client._after_execute(sql, provenance, result)
            handle._settle(result, None)


class DBClient:
    """A connection-oriented database client.

    >>> server = DBServer()                                # doctest: +SKIP
    >>> client = DBClient(server.transport(), "app", "p1") # doctest: +SKIP
    >>> client.connect()                                   # doctest: +SKIP
    >>> client.execute("SELECT 1").rows                    # doctest: +SKIP
    [(1,)]
    """

    def __init__(self, transport: Transport, client_name: str = "client",
                 process_id: str = "0",
                 retry_policy: RetryPolicy | None = None,
                 idempotency_tokens: bool = True) -> None:
        self.transport = transport
        self.client_name = client_name
        self.process_id = process_id
        self.retry_policy = retry_policy
        # stamp mutating statements with session-unique tokens so a
        # frame-level retry after a lost response is deduped by the
        # server instead of applied twice; off only for tests that
        # want to demonstrate the double-apply failure mode
        self.idempotency_tokens = idempotency_tokens
        self.connection_id: Optional[int] = None
        self.interceptors: list[Interceptor] = []
        self.statements_sent = 0
        self.retries_performed = 0
        self.transactions_retried = 0
        # mirrors the server's view, updated from the txn field the
        # server stamps on per-connection responses
        self.in_transaction = False
        # negotiated on connect: min(client, server); None until then
        self.protocol_version: Optional[int] = None
        # how the last statement reached the server ("text",
        # "prepared", or "stream") — the monitor records it so replay
        # can tell the paths apart
        self.last_execution_path = "text"
        # caps the server advertised at connect time (empty dict for
        # servers without limits or pre-resilience recordings)
        self.server_limits: dict[str, Any] = {}
        self._prepared_seq = 0
        # monotonic across reconnects — a token must never be reused
        # for a *different* statement within this client's lifetime
        self._token_seq = 0

    # -- interposition -----------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.remove(interceptor)

    # -- connection lifecycle ------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.connection_id is not None

    def connect(self) -> None:
        if self.connected:
            raise ProtocolError("client is already connected")
        response = self._round_trip(
            protocol.connect_frame(self.client_name, self.process_id))
        if response.get("frame") != "connected":
            raise ProtocolError(
                f"unexpected connect response {response.get('frame')!r}")
        self.connection_id = int(response["connection_id"])
        # a version-1 server's connected frame lacks the field
        self.protocol_version = int(response.get("version", 1))
        self.server_limits = dict(response.get("limits") or {})
        for interceptor in self.interceptors:
            interceptor.on_connect(self)

    def close(self) -> None:
        if not self.connected:
            return
        try:
            self._round_trip(protocol.close_frame(self.connection_id))
        finally:
            self.connection_id = None
            self.in_transaction = False  # the server rolled it back
            for interceptor in self.interceptors:
                interceptor.on_close(self)

    def __enter__(self) -> "DBClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- statement execution ----------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False,
                token: str | None = None) -> StatementResult:
        """Send one statement and return its result.

        Interceptors run in registration order; the first one that
        substitutes a result wins and the server is never contacted.
        Mutating statements are stamped with an idempotency ``token``
        (auto-generated unless given) so wire-level retries are
        exactly-once.
        """
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        result = self._substitute(sql, provenance, "text")
        if result is None:
            response = self._round_trip(
                protocol.query_frame(self.connection_id, sql, provenance,
                                     token=self._token_for(sql, token)))
            if response.get("frame") == "error":
                _raise_from_error_frame(response)
            result = protocol.result_from_wire(response)
        self._after_execute(sql, provenance, result)
        return result

    def query(self, sql: str) -> list[tuple]:
        """Shorthand: run a SELECT and return its rows."""
        return self.execute(sql).rows

    # -- idempotency tokens ---------------------------------------------------------

    def _token_for(self, sql: str,
                   explicit: str | None) -> Optional[str]:
        """The idempotency token to stamp on a statement frame.

        An explicit token always wins (the chaos harness pins tokens
        so an oracle re-run replays the same dedupe decisions). Reads
        are never stamped; mutating statements get a fresh
        client-unique token per *logical* execution — frame-level
        resends reuse the same encoded frame, so they carry the same
        token, which is the whole point.
        """
        if explicit is not None:
            return explicit
        if not self.idempotency_tokens or not _statement_mutates(sql):
            return None
        self._token_seq += 1
        return f"{self.client_name}/{self.process_id}#{self._token_seq}"

    # -- prepared statements (protocol v2) ----------------------------------------------

    def prepare(self, sql: str, name: str | None = None) -> Prepared:
        """Parse and plan ``sql`` once on the server; execute it many
        times with different ``$n`` parameter bindings."""
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        if name is None:
            self._prepared_seq += 1
            name = f"ps{self._prepared_seq}"
        response = self._round_trip(
            protocol.prepare_frame(self.connection_id, name, sql))
        if response.get("frame") != "prepared":
            raise ProtocolError(
                f"unexpected prepare response {response.get('frame')!r}")
        return Prepared(self, str(response["name"]), sql,
                        int(response["param_count"]))

    def _execute_prepared(self, prepared: Prepared,
                          params: list | tuple,
                          provenance: bool,
                          token: str | None = None) -> StatementResult:
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        if prepared.closed:
            raise ProtocolError(
                f"prepared statement {prepared.name!r} was deallocated")
        # interceptors observe the canonical bound text, never the
        # frame internals, so prepared traffic records and replays
        # exactly like the equivalent text statement; rendering it is
        # pure monitoring overhead, skipped on un-audited connections
        bound_sql = (prepared.bound_sql(params) if self.interceptors
                     else prepared.sql)
        result = self._substitute(bound_sql, provenance, "prepared")
        if result is None:
            response = self._round_trip(protocol.bind_execute_frame(
                self.connection_id, prepared.name, list(params),
                provenance,
                token=self._token_for(prepared.sql, token)))
            result = protocol.result_from_wire(response)
        self._after_execute(bound_sql, provenance, result)
        return result

    def _deallocate(self, name: str) -> None:
        if not self.connected:
            return
        self._round_trip(protocol.deallocate_frame(self.connection_id,
                                                   name))

    # -- streamed result sets (protocol v2) ---------------------------------------------

    def execute_stream(self, source: "str | Prepared",
                       params: list | tuple = (),
                       fetch_size: int = 256,
                       provenance: bool = False,
                       token: str | None = None) -> ResultCursor:
        """Run a SELECT and stream its rows in bounded chunks.

        Returns a :class:`ResultCursor` whose first chunk rode along
        with the opening response; further chunks are pulled on demand.
        The server pins the cursor to the statement's snapshot, so the
        stream is immune to concurrent commits.

        The open is stamped with an idempotency token (auto-generated
        unless passed explicitly): if the opening response frame is
        lost, the retried open replays the original cursor instead of
        leaking a second one on the server.
        """
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        if token is None and self.idempotency_tokens:
            self._token_seq += 1
            token = (f"{self.client_name}/{self.process_id}"
                     f"#{self._token_seq}")
        if isinstance(source, Prepared):
            if source.closed:
                raise ProtocolError(
                    f"prepared statement {source.name!r} was deallocated")
            sql = (source.bound_sql(params) if self.interceptors
                   else source.sql)
            frame = protocol.bind_execute_frame(
                self.connection_id, source.name, list(params),
                provenance, fetch=fetch_size, token=token)
        else:
            sql = bind_sql_text(source, params) if params else source
            frame = protocol.query_frame(self.connection_id, sql,
                                         provenance, fetch=fetch_size,
                                         token=token)
        substituted = self._substitute(sql, provenance, "stream")
        if substituted is not None:
            # server-excluded replay: chunk the substituted result
            # locally, no wire traffic at all
            return ResultCursor(
                self, sql, provenance, substituted.schema,
                list(substituted.rows), list(substituted.lineages),
                True, fetch_size,
                source_tables=list(substituted.source_tables),
                remote=False)
        response = self._round_trip(frame)
        if response.get("frame") == "error":
            _raise_from_error_frame(response)
        if response.get("frame") != "cursor":
            raise ProtocolError(
                f"unexpected stream response {response.get('frame')!r}")
        return ResultCursor(
            self, sql, provenance, _schema_from_frame(response),
            [tuple(row) for row in response["rows"]],
            list(response["lineages"]), bool(response["done"]),
            fetch_size, cursor_id=int(response["cursor_id"]),
            source_tables=list(response["source_tables"]))

    # -- pipelining (protocol v2) -------------------------------------------------------

    @contextmanager
    def pipeline(self) -> Iterator[Pipeline]:
        """Batch statements into one wire exchange.

        >>> with client.pipeline() as p:            # doctest: +SKIP
        ...     a = p.execute("INSERT INTO t VALUES (1)")
        ...     b = p.execute("SELECT x FROM t")
        >>> b.rows()                                # doctest: +SKIP

        The block's queued statements are flushed on exit (one round
        trip, one group-commit fsync); results are read off the
        handles afterwards.
        """
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        batch = Pipeline(self)
        yield batch
        batch.flush()

    # -- server observability -----------------------------------------------------------

    def server_stats(self) -> dict[str, Any]:
        """Server- and connection-level serving counters."""
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        response = self._round_trip(
            protocol.stats_frame(self.connection_id))
        if response.get("frame") != "stats-result":
            raise ProtocolError(
                f"unexpected stats response {response.get('frame')!r}")
        return {"server": response["server"],
                "connection": response["connection"]}

    # -- interceptor plumbing -----------------------------------------------------------

    def _substitute(self, sql: str, provenance: bool,
                    path: str) -> Optional[StatementResult]:
        """Offer ``sql`` to the interceptors; the first substituted
        result (server-excluded replay) wins."""
        self.last_execution_path = path
        for interceptor in self.interceptors:
            result = interceptor.before_execute(self, sql, provenance)
            if result is not None:
                return result
        return None

    def _after_execute(self, sql: str, provenance: bool,
                       result: StatementResult) -> None:
        self.statements_sent += 1
        for interceptor in self.interceptors:
            interceptor.after_execute(self, sql, provenance, result)

    # -- transactions -----------------------------------------------------------------

    def begin(self) -> StatementResult:
        return self.execute("BEGIN")

    def commit(self) -> StatementResult:
        return self.execute("COMMIT")

    def rollback(self) -> StatementResult:
        return self.execute("ROLLBACK")

    @contextmanager
    def transaction(self) -> Iterator["DBClient"]:
        """BEGIN on entry; COMMIT on success, ROLLBACK on error.

        No conflict retry — wrap the block in :meth:`run_transaction`
        when write conflicts are possible.
        """
        self.begin()
        try:
            yield self
        except BaseException:
            if self.in_transaction:
                self.rollback()
            raise
        self.commit()

    def run_transaction(self, body: Callable[["DBClient"], Any],
                        max_attempts: int | None = None) -> Any:
        """Run ``body(client)`` inside a transaction, retrying the
        *whole* transaction on transient failures.

        This is the client-side half of first-committer-wins: a
        :class:`repro.errors.WriteConflictError` (from any statement or
        from COMMIT itself) means the server already rolled the
        transaction back, so the body is re-run under a fresh BEGIN —
        a fresh snapshot — after the retry policy's backoff. The body
        must therefore be free of client-side effects it cannot repeat.
        """
        attempts = max_attempts
        if attempts is None:
            attempts = (self.retry_policy.max_attempts
                        if self.retry_policy is not None else 1)
        attempt = 0
        while True:
            try:
                self.begin()
                value = body(self)
                self.commit()
                return value
            except TransientError as exc:  # includes WriteConflictError
                if self.in_transaction:
                    # non-conflict transient failure mid-transaction:
                    # reset server-side state before starting over
                    try:
                        self.rollback()
                    except DatabaseError:
                        self.in_transaction = False
                attempt += 1
                if attempt >= attempts:
                    raise
                if self.retry_policy is not None:
                    self.retry_policy.backoff(
                        attempt - 1, getattr(exc, "retry_after", None))
                self.transactions_retried += 1

    def explain_analyze(self, sql: str) -> StatementResult:
        """Run ``EXPLAIN ANALYZE`` over a SELECT.

        The returned result carries the annotated plan as text rows
        and per-operator measurements in ``result.stats["analyze"]``
        (plus server wall time in ``result.stats["server"]``).
        """
        return self.execute(f"EXPLAIN ANALYZE {sql}")

    # -- plumbing ---------------------------------------------------------------------

    def _round_trip(self, frame: dict[str, Any]) -> dict[str, Any]:
        request_text = protocol.encode_frame(frame)
        response = self._send_with_retry(request_text)
        status = response.get("txn")
        if status is not None:
            # the server stamps its transaction state on every
            # per-connection response — including the auto-rollback
            # after a write conflict
            self.in_transaction = status == "open"
        if response.get("frame") == "error" and frame.get("frame") != "query":
            _raise_from_error_frame(response)
        return response

    def _send_with_retry(self, request_text: str) -> dict[str, Any]:
        """One logical send: transient failures are retried with
        backoff until the policy is exhausted, then surfaced.

        The *same* encoded request text is resent on every attempt —
        so a mutating statement's idempotency token is stable across
        retries and the server's dedupe ledger can recognise the
        resend. Transient error frames may carry a ``retry_after``
        hint (overload sheds, drain rejections); it floors the backoff
        delay.
        """
        attempt = 0
        while True:
            try:
                response = protocol.decode_frame(
                    self.transport(request_text))
            except TransientError:
                if not self._backoff(attempt):
                    raise
                attempt += 1
                continue
            if (protocol.is_transient_error(response)
                    and self._backoff(attempt,
                                      response.get("retry_after"))):
                attempt += 1
                continue
            return response

    def _backoff(self, attempt: int,
                 retry_after: float | None = None) -> bool:
        """Sleep before retry ``attempt + 1``; False when out of
        attempts (or no policy is configured)."""
        policy = self.retry_policy
        if policy is None or attempt + 1 >= policy.max_attempts:
            return False
        policy.backoff(attempt, retry_after)
        self.retries_performed += 1
        return True
