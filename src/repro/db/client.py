"""The client library ("libpq") with interposition hooks.

:class:`DBClient` is the only way applications in this reproduction talk
to a database server, exactly as libpq is for PostgreSQL clients. LDV
instruments this layer (paper Section VII-C): an :class:`Interceptor`
registered on a client sees every connect, every statement before it is
sent, and every result after it returns — and may *substitute* a result
without contacting the server at all, which is how server-excluded
replay works (Section VIII).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.db import protocol
from repro.db.engine import StatementResult
from repro.errors import ConnectionClosedError, DatabaseError, ProtocolError
from repro import errors as errors_module

Transport = Callable[[str], str]


class Interceptor:
    """Base class for client-side interposition.

    Subclass and override any subset of the hooks. ``before_execute``
    may return a :class:`StatementResult` to short-circuit the server
    round trip (replay), or ``None`` to let the call proceed.
    """

    def on_connect(self, client: "DBClient") -> None:
        """Called after a connection is established."""

    def before_execute(self, client: "DBClient", sql: str,
                       provenance: bool) -> Optional[StatementResult]:
        """Called before a statement is sent; may substitute the result."""
        return None

    def after_execute(self, client: "DBClient", sql: str,
                      provenance: bool, result: StatementResult) -> None:
        """Called after a result arrives (or was substituted)."""

    def on_close(self, client: "DBClient") -> None:
        """Called when the connection closes."""


def _raise_from_error_frame(frame: dict[str, Any]) -> None:
    """Re-raise a server-side error as the matching local exception."""
    error_type = frame.get("error_type", "DatabaseError")
    message = frame.get("message", "unknown server error")
    exception_class = getattr(errors_module, error_type, None)
    if exception_class is None or not (
            isinstance(exception_class, type)
            and issubclass(exception_class, Exception)):
        exception_class = DatabaseError
    raise exception_class(message)


class DBClient:
    """A connection-oriented database client.

    >>> server = DBServer()                                # doctest: +SKIP
    >>> client = DBClient(server.transport(), "app", "p1") # doctest: +SKIP
    >>> client.connect()                                   # doctest: +SKIP
    >>> client.execute("SELECT 1").rows                    # doctest: +SKIP
    [(1,)]
    """

    def __init__(self, transport: Transport, client_name: str = "client",
                 process_id: str = "0") -> None:
        self.transport = transport
        self.client_name = client_name
        self.process_id = process_id
        self.connection_id: Optional[int] = None
        self.interceptors: list[Interceptor] = []
        self.statements_sent = 0

    # -- interposition -----------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.remove(interceptor)

    # -- connection lifecycle ------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.connection_id is not None

    def connect(self) -> None:
        if self.connected:
            raise ProtocolError("client is already connected")
        response = self._round_trip(
            protocol.connect_frame(self.client_name, self.process_id))
        if response.get("frame") != "connected":
            raise ProtocolError(
                f"unexpected connect response {response.get('frame')!r}")
        self.connection_id = int(response["connection_id"])
        for interceptor in self.interceptors:
            interceptor.on_connect(self)

    def close(self) -> None:
        if not self.connected:
            return
        try:
            self._round_trip(protocol.close_frame(self.connection_id))
        finally:
            self.connection_id = None
            for interceptor in self.interceptors:
                interceptor.on_close(self)

    def __enter__(self) -> "DBClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- statement execution ----------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False) -> StatementResult:
        """Send one statement and return its result.

        Interceptors run in registration order; the first one that
        substitutes a result wins and the server is never contacted.
        """
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        substituted: Optional[StatementResult] = None
        for interceptor in self.interceptors:
            substituted = interceptor.before_execute(self, sql, provenance)
            if substituted is not None:
                break
        if substituted is not None:
            result = substituted
        else:
            response = self._round_trip(
                protocol.query_frame(self.connection_id, sql, provenance))
            if response.get("frame") == "error":
                _raise_from_error_frame(response)
            result = protocol.result_from_wire(response)
        self.statements_sent += 1
        for interceptor in self.interceptors:
            interceptor.after_execute(self, sql, provenance, result)
        return result

    def query(self, sql: str) -> list[tuple]:
        """Shorthand: run a SELECT and return its rows."""
        return self.execute(sql).rows

    # -- plumbing ---------------------------------------------------------------------

    def _round_trip(self, frame: dict[str, Any]) -> dict[str, Any]:
        request_text = protocol.encode_frame(frame)
        response_text = self.transport(request_text)
        response = protocol.decode_frame(response_text)
        if response.get("frame") == "error" and frame.get("frame") != "query":
            _raise_from_error_frame(response)
        return response
