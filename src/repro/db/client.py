"""The client library ("libpq") with interposition hooks.

:class:`DBClient` is the only way applications in this reproduction talk
to a database server, exactly as libpq is for PostgreSQL clients. LDV
instruments this layer (paper Section VII-C): an :class:`Interceptor`
registered on a client sees every connect, every statement before it is
sent, and every result after it returns — and may *substitute* a result
without contacting the server at all, which is how server-excluded
replay works (Section VIII).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.db import protocol
from repro.db.engine import StatementResult
from repro.errors import (
    ConnectionClosedError,
    DatabaseError,
    ProtocolError,
    TransientError,
)
from repro import errors as errors_module

Transport = Callable[[str], str]


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for transient wire failures.

    A round trip is retried when the transport raises
    :class:`repro.errors.TransientError` or the server answers with an
    error frame flagged ``transient`` — both guarantee the statement
    had no durable effect, so a resend is safe. The ``sleep`` hook is
    injectable so tests can assert the backoff sequence without
    actually waiting.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    sleep: Callable[[float], None] = field(default=time.sleep)

    def delay_for(self, attempt: int) -> float:
        """The pause before retry number ``attempt + 1`` (0-based)."""
        return min(self.base_delay * self.multiplier ** attempt,
                   self.max_delay)


class Interceptor:
    """Base class for client-side interposition.

    Subclass and override any subset of the hooks. ``before_execute``
    may return a :class:`StatementResult` to short-circuit the server
    round trip (replay), or ``None`` to let the call proceed.
    """

    def on_connect(self, client: "DBClient") -> None:
        """Called after a connection is established."""

    def before_execute(self, client: "DBClient", sql: str,
                       provenance: bool) -> Optional[StatementResult]:
        """Called before a statement is sent; may substitute the result."""
        return None

    def after_execute(self, client: "DBClient", sql: str,
                      provenance: bool, result: StatementResult) -> None:
        """Called after a result arrives (or was substituted)."""

    def on_close(self, client: "DBClient") -> None:
        """Called when the connection closes."""


def _raise_from_error_frame(frame: dict[str, Any]) -> None:
    """Re-raise a server-side error as the matching local exception."""
    error_type = frame.get("error_type", "DatabaseError")
    message = frame.get("message", "unknown server error")
    exception_class = getattr(errors_module, error_type, None)
    if exception_class is None or not (
            isinstance(exception_class, type)
            and issubclass(exception_class, Exception)):
        exception_class = DatabaseError
    raise exception_class(message)


class DBClient:
    """A connection-oriented database client.

    >>> server = DBServer()                                # doctest: +SKIP
    >>> client = DBClient(server.transport(), "app", "p1") # doctest: +SKIP
    >>> client.connect()                                   # doctest: +SKIP
    >>> client.execute("SELECT 1").rows                    # doctest: +SKIP
    [(1,)]
    """

    def __init__(self, transport: Transport, client_name: str = "client",
                 process_id: str = "0",
                 retry_policy: RetryPolicy | None = None) -> None:
        self.transport = transport
        self.client_name = client_name
        self.process_id = process_id
        self.retry_policy = retry_policy
        self.connection_id: Optional[int] = None
        self.interceptors: list[Interceptor] = []
        self.statements_sent = 0
        self.retries_performed = 0
        self.transactions_retried = 0
        # mirrors the server's view, updated from the txn field the
        # server stamps on per-connection responses
        self.in_transaction = False

    # -- interposition -----------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.remove(interceptor)

    # -- connection lifecycle ------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.connection_id is not None

    def connect(self) -> None:
        if self.connected:
            raise ProtocolError("client is already connected")
        response = self._round_trip(
            protocol.connect_frame(self.client_name, self.process_id))
        if response.get("frame") != "connected":
            raise ProtocolError(
                f"unexpected connect response {response.get('frame')!r}")
        self.connection_id = int(response["connection_id"])
        for interceptor in self.interceptors:
            interceptor.on_connect(self)

    def close(self) -> None:
        if not self.connected:
            return
        try:
            self._round_trip(protocol.close_frame(self.connection_id))
        finally:
            self.connection_id = None
            self.in_transaction = False  # the server rolled it back
            for interceptor in self.interceptors:
                interceptor.on_close(self)

    def __enter__(self) -> "DBClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- statement execution ----------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False) -> StatementResult:
        """Send one statement and return its result.

        Interceptors run in registration order; the first one that
        substitutes a result wins and the server is never contacted.
        """
        if not self.connected:
            raise ConnectionClosedError("client is not connected")
        substituted: Optional[StatementResult] = None
        for interceptor in self.interceptors:
            substituted = interceptor.before_execute(self, sql, provenance)
            if substituted is not None:
                break
        if substituted is not None:
            result = substituted
        else:
            response = self._round_trip(
                protocol.query_frame(self.connection_id, sql, provenance))
            if response.get("frame") == "error":
                _raise_from_error_frame(response)
            result = protocol.result_from_wire(response)
        self.statements_sent += 1
        for interceptor in self.interceptors:
            interceptor.after_execute(self, sql, provenance, result)
        return result

    def query(self, sql: str) -> list[tuple]:
        """Shorthand: run a SELECT and return its rows."""
        return self.execute(sql).rows

    # -- transactions -----------------------------------------------------------------

    def begin(self) -> StatementResult:
        return self.execute("BEGIN")

    def commit(self) -> StatementResult:
        return self.execute("COMMIT")

    def rollback(self) -> StatementResult:
        return self.execute("ROLLBACK")

    @contextmanager
    def transaction(self) -> Iterator["DBClient"]:
        """BEGIN on entry; COMMIT on success, ROLLBACK on error.

        No conflict retry — wrap the block in :meth:`run_transaction`
        when write conflicts are possible.
        """
        self.begin()
        try:
            yield self
        except BaseException:
            if self.in_transaction:
                self.rollback()
            raise
        self.commit()

    def run_transaction(self, body: Callable[["DBClient"], Any],
                        max_attempts: int | None = None) -> Any:
        """Run ``body(client)`` inside a transaction, retrying the
        *whole* transaction on transient failures.

        This is the client-side half of first-committer-wins: a
        :class:`repro.errors.WriteConflictError` (from any statement or
        from COMMIT itself) means the server already rolled the
        transaction back, so the body is re-run under a fresh BEGIN —
        a fresh snapshot — after the retry policy's backoff. The body
        must therefore be free of client-side effects it cannot repeat.
        """
        attempts = max_attempts
        if attempts is None:
            attempts = (self.retry_policy.max_attempts
                        if self.retry_policy is not None else 1)
        attempt = 0
        while True:
            try:
                self.begin()
                value = body(self)
                self.commit()
                return value
            except TransientError:  # includes WriteConflictError
                if self.in_transaction:
                    # non-conflict transient failure mid-transaction:
                    # reset server-side state before starting over
                    try:
                        self.rollback()
                    except DatabaseError:
                        self.in_transaction = False
                attempt += 1
                if attempt >= attempts:
                    raise
                if self.retry_policy is not None:
                    self.retry_policy.sleep(
                        self.retry_policy.delay_for(attempt - 1))
                self.transactions_retried += 1

    def explain_analyze(self, sql: str) -> StatementResult:
        """Run ``EXPLAIN ANALYZE`` over a SELECT.

        The returned result carries the annotated plan as text rows
        and per-operator measurements in ``result.stats["analyze"]``
        (plus server wall time in ``result.stats["server"]``).
        """
        return self.execute(f"EXPLAIN ANALYZE {sql}")

    # -- plumbing ---------------------------------------------------------------------

    def _round_trip(self, frame: dict[str, Any]) -> dict[str, Any]:
        request_text = protocol.encode_frame(frame)
        response = self._send_with_retry(request_text)
        status = response.get("txn")
        if status is not None:
            # the server stamps its transaction state on every
            # per-connection response — including the auto-rollback
            # after a write conflict
            self.in_transaction = status == "open"
        if response.get("frame") == "error" and frame.get("frame") != "query":
            _raise_from_error_frame(response)
        return response

    def _send_with_retry(self, request_text: str) -> dict[str, Any]:
        """One logical send: transient failures are retried with
        backoff until the policy is exhausted, then surfaced."""
        attempt = 0
        while True:
            try:
                response = protocol.decode_frame(
                    self.transport(request_text))
            except TransientError:
                if not self._backoff(attempt):
                    raise
                attempt += 1
                continue
            if (protocol.is_transient_error(response)
                    and self._backoff(attempt)):
                attempt += 1
                continue
            return response

    def _backoff(self, attempt: int) -> bool:
        """Sleep before retry ``attempt + 1``; False when out of
        attempts (or no policy is configured)."""
        policy = self.retry_policy
        if policy is None or attempt + 1 >= policy.max_attempts:
            return False
        policy.sleep(policy.delay_for(attempt))
        self.retries_performed += 1
        return True
