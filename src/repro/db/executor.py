"""Pull-based query operators with optional lineage propagation.

Every operator is an iterator over ``(values, lineage)`` pairs where
``values`` is a plain tuple and ``lineage`` is a
``frozenset[TupleRef]`` (empty when lineage tracking is disabled, so
downstream code never needs a None check).

Lineage propagation implements the paper's Lineage semantics (the
set-of-contributing-input-tuples abstraction of the semiring framework,
Section VI-A):

* a scan annotates each row with the singleton set of its own reference,
* filters and projections preserve annotations,
* a join result row carries the union of both sides,
* an aggregate output row carries the union over its whole group,
* ``DISTINCT`` merges the lineages of collapsed duplicates.

This is observationally equivalent to Perm's query rewriting for the
query classes used in the paper (selection, projection, join,
aggregation) — see DESIGN.md section 1.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.db import expressions as exprs
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.sql import ast
from repro.db.storage import HeapTable
from repro.db.types import Schema
from repro.errors import ExecutionError

# IndexScan appears before SeqScan in this module but needs Schema([])
# for constant evaluation; both use the shared expression evaluator.

Row = tuple
Annotated = tuple[Row, frozenset]


class Operator:
    """Base class: an iterable of annotated rows with a fixed schema."""

    schema: Schema

    def __iter__(self) -> Iterator[Annotated]:  # pragma: no cover - interface
        raise NotImplementedError


class SeqScan(Operator):
    """Full scan of a heap table, optionally producing lineage."""

    def __init__(self, table: HeapTable, qualifier: str,
                 track_lineage: bool) -> None:
        self.table = table
        self.qualifier = qualifier
        self.schema = table.schema.qualified(qualifier)
        self.track_lineage = track_lineage

    def __iter__(self) -> Iterator[Annotated]:
        if self.track_lineage:
            name = self.table.name
            versions = self.table.versions
            for rowid, values in self.table.scan():
                yield values, frozenset((TupleRef(name, rowid, versions[rowid]),))
        else:
            for _rowid, values in self.table.scan():
                yield values, EMPTY_LINEAGE


class IndexScan(Operator):
    """Equality lookup through a hash index.

    ``value_expression`` is evaluated once against the empty row (it
    must be constant — the planner guarantees this) and the matching
    rowids are fetched directly.
    """

    def __init__(self, table: HeapTable, qualifier: str,
                 index, value_expression: ast.Expression,
                 track_lineage: bool) -> None:
        self.table = table
        self.schema = table.schema.qualified(qualifier)
        self.index = index
        self.value_expression = value_expression
        self.track_lineage = track_lineage

    def __iter__(self) -> Iterator[Annotated]:
        value = exprs.Evaluator(Schema([])).evaluate(
            self.value_expression, ())
        name = self.table.name
        versions = self.table.versions
        for rowid in sorted(self.index.lookup(value)):
            values = self.table.rows[rowid]
            if self.track_lineage:
                yield values, frozenset(
                    (TupleRef(name, rowid, versions[rowid]),))
            else:
                yield values, EMPTY_LINEAGE


class Filter(Operator):
    """Keep rows for which the predicate evaluates to TRUE."""

    def __init__(self, child: Operator, predicate: ast.Expression) -> None:
        self.child = child
        self.schema = child.schema
        self.predicate = predicate
        self._evaluator = exprs.Evaluator(child.schema)

    def __iter__(self) -> Iterator[Annotated]:
        matches = self._evaluator.matches
        predicate = self.predicate
        for values, lineage in self.child:
            if matches(predicate, values):
                yield values, lineage


class Project(Operator):
    """Evaluate a list of output expressions per input row."""

    def __init__(self, child: Operator,
                 output_expressions: list[ast.Expression],
                 output_schema: Schema) -> None:
        self.child = child
        self.schema = output_schema
        self.output_expressions = output_expressions
        self._evaluator = exprs.Evaluator(child.schema)

    def __iter__(self) -> Iterator[Annotated]:
        evaluate = self._evaluator.evaluate
        output_expressions = self.output_expressions
        for values, lineage in self.child:
            out = tuple(evaluate(expression, values)
                        for expression in output_expressions)
            yield out, lineage


class HashJoin(Operator):
    """Equi-join: build a hash table on the right side, probe with left.

    ``kind`` is ``"inner"`` or ``"left"``. Join keys are expressions
    evaluated against each side's schema. A residual predicate (the
    non-equi part of an ON / WHERE conjunction) can be applied to the
    concatenated row.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_keys: list[ast.Expression],
                 right_keys: list[ast.Expression],
                 kind: str = "inner",
                 residual: ast.Expression | None = None) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("hash join requires matching key lists")
        if kind not in ("inner", "left"):
            raise ExecutionError(f"unsupported hash join kind {kind!r}")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.kind = kind
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self._left_eval = exprs.Evaluator(left.schema)
        self._right_eval = exprs.Evaluator(right.schema)
        self._out_eval = exprs.Evaluator(self.schema)

    def __iter__(self) -> Iterator[Annotated]:
        build: dict[tuple, list[Annotated]] = {}
        right_eval = self._right_eval.evaluate
        for values, lineage in self.right:
            key = tuple(right_eval(expression, values)
                        for expression in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            build.setdefault(key, []).append((values, lineage))
        left_eval = self._left_eval.evaluate
        matches = self._out_eval.matches
        residual = self.residual
        right_width = len(self.right.schema)
        null_pad = (None,) * right_width
        for values, lineage in self.left:
            key = tuple(left_eval(expression, values)
                        for expression in self.left_keys)
            produced = False
            if not any(part is None for part in key):
                for right_values, right_lineage in build.get(key, ()):
                    joined = values + right_values
                    if residual is not None and not matches(residual, joined):
                        continue
                    produced = True
                    yield joined, lineage | right_lineage
            if self.kind == "left" and not produced:
                yield values + null_pad, lineage


class NestedLoopJoin(Operator):
    """General theta-join; materializes the right side once."""

    def __init__(self, left: Operator, right: Operator,
                 condition: ast.Expression | None = None,
                 kind: str = "inner") -> None:
        if kind not in ("inner", "left", "cross"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.schema = left.schema.concat(right.schema)
        self._evaluator = exprs.Evaluator(self.schema)

    def __iter__(self) -> Iterator[Annotated]:
        right_rows = list(self.right)
        matches = self._evaluator.matches
        condition = self.condition
        right_width = len(self.right.schema)
        null_pad = (None,) * right_width
        for values, lineage in self.left:
            produced = False
            for right_values, right_lineage in right_rows:
                joined = values + right_values
                if condition is not None and not matches(condition, joined):
                    continue
                produced = True
                yield joined, lineage | right_lineage
            if self.kind == "left" and not produced:
                yield values + null_pad, lineage


class GroupAggregate(Operator):
    """Hash aggregation fused with output projection.

    ``group_expressions`` define the grouping key (empty for a global
    aggregate); ``output_expressions`` may mix group expressions,
    aggregate calls, and scalar expressions over them. ``having`` is
    applied per group after accumulation.

    The lineage of an output row is the union of the lineages of every
    input row in its group — the Lineage semantics for aggregation.

    For scalar sub-expressions that are neither aggregates nor group
    expressions, evaluation falls back to the group's first input row
    (safe for expressions functionally dependent on the group key,
    which is all standard SQL allows anyway).
    """

    def __init__(self, child: Operator,
                 group_expressions: list[ast.Expression],
                 output_expressions: list[ast.Expression],
                 output_schema: Schema,
                 having: ast.Expression | None = None) -> None:
        self.child = child
        self.schema = output_schema
        self.group_expressions = group_expressions
        self.output_expressions = output_expressions
        self.having = having
        aggregate_calls: dict[ast.FunctionCall, None] = {}
        for expression in list(output_expressions) + (
                [having] if having is not None else []):
            for call in exprs.find_aggregates(expression):
                aggregate_calls[call] = None
        self.aggregate_calls = list(aggregate_calls)
        self._input_eval = exprs.Evaluator(child.schema)

    def __iter__(self) -> Iterator[Annotated]:
        evaluate = self._input_eval.evaluate
        groups: dict[tuple, dict[str, Any]] = {}
        order: list[tuple] = []
        for values, lineage in self.child:
            key = tuple(evaluate(expression, values)
                        for expression in self.group_expressions)
            state = groups.get(key)
            if state is None:
                state = {
                    "accumulators": [exprs.make_accumulator(call)
                                     for call in self.aggregate_calls],
                    "representative": values,
                    "lineage": set(),
                }
                groups[key] = state
                order.append(key)
            for call, accumulator in zip(self.aggregate_calls,
                                         state["accumulators"]):
                if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                    accumulator.add(values)  # COUNT(*): every row counts
                else:
                    accumulator.add(evaluate(call.args[0], values))
            state["lineage"].update(lineage)
        if not groups and not self.group_expressions:
            # global aggregate over empty input still yields one row
            state = {
                "accumulators": [exprs.make_accumulator(call)
                                 for call in self.aggregate_calls],
                "representative": None,
                "lineage": set(),
            }
            groups[()] = state
            order.append(())
        for key in order:
            state = groups[key]
            bindings: dict[ast.Expression, Any] = {}
            for call, accumulator in zip(self.aggregate_calls,
                                         state["accumulators"]):
                bindings[call] = accumulator.result()
            for expression, value in zip(self.group_expressions, key):
                bindings[expression] = value
            out_eval = exprs.Evaluator(self.child.schema, bindings)
            representative = state["representative"]
            if representative is None:
                representative = (None,) * len(self.child.schema)
            if self.having is not None and not out_eval.matches(
                    self.having, representative):
                continue
            out = tuple(out_eval.evaluate(expression, representative)
                        for expression in self.output_expressions)
            yield out, frozenset(state["lineage"])


class Distinct(Operator):
    """Collapse duplicate rows, merging their lineages.

    ``key_width`` limits duplicate detection to a prefix of the row
    (used when hidden ORDER BY columns were appended after the visible
    select list).
    """

    def __init__(self, child: Operator, key_width: int | None = None) -> None:
        self.child = child
        self.schema = child.schema
        self.key_width = key_width

    def __iter__(self) -> Iterator[Annotated]:
        seen: dict[tuple, list] = {}
        order: list[tuple] = []
        for values, lineage in self.child:
            key = values if self.key_width is None else values[: self.key_width]
            entry = seen.get(key)
            if entry is None:
                seen[key] = [values, set(lineage)]
                order.append(key)
            else:
                entry[1].update(lineage)
        for key in order:
            values, lineage = seen[key]
            yield values, frozenset(lineage)


class _SortKey:
    """Total order over SQL values where NULL sorts last (ASC)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.value == other.value


class Sort(Operator):
    """Materializing sort on a list of (column index, descending) keys."""

    def __init__(self, child: Operator,
                 keys: list[tuple[int, bool]]) -> None:
        self.child = child
        self.schema = child.schema
        self.keys = keys

    def __iter__(self) -> Iterator[Annotated]:
        rows = list(self.child)
        # stable multi-key sort: apply keys from last to first
        for index, descending in reversed(self.keys):
            rows.sort(key=lambda item: _SortKey(item[0][index]),
                      reverse=descending)
        return iter(rows)


class Limit(Operator):
    """LIMIT / OFFSET."""

    def __init__(self, child: Operator, limit: int | None,
                 offset: int | None) -> None:
        self.child = child
        self.schema = child.schema
        self.limit = limit
        self.offset = offset or 0

    def __iter__(self) -> Iterator[Annotated]:
        skipped = 0
        emitted = 0
        for item in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and emitted >= self.limit:
                return
            emitted += 1
            yield item


class StripColumns(Operator):
    """Drop hidden trailing columns appended for ORDER BY evaluation."""

    def __init__(self, child: Operator, visible_width: int,
                 visible_schema: Schema) -> None:
        self.child = child
        self.visible_width = visible_width
        self.schema = visible_schema

    def __iter__(self) -> Iterator[Annotated]:
        width = self.visible_width
        for values, lineage in self.child:
            yield values[:width], lineage


class Union(Operator):
    """Concatenate compatible inputs (UNION ALL); wrap in
    :class:`Distinct` for set semantics.

    Lineage semantics: UNION ALL passes annotations through; the
    Distinct wrapper merges the lineages of collapsed duplicates, which
    is exactly the Lineage of a set union.
    """

    def __init__(self, children: list[Operator]) -> None:
        if not children:
            raise ExecutionError("UNION requires at least one input")
        width = len(children[0].schema)
        for child in children[1:]:
            if len(child.schema) != width:
                raise ExecutionError(
                    f"UNION inputs have {width} and "
                    f"{len(child.schema)} columns")
        self.children = children
        self.schema = children[0].schema

    def __iter__(self) -> Iterator[Annotated]:
        for child in self.children:
            yield from child


class MaterializedSource(Operator):
    """Serve pre-computed annotated rows (used by INSERT ... SELECT etc.)."""

    def __init__(self, schema: Schema, rows: Iterable[Annotated]) -> None:
        self.schema = schema
        self.rows = list(rows)

    def __iter__(self) -> Iterator[Annotated]:
        return iter(self.rows)
