"""Pull-based query operators with optional lineage propagation.

Every operator is an iterator over ``(values, lineage)`` pairs where
``values`` is a plain tuple and ``lineage`` is a
``frozenset[TupleRef]`` (empty when lineage tracking is disabled, so
downstream code never needs a None check).

Operators compile their expressions **once in __init__** via
:func:`repro.db.expressions.compile_expression` — the per-row work is
a chain of closures, not an AST walk (see docs/engine-internals.md).
:class:`Instrumented` wraps any operator transparently to record rows
produced and wall time for ``EXPLAIN ANALYZE``.

Lineage propagation implements the paper's Lineage semantics (the
set-of-contributing-input-tuples abstraction of the semiring framework,
Section VI-A):

* a scan annotates each row with the singleton set of its own reference,
* filters and projections preserve annotations,
* a join result row carries the union of both sides,
* an aggregate output row carries the union over its whole group,
* ``DISTINCT`` merges the lineages of collapsed duplicates.

This is observationally equivalent to Perm's query rewriting for the
query classes used in the paper (selection, projection, join,
aggregation) — see DESIGN.md section 1.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.db import expressions as exprs
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.sql import ast
from repro.db.storage import HeapTable
from repro.db.types import Schema
from repro.errors import ExecutionError

# IndexScan appears before SeqScan in this module but needs Schema([])
# for constant evaluation; both use the shared expression evaluator.

Row = tuple
Annotated = tuple[Row, frozenset]


class Operator:
    """Base class: an iterable of annotated rows with a fixed schema."""

    schema: Schema

    def __iter__(self) -> Iterator[Annotated]:  # pragma: no cover - interface
        raise NotImplementedError


class SeqScan(Operator):
    """Full scan of a heap table, optionally producing lineage."""

    def __init__(self, table: HeapTable, qualifier: str,
                 track_lineage: bool) -> None:
        self.table = table
        self.qualifier = qualifier
        self.schema = table.schema.qualified(qualifier)
        self.track_lineage = track_lineage

    def __iter__(self) -> Iterator[Annotated]:
        if self.track_lineage:
            name = self.table.name
            # scan_versions reports the begin stamp of the version the
            # ambient read view actually saw — under a snapshot that
            # may be a history entry or the session's own write, so
            # lineage references the snapshot's tuple versions
            for rowid, values, version in self.table.scan_versions():
                yield values, frozenset((TupleRef(name, rowid, version),))
        else:
            for _rowid, values in self.table.scan():
                yield values, EMPTY_LINEAGE


class IndexScan(Operator):
    """Point lookup(s) through a hash index.

    ``value_expression`` is one constant expression (``col = literal``)
    or a list of them (``col IN (literal, ...)``); each is evaluated
    once against the empty row — the planner guarantees constness —
    and the union of matching rowids is fetched directly. NULL probe
    values are dropped, matching equality/IN semantics (NULL never
    compares equal).
    """

    def __init__(self, table: HeapTable, qualifier: str,
                 index, value_expression, track_lineage: bool) -> None:
        self.table = table
        self.schema = table.schema.qualified(qualifier)
        self.index = index
        if isinstance(value_expression, (list, tuple)):
            self.value_expressions = list(value_expression)
        else:
            self.value_expressions = [value_expression]
        self._value_fns = [exprs.compile_expression(expression, Schema([]))
                           for expression in self.value_expressions]
        self.track_lineage = track_lineage

    @property
    def value_expression(self) -> ast.Expression:
        return self.value_expressions[0]

    def _probe_values(self) -> list:
        """Deduplicated non-NULL constants to probe the index with."""
        values: list = []
        for value_fn in self._value_fns:
            value = value_fn(())
            if value is None or value in values:
                continue
            values.append(value)
        return values

    def __iter__(self) -> Iterator[Annotated]:
        probe_values = self._probe_values()
        name = self.table.name
        view = self.table.active_view()
        if view is not None:
            # hash buckets reflect only committed-latest state; under a
            # snapshot the index degrades to a visible scan + membership
            # filter so the result matches what SeqScan would produce
            if not probe_values:
                return
            position = self.index.position
            for rowid, values, version in self.table.scan_versions():
                if values[position] not in probe_values:
                    continue
                if self.track_lineage:
                    yield values, frozenset((TupleRef(name, rowid,
                                                      version),))
                else:
                    yield values, EMPTY_LINEAGE
            return
        versions = self.table.versions
        rowids: set[int] = set()
        for value in probe_values:
            rowids.update(self.index.lookup(value))
        for rowid in sorted(rowids):
            values = self.table.rows[rowid]
            if self.track_lineage:
                yield values, frozenset(
                    (TupleRef(name, rowid, versions[rowid]),))
            else:
                yield values, EMPTY_LINEAGE


class Filter(Operator):
    """Keep rows for which the predicate evaluates to TRUE."""

    def __init__(self, child: Operator, predicate: ast.Expression) -> None:
        self.child = child
        self.schema = child.schema
        self.predicate = predicate
        self._matches = exprs.compile_predicate(predicate, child.schema)

    def __iter__(self) -> Iterator[Annotated]:
        matches = self._matches
        for values, lineage in self.child:
            if matches(values):
                yield values, lineage


class Project(Operator):
    """Evaluate a list of output expressions per input row."""

    def __init__(self, child: Operator,
                 output_expressions: list[ast.Expression],
                 output_schema: Schema) -> None:
        self.child = child
        self.schema = output_schema
        self.output_expressions = output_expressions
        self._output_fns = [exprs.compile_expression(expression, child.schema)
                            for expression in output_expressions]

    def __iter__(self) -> Iterator[Annotated]:
        output_fns = self._output_fns
        for values, lineage in self.child:
            out = tuple(fn(values) for fn in output_fns)
            yield out, lineage


class HashJoin(Operator):
    """Equi-join: build a hash table on one side, probe with the other.

    ``kind`` is ``"inner"`` or ``"left"``. Join keys are expressions
    evaluated against each side's schema. A residual predicate (the
    non-equi part of an ON / WHERE conjunction) can be applied to the
    concatenated row. ``build_side`` names which input is hashed —
    the planner picks the smaller one; a LEFT join must build on the
    right so the probe pass can pad unmatched preserved rows.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_keys: list[ast.Expression],
                 right_keys: list[ast.Expression],
                 kind: str = "inner",
                 residual: ast.Expression | None = None,
                 build_side: str = "right") -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise ExecutionError("hash join requires matching key lists")
        if kind not in ("inner", "left"):
            raise ExecutionError(f"unsupported hash join kind {kind!r}")
        if build_side not in ("left", "right"):
            raise ExecutionError(
                f"unsupported hash join build side {build_side!r}")
        if kind == "left" and build_side == "left":
            raise ExecutionError(
                "a left outer hash join must build on the right side")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.kind = kind
        self.residual = residual
        self.build_side = build_side
        self.schema = left.schema.concat(right.schema)
        self._left_key_fns = [exprs.compile_expression(expression, left.schema)
                              for expression in left_keys]
        self._right_key_fns = [exprs.compile_expression(expression,
                                                        right.schema)
                               for expression in right_keys]
        self._residual_fn = (exprs.compile_predicate(residual, self.schema)
                             if residual is not None else None)

    def __iter__(self) -> Iterator[Annotated]:
        if self.build_side == "left":
            yield from self._iter_build_left()
            return
        build: dict[tuple, list[Annotated]] = {}
        right_key_fns = self._right_key_fns
        for values, lineage in self.right:
            key = tuple(fn(values) for fn in right_key_fns)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            build.setdefault(key, []).append((values, lineage))
        left_key_fns = self._left_key_fns
        residual = self._residual_fn
        right_width = len(self.right.schema)
        null_pad = (None,) * right_width
        for values, lineage in self.left:
            key = tuple(fn(values) for fn in left_key_fns)
            produced = False
            if not any(part is None for part in key):
                for right_values, right_lineage in build.get(key, ()):
                    joined = values + right_values
                    if residual is not None and not residual(joined):
                        continue
                    produced = True
                    yield joined, lineage | right_lineage
            if self.kind == "left" and not produced:
                yield values + null_pad, lineage

    def _iter_build_left(self) -> Iterator[Annotated]:
        # inner join only (validated in __init__): hash the left input,
        # stream the right past it; output column order stays left+right
        build: dict[tuple, list[Annotated]] = {}
        left_key_fns = self._left_key_fns
        for values, lineage in self.left:
            key = tuple(fn(values) for fn in left_key_fns)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append((values, lineage))
        right_key_fns = self._right_key_fns
        residual = self._residual_fn
        for values, lineage in self.right:
            key = tuple(fn(values) for fn in right_key_fns)
            if any(part is None for part in key):
                continue
            for left_values, left_lineage in build.get(key, ()):
                joined = left_values + values
                if residual is not None and not residual(joined):
                    continue
                yield joined, left_lineage | lineage


class NestedLoopJoin(Operator):
    """General theta-join; materializes the right side once."""

    def __init__(self, left: Operator, right: Operator,
                 condition: ast.Expression | None = None,
                 kind: str = "inner") -> None:
        if kind not in ("inner", "left", "cross"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.schema = left.schema.concat(right.schema)
        self._condition_fn = (exprs.compile_predicate(condition, self.schema)
                              if condition is not None else None)

    def __iter__(self) -> Iterator[Annotated]:
        right_rows = list(self.right)
        condition = self._condition_fn
        right_width = len(self.right.schema)
        null_pad = (None,) * right_width
        for values, lineage in self.left:
            produced = False
            for right_values, right_lineage in right_rows:
                joined = values + right_values
                if condition is not None and not condition(joined):
                    continue
                produced = True
                yield joined, lineage | right_lineage
            if self.kind == "left" and not produced:
                yield values + null_pad, lineage


class GroupAggregate(Operator):
    """Hash aggregation fused with output projection.

    ``group_expressions`` define the grouping key (empty for a global
    aggregate); ``output_expressions`` may mix group expressions,
    aggregate calls, and scalar expressions over them. ``having`` is
    applied per group after accumulation.

    The lineage of an output row is the union of the lineages of every
    input row in its group — the Lineage semantics for aggregation.

    For scalar sub-expressions that are neither aggregates nor group
    expressions, evaluation falls back to the group's first input row
    (safe for expressions functionally dependent on the group key,
    which is all standard SQL allows anyway).
    """

    def __init__(self, child: Operator,
                 group_expressions: list[ast.Expression],
                 output_expressions: list[ast.Expression],
                 output_schema: Schema,
                 having: ast.Expression | None = None) -> None:
        self.child = child
        self.schema = output_schema
        self.group_expressions = group_expressions
        self.output_expressions = output_expressions
        self.having = having
        aggregate_calls: dict[ast.FunctionCall, None] = {}
        for expression in list(output_expressions) + (
                [having] if having is not None else []):
            for call in exprs.find_aggregates(expression):
                aggregate_calls[call] = None
        self.aggregate_calls = list(aggregate_calls)
        self._group_fns = [exprs.compile_expression(expression, child.schema)
                           for expression in group_expressions]
        # COUNT(*) feeds the whole row; other aggregates compile their
        # single argument expression once
        self._input_fns = [
            None if (len(call.args) == 1
                     and isinstance(call.args[0], ast.Star))
            else exprs.compile_expression(call.args[0], child.schema)
            for call in self.aggregate_calls]
        # aggregate results and group-key values are rebound per group
        # through slots; the output/HAVING closures are compiled once
        self._slots = exprs.BindingSlots(
            self.aggregate_calls + list(group_expressions))
        self._output_fns = [
            exprs.compile_expression(expression, child.schema, self._slots)
            for expression in output_expressions]
        self._having_fn = (
            exprs.compile_predicate(having, child.schema, self._slots)
            if having is not None else None)
        self._empty_representative = (None,) * len(child.schema)

    def _new_state(self, representative: tuple | None) -> dict[str, Any]:
        return {
            "accumulators": [exprs.make_accumulator(call)
                             for call in self.aggregate_calls],
            "representative": representative,
            "lineage": set(),
            # global rowid of the group's first input row, when the
            # input stream carries a rowid side-vector (partition
            # scans); the parallel gather orders merged groups by it
            "first_rowid": None,
        }

    def _ensure_global_group(self, groups: dict, order: list) -> None:
        if not groups and not self.group_expressions:
            # global aggregate over empty input still yields one row
            groups[()] = self._new_state(None)
            order.append(())

    def _finalize(self, groups: dict, order: list) -> Iterator[Annotated]:
        slots = self._slots
        for key in order:
            state = groups[key]
            for call, accumulator in zip(self.aggregate_calls,
                                         state["accumulators"]):
                slots.assign(call, accumulator.result())
            for expression, value in zip(self.group_expressions, key):
                slots.assign(expression, value)
            representative = state["representative"]
            if representative is None:
                representative = self._empty_representative
            if self._having_fn is not None and not self._having_fn(
                    representative):
                continue
            out = tuple(fn(representative) for fn in self._output_fns)
            yield out, frozenset(state["lineage"])

    def __iter__(self) -> Iterator[Annotated]:
        group_fns = self._group_fns
        input_fns = self._input_fns
        groups: dict[tuple, dict[str, Any]] = {}
        order: list[tuple] = []
        for values, lineage in self.child:
            key = tuple(fn(values) for fn in group_fns)
            state = groups.get(key)
            if state is None:
                state = self._new_state(values)
                groups[key] = state
                order.append(key)
            for input_fn, accumulator in zip(input_fns,
                                             state["accumulators"]):
                if input_fn is None:
                    accumulator.add(values)  # COUNT(*): every row counts
                else:
                    accumulator.add(input_fn(values))
            state["lineage"].update(lineage)
        self._ensure_global_group(groups, order)
        yield from self._finalize(groups, order)


class Distinct(Operator):
    """Collapse duplicate rows, merging their lineages.

    ``key_width`` limits duplicate detection to a prefix of the row
    (used when hidden ORDER BY columns were appended after the visible
    select list).
    """

    def __init__(self, child: Operator, key_width: int | None = None) -> None:
        self.child = child
        self.schema = child.schema
        self.key_width = key_width

    def __iter__(self) -> Iterator[Annotated]:
        seen: dict[tuple, list] = {}
        order: list[tuple] = []
        for values, lineage in self.child:
            key = values if self.key_width is None else values[: self.key_width]
            entry = seen.get(key)
            if entry is None:
                seen[key] = [values, set(lineage)]
                order.append(key)
            else:
                entry[1].update(lineage)
        for key in order:
            values, lineage = seen[key]
            yield values, frozenset(lineage)


class _SortKey:
    """Total order over SQL values where NULL sorts last (ASC).

    Only the mixed-type fallback of :func:`_stable_key_sort` still
    allocates these — the common homogeneous-column case sorts raw
    values (one wrapper object per row per key was the old hot spot).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.value == other.value


def _stable_key_sort(order: list[int], values: list,
                     descending: bool) -> list[int]:
    """One stable sort pass of ``order`` by ``values[i]``.

    NULLs partition out first (last in ASC order, first in DESC —
    exactly the `_SortKey` contract) so the comparison sort only ever
    sees non-NULL values; a mixed-type column falls back to `_SortKey`
    wrappers, whose raw ``<`` raises the same TypeError the row
    engine raised.
    """
    present = [index for index in order if values[index] is not None]
    missing = [index for index in order if values[index] is None]
    try:
        present.sort(key=values.__getitem__, reverse=descending)
    except TypeError:
        return sorted(order, key=lambda index: _SortKey(values[index]),
                      reverse=descending)
    if descending:
        return missing + present
    return present + missing


def ordered_indices(count: int,
                    key_columns: list[tuple[list, bool]]) -> list[int]:
    """Row permutation sorting by ``(values_vector, descending)`` keys.

    Stable multi-key semantics via one pass per key, last key first —
    shared by :class:`Sort` and the batch sort in ``vector.py``.
    """
    order = list(range(count))
    for values, descending in reversed(key_columns):
        order = _stable_key_sort(order, values, descending)
    return order


class Sort(Operator):
    """Materializing sort on a list of (column index, descending) keys."""

    def __init__(self, child: Operator,
                 keys: list[tuple[int, bool]]) -> None:
        self.child = child
        self.schema = child.schema
        self.keys = keys

    def __iter__(self) -> Iterator[Annotated]:
        rows = list(self.child)
        if len(rows) > 1:
            key_columns = [([item[0][index] for item in rows], descending)
                           for index, descending in self.keys]
            order = ordered_indices(len(rows), key_columns)
            rows = [rows[index] for index in order]
        return iter(rows)


class Limit(Operator):
    """LIMIT / OFFSET."""

    def __init__(self, child: Operator, limit: int | None,
                 offset: int | None) -> None:
        self.child = child
        self.schema = child.schema
        self.limit = limit
        self.offset = offset or 0

    def __iter__(self) -> Iterator[Annotated]:
        skipped = 0
        emitted = 0
        for item in self.child:
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and emitted >= self.limit:
                return
            emitted += 1
            yield item


class StripColumns(Operator):
    """Drop hidden trailing columns appended for ORDER BY evaluation."""

    def __init__(self, child: Operator, visible_width: int,
                 visible_schema: Schema) -> None:
        self.child = child
        self.visible_width = visible_width
        self.schema = visible_schema

    def __iter__(self) -> Iterator[Annotated]:
        width = self.visible_width
        for values, lineage in self.child:
            yield values[:width], lineage


class Union(Operator):
    """Concatenate compatible inputs (UNION ALL); wrap in
    :class:`Distinct` for set semantics.

    Lineage semantics: UNION ALL passes annotations through; the
    Distinct wrapper merges the lineages of collapsed duplicates, which
    is exactly the Lineage of a set union.
    """

    def __init__(self, children: list[Operator]) -> None:
        if not children:
            raise ExecutionError("UNION requires at least one input")
        width = len(children[0].schema)
        for child in children[1:]:
            if len(child.schema) != width:
                raise ExecutionError(
                    f"UNION inputs have {width} and "
                    f"{len(child.schema)} columns")
        self.children = children
        self.schema = children[0].schema

    def __iter__(self) -> Iterator[Annotated]:
        for child in self.children:
            yield from child


class Gather(Operator):
    """Marker base for the partition-parallel Exchange/Gather operators
    (:class:`repro.db.vector.BatchGather` and
    :class:`repro.db.vector.BatchAggregateGather`).

    A gather holds the serial pipeline it replaced as ``template`` —
    deliberately *not* a generic child attribute, because tree walkers
    (``instrument_plan``, plan mutation) must not descend into what
    executes inside worker processes. EXPLAIN special-cases gathers to
    render the template subtree and the ``workers=`` setting, and
    EXPLAIN ANALYZE reads ``partition_stats`` — per-partition row
    counts and wall time reported back by the workers (child-process
    counters cannot propagate into the parent's Instrumented
    wrappers).
    """

    template: Operator
    workers: int
    partition_stats: list[dict] | None


class MaterializedSource(Operator):
    """Serve pre-computed annotated rows (used by INSERT ... SELECT etc.)."""

    def __init__(self, schema: Schema, rows: Iterable[Annotated]) -> None:
        self.schema = schema
        self.rows = list(rows)

    def __iter__(self) -> Iterator[Annotated]:
        return iter(self.rows)


class Instrumented(Operator):
    """Transparent wrapper recording rows produced and wall time.

    EXPLAIN ANALYZE wraps every operator in the plan with one of
    these. Time is charged per ``next()`` call, so a blocking operator
    (Sort, GroupAggregate) attributes its materialization cost to its
    own first row rather than to its parent. The clock is injectable
    for deterministic tests.
    """

    def __init__(self, inner: Operator,
                 timer: Callable[[], float]) -> None:
        self.inner = inner
        self.schema = inner.schema
        self.timer = timer
        self.rows = 0
        self.total_seconds = 0.0
        self.loops = 0

    def __iter__(self) -> Iterator[Annotated]:
        self.loops += 1
        timer = self.timer
        started = timer()
        # iter() is inside the timed region: operators that materialize
        # eagerly in __iter__ (Sort) must charge that work to themselves
        iterator = iter(self.inner)
        self.total_seconds += timer() - started
        while True:
            started = timer()
            try:
                item = next(iterator)
            except StopIteration:
                self.total_seconds += timer() - started
                return
            self.total_seconds += timer() - started
            self.rows += 1
            yield item


_CHILD_ATTRS = ("child", "left", "right", "inner")


def instrument_plan(root: Operator,
                    timer: Callable[[], float]) -> Instrumented:
    """Wrap every operator in ``root``'s tree with :class:`Instrumented`.

    Mutates the tree in place (re-pointing child attributes), so it
    must only be applied to a freshly built plan — never to one served
    from the plan cache.
    """
    from repro.db import vector  # deferred: vector imports this module
    if isinstance(root, vector.BatchParallelHashJoin):
        # Both join inputs execute (at least partly) inside pool
        # workers; wrapping them would re-point the sides and defeat
        # the leaf-scan eligibility checks. Per-partition timings
        # surface via build_partition_stats instead.
        return vector.BatchInstrumented(root, timer)
    for attribute in _CHILD_ATTRS:
        child = getattr(root, attribute, None)
        if isinstance(child, Operator):
            setattr(root, attribute, instrument_plan(child, timer))
    children = getattr(root, "children", None)
    if isinstance(children, list):
        root.children = [instrument_plan(child, timer)
                        for child in children]
    if isinstance(root, vector.BatchOperator):
        return vector.BatchInstrumented(root, timer)
    return Instrumented(root, timer)
