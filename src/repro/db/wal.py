"""Write-ahead log: redo records, commit markers, crash recovery.

The engine makes every committed statement durable *before* any table
file is rewritten: logical redo records accumulate in memory while a
statement (or explicit transaction) runs and are flushed to the log in
one framed batch, terminated by a ``commit`` marker carrying the logical
clock tick, followed by an fsync. Uncommitted work therefore never
reaches the log at all, and a crash mid-flush leaves a *torn tail* that
recovery truncates.

On-disk layout::

    LDVWAL1\\n                                 8-byte magic header
    <u32 length><u32 crc32><payload bytes>    repeated, little-endian

Payloads are compact JSON objects. Data records use *absolute* ("put")
semantics — table, rowid, version, full cell values — so replay is
idempotent: recovering twice, or replaying records already captured by a
later checkpoint, converges to the same state. Record operations::

    put          {op, table, rowid, version, values}
    delete       {op, table, rowid}
    create_table {op, table, columns}
    drop_table   {op, table}
    create_index {op, table, name, column}
    drop_index   {op, name}
    ledger       {op, token, result, commit}
                                 idempotency-ledger entry; rides in the
                                 same batch as the statement's writes so
                                 the dedupe decision is atomic with them
    commit       {op, tick}      batch terminator
    abort        {op}            batch discard (kept for format
                                 completeness; the buffering writer
                                 normally drops aborted batches before
                                 they reach disk)

Recovery (:meth:`WriteAheadLog.open`) scans the file sequentially,
buffering records until each ``commit`` marker, and stops at the first
incomplete or checksum-failing frame. Everything after the last marker —
torn bytes and complete-but-uncommitted records alike — is truncated,
never replayed. A bad magic header or a checksummed-but-unparsable
payload raises :class:`repro.errors.WALCorruptionError` instead: that is
writer corruption, not a torn write.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.db.fileio import FileIO
from repro.db.types import Column, Schema, SQLType
from repro.errors import GroupCommitError, TransientError, WALCorruptionError

WAL_MAGIC = b"LDVWAL1\n"
_FRAME = struct.Struct("<II")
MAX_RECORD_BYTES = 1 << 28  # sanity bound on one record's length field


def schema_to_wire(schema: Schema) -> list[dict[str, Any]]:
    """Render a schema as the JSON column list stored in WAL records."""
    return [
        {
            "name": column.name,
            "type": column.sql_type.value,
            "not_null": column.not_null,
            "primary_key": column.primary_key,
        }
        for column in schema.columns
    ]


def schema_from_wire(columns: list[dict[str, Any]]) -> Schema:
    """Parse a WAL column list back into a schema."""
    return Schema([
        Column(
            name=column["name"],
            sql_type=SQLType(column["type"]),
            not_null=column["not_null"],
            primary_key=column["primary_key"],
        )
        for column in columns
    ])


def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record: length + crc32 header, JSON payload."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WALRecovery:
    """What :meth:`WriteAheadLog.open` found and repaired."""

    records: list[dict] = field(default_factory=list)
    last_tick: int = 0
    committed_batches: int = 0
    dropped_records: int = 0  # complete but uncommitted, discarded
    torn_bytes: int = 0  # incomplete/corrupt tail bytes truncated

    @property
    def truncated(self) -> bool:
        return self.dropped_records > 0 or self.torn_bytes > 0


class WriteAheadLog:
    """An append-only redo log for one data directory.

    ``append`` only buffers; ``commit`` writes the whole batch plus its
    marker in a single append and fsyncs, so the log never holds a
    half-batch except when a crash tears the final write.

    **Group commit.** Inside a :meth:`begin_group`/:meth:`end_group`
    window (see :meth:`repro.db.engine.Database.group_commit`) each
    ``commit`` still appends its batch + marker immediately — ordering
    and atomicity are unchanged — but the fsync is deferred and shared:
    one durable barrier at the end of the window covers every commit in
    it. A crash inside the window can lose whole trailing transactions
    (they were not yet acknowledged as durable) but never tears or
    reorders them.
    """

    def __init__(self, path: str | Path, io: FileIO | None = None) -> None:
        self.path = Path(path)
        self.io = io if io is not None else FileIO()
        self._buffer: list[bytes] = []
        self._buffered_records: list[dict] = []
        self._group_depth = 0
        self._group_pending = False
        self._group_start = 0  # file size at the outermost begin_group
        self._group_commits = 0
        self.commit_count = 0
        self.fsync_count = 0
        self.group_aborts = 0

    # -- recovery ----------------------------------------------------------------

    def open(self) -> WALRecovery:
        """Create the log if absent, else recover it.

        Replayable (committed) records are returned in log order; the
        uncommitted/torn tail is truncated in place so a subsequent
        reader sees a clean log.
        """
        if not self.io.exists(self.path):
            self.io.write_bytes(self.path, WAL_MAGIC, point="wal.create")
            self.io.fsync(self.path, point="wal.create.fsync")
            return WALRecovery()
        data = self.io.read_bytes(self.path)
        if len(data) < len(WAL_MAGIC):
            if WAL_MAGIC.startswith(data):  # torn during creation
                self.io.write_bytes(self.path, WAL_MAGIC,
                                    point="wal.recover.rewrite")
                self.io.fsync(self.path, point="wal.recover.fsync")
                return WALRecovery(torn_bytes=len(data))
            raise WALCorruptionError(
                f"{self.path} does not start with the WAL magic header")
        if not data.startswith(WAL_MAGIC):
            raise WALCorruptionError(
                f"{self.path} does not start with the WAL magic header")

        recovery = WALRecovery()
        buffer: list[dict] = []
        offset = len(WAL_MAGIC)
        keep_until = offset  # end of the last commit/abort marker
        last_complete = offset  # end of the last whole frame
        while True:
            frame = self._read_frame(data, offset)
            if frame is None:
                break
            record, offset = frame
            last_complete = offset
            operation = record.get("op")
            if operation == "commit":
                recovery.records.extend(buffer)
                recovery.last_tick = max(recovery.last_tick,
                                         int(record.get("tick", 0)))
                recovery.committed_batches += 1
                buffer = []
                keep_until = offset
            elif operation == "abort":
                buffer = []
                keep_until = offset
            else:
                buffer.append(record)
        recovery.dropped_records = len(buffer)
        recovery.torn_bytes = len(data) - last_complete
        if keep_until < len(data):
            self.io.truncate(self.path, keep_until,
                             point="wal.recover.truncate")
            self.io.fsync(self.path, point="wal.recover.fsync")
        return recovery

    def _read_frame(self, data: bytes,
                    offset: int) -> tuple[dict, int] | None:
        """Decode one frame at ``offset``; ``None`` on a torn tail."""
        if offset + _FRAME.size > len(data):
            return None
        length, checksum = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return None  # garbage length: treat as torn
        start = offset + _FRAME.size
        if start + length > len(data):
            return None
        payload = data[start:start + length]
        if zlib.crc32(payload) != checksum:
            return None
        try:
            record = json.loads(payload)
        except ValueError as exc:
            raise WALCorruptionError(
                f"checksummed WAL record at byte {offset} is not valid "
                f"JSON: {exc}") from exc
        if not isinstance(record, dict) or "op" not in record:
            raise WALCorruptionError(
                f"WAL record at byte {offset} has no operation tag")
        return record, start + length

    # -- writing -----------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Buffer one redo record for the current batch (no I/O yet)."""
        self._buffer.append(encode_record(record))
        self._buffered_records.append(record)

    def commit(self, tick: int) -> None:
        """Durably flush the buffered batch under a commit marker.

        Inside a group-commit window the fsync is deferred to
        :meth:`end_group`; the batch itself is appended immediately.
        """
        self._buffer.append(encode_record({"op": "commit", "tick": tick}))
        batch = b"".join(self._buffer)
        self._discard()
        self.io.append_bytes(self.path, batch, point="wal.append")
        self.commit_count += 1
        if self._group_depth > 0:
            self._group_pending = True
            self._group_commits += 1
        else:
            self._fsync()

    def begin_group(self) -> None:
        """Open (or nest into) a group-commit window."""
        if self._group_depth == 0:
            self._group_start = self.io.size(self.path)
            self._group_commits = 0
        self._group_depth += 1

    def end_group(self) -> None:
        """Close a group-commit window; the outermost close issues the
        single shared fsync covering every commit in the window.

        If that shared fsync fails, *every* transaction in the group is
        aborted together: the log is truncated back to the group start
        (so recovery cannot resurrect a batch whose durability was never
        acknowledged to anyone) and :class:`GroupCommitError` is raised.
        Earlier commits in the group were only ever acknowledged
        provisionally — their durability barrier was this fsync — so
        aborting the whole group keeps "acked" and "durable" aligned.
        """
        if self._group_depth <= 0:
            return
        self._group_depth -= 1
        if self._group_depth == 0 and self._group_pending:
            self._group_pending = False
            try:
                self._fsync()
            except TransientError as exc:
                aborted = self._group_commits
                self.group_aborts += 1
                try:
                    self.io.truncate(self.path, self._group_start,
                                     point="wal.group.truncate")
                    self.io.fsync(self.path, point="wal.group.truncate.fsync")
                except TransientError:
                    # Best effort: if the truncate also fails, the
                    # unsynced batches stay on disk and recovery may
                    # resurrect them. That is still consistent — the
                    # group was reported as failed (a promise of
                    # nothing), and retried statements consult the
                    # recovered idempotency ledger either way.
                    pass
                raise GroupCommitError(
                    f"group-commit fsync failed; all {aborted} "
                    f"transaction(s) in the group were aborted: "
                    f"{exc}") from exc

    def _fsync(self) -> None:
        self.io.fsync(self.path, point="wal.fsync")
        self.fsync_count += 1

    def abort(self) -> None:
        """Discard the buffered batch (nothing ever reached disk)."""
        self._discard()

    def _discard(self) -> None:
        self._buffer = []
        self._buffered_records = []

    def reset(self) -> None:
        """Empty the log after a checkpoint (atomic rewrite)."""
        self._discard()
        self.io.atomic_write_bytes(self.path, WAL_MAGIC, point="wal.reset")

    # -- introspection -----------------------------------------------------------

    @property
    def pending_records(self) -> list[dict]:
        """Records buffered but not yet committed (for tests/tools)."""
        return list(self._buffered_records)

    def iter_disk_records(self) -> Iterator[dict]:
        """Yield every complete record currently on disk (debug aid)."""
        data = self.io.read_bytes(self.path)
        offset = len(WAL_MAGIC)
        while True:
            frame = self._read_frame(data, offset)
            if frame is None:
                return
            record, offset = frame
            yield record
