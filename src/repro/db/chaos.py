"""Randomized fault-campaign harness for the serving stack.

A *campaign* drives a seeded multi-client workload — autocommit DML,
multi-statement transactions, pipelined batches, streamed cursors —
against a :class:`repro.db.server.DBServer` while a seeded schedule of
faults fires underneath it: transient wire drops on both the request
and the response half of an exchange (:class:`repro.faults.FlakyTransport`),
transient disk failures and full process crashes in the durability
layer (:class:`repro.faults.FaultyIO` / :class:`repro.faults.SimulatedCrash`),
plus admission-control sheds from a deliberately small token bucket.
Clients retry through their :class:`repro.db.client.RetryPolicy`; the
driver retries whole steps after crashes, rebuilding the server from
the surviving directory exactly as an operator would.

After the campaign the harness checks four invariants, failing with
the campaign seed in the message so any run is replayable:

I1  **No committed write lost** — a fresh engine opened over the
    surviving directory contains every write the workload performed.
I2  **No retry double-applied** — final values match a pure-Python
    application of each step *exactly once* (updates are cumulative,
    so a double-apply shows up as a wrong value, a lost write as a
    missing one).
I3  **Nothing leaked** — once every client has disconnected, no
    session, snapshot, cursor, or commit-map entry survives on the
    server; MVCC pruning is not stalled.
I4  **Replica of record** — a fault-free *oracle* run of the same
    seeded workload (same statements, same idempotency tokens)
    produces a byte-identical checkpointed data directory. This is the
    strongest exactly-once statement possible: the survivor's disk is
    indistinguishable from one that never saw a fault.

Determinism is load-bearing. Every retried statement carries the same
pinned idempotency token as its first attempt, ledger hits consume no
logical-clock tick, crashes roll the clock back to the last durable
batch, and the driver re-runs steps to completion in a fixed
round-robin order — so the survivor consumes exactly the tick and
rowid sequence of the oracle, which is what makes I4 byte-exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional

from repro.db.client import DBClient, RetryPolicy
from repro.db.engine import Database
from repro.db.server import AdmissionControl, DBServer
from repro.errors import DatabaseError, TransactionError, TransientError
from repro.faults import (
    FaultInjector,
    FaultyIO,
    FlakyTransport,
    SimulatedCrash,
)

# fault points a campaign may crash at (durability-layer writes); the
# recovery path is exercised from every one of them
CRASH_POINTS = ("wal.append", "wal.fsync",
                "checkpoint.table", "checkpoint.meta")
# fault points that fail transiently then heal (flaky-disk model)
FLAKY_POINTS = ("wal.fsync", "checkpoint.table")
WIRE_POINTS = ("wire.send", "wire.recv")

# a step is re-driven until it completes; fault schedules are finite,
# so only a real exactly-once bug keeps one failing this long
MAX_STEP_ATTEMPTS = 60
MAX_TEARDOWN_ATTEMPTS = 10


class CampaignFailure(AssertionError):
    """A chaos-campaign invariant violation; the message names the
    seed so the exact campaign replays with ``run_campaign(seed)``."""


class FakeClock:
    """Deterministic time shared by client backoff and server
    admission: retry sleeps *advance* it, the token bucket *reads* it,
    so overload recovery needs no wall-clock waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def read(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += max(0.0, float(seconds))


@dataclass
class CampaignSpec:
    """One campaign's shape; everything downstream derives from ``seed``."""

    seed: int
    clients: int = 3
    rounds: int = 8
    checkpoint_every: int = 3
    max_crashes: int = 2
    faults: bool = True      # False = the fault-free oracle run
    admission: bool = True   # token-bucket sheds (faulted runs only)


@dataclass
class CampaignReport:
    """What a completed campaign survived."""

    seed: int
    steps: int = 0
    crashes: int = 0
    retries: int = 0
    transactions_retried: int = 0
    ledger_hits: int = 0
    ledger_stores: int = 0
    sheds: int = 0
    group_aborts: int = 0
    generations: int = 1
    final_rows: dict[int, int] = field(default_factory=dict)


# -- seeded workload ---------------------------------------------------------------


def _pick_dml(rng: random.Random, pool: list[int],
              live: list[int]) -> tuple[str, tuple]:
    """One mutating statement over this client's own key range.

    Clients own disjoint key ranges, so the round-robin schedule is
    conflict-free and the final state is order-independent — which is
    what lets a pure-Python replay of the step list serve as the
    exactly-once expectation.
    """
    kinds = ["insert"]
    if live:
        kinds += ["update", "update", "delete"]
    kind = rng.choice(kinds)
    if kind == "insert":
        key = pool.pop(0)
        value = rng.randint(0, 999)
        live.append(key)
        return (f"INSERT INTO kv VALUES ({key}, {value})",
                ("insert", key, value))
    if kind == "update":
        key = rng.choice(live)
        delta = rng.randint(1, 99)
        return (f"UPDATE kv SET v = v + {delta} WHERE k = {key}",
                ("update", key, delta))
    key = live.pop(rng.randrange(len(live)))
    return f"DELETE FROM kv WHERE k = {key}", ("delete", key, 0)


def _make_step(rng: random.Random, client_index: int, step_index: int,
               pool: list[int], live: list[int]) -> dict[str, Any]:
    token = f"c{client_index}.s{step_index}"
    kind = rng.choice(["dml", "dml", "dml", "txn", "pipeline",
                       "select", "stream"])
    if kind == "dml":
        sql, effect = _pick_dml(rng, pool, live)
        return {"kind": "dml", "sql": sql, "token": f"{token}.0",
                "effects": [effect]}
    if kind == "txn":
        body = [_pick_dml(rng, pool, live)
                for _ in range(rng.randint(1, 3))]
        return {
            "kind": "txn",
            "begin_token": f"{token}.begin",
            "body": [(sql, f"{token}.{position}")
                     for position, (sql, _) in enumerate(body)],
            "commit_token": f"{token}.commit",
            "effects": [effect for _, effect in body],
        }
    if kind == "pipeline":
        body = [_pick_dml(rng, pool, live)
                for _ in range(rng.randint(2, 4))]
        return {
            "kind": "pipeline",
            "body": [(sql, f"{token}.{position}")
                     for position, (sql, _) in enumerate(body)],
            "effects": [effect for _, effect in body],
        }
    bound = client_index * 1000 + rng.randint(1, 500)
    sql = f"SELECT k, v FROM kv WHERE k < {bound}"
    if kind == "select":
        return {"kind": "select", "sql": sql, "effects": []}
    return {"kind": "stream", "sql": sql, "token": f"{token}.open",
            "effects": []}


def generate_workload(spec: CampaignSpec) -> list[list[dict[str, Any]]]:
    """Per-client step lists, fully determined by the spec's seed.

    The oracle run regenerates the identical workload — including the
    idempotency tokens pinned on every mutating statement — from the
    same seed.
    """
    rng = random.Random(spec.seed)
    workload = []
    for client_index in range(spec.clients):
        pool = list(range(client_index * 1000, client_index * 1000 + 500))
        live: list[int] = []
        workload.append([
            _make_step(rng, client_index, step_index, pool, live)
            for step_index in range(spec.rounds)])
    return workload


def expected_state(spec: CampaignSpec) -> dict[int, int]:
    """Final key→value map from applying every step exactly once."""
    state: dict[int, int] = {}
    for steps in generate_workload(spec):
        for step in steps:
            for operation, key, operand in step["effects"]:
                if operation == "insert":
                    state[key] = operand
                elif operation == "update":
                    state[key] += operand
                else:
                    state.pop(key)
    return state


# -- the campaign driver -----------------------------------------------------------


class ChaosHarness:
    """Drives one seeded campaign against one data directory."""

    def __init__(self, data_dir: str | Path, spec: CampaignSpec) -> None:
        self.spec = spec
        self.data_dir = Path(data_dir)
        self.workload = generate_workload(spec)
        self.report = CampaignReport(seed=spec.seed)
        self.clock = FakeClock()
        # fault stream, separate from the workload stream: consumed
        # lazily but in a deterministic order (generations are created
        # in seed-determined sequence)
        self._fault_rng = random.Random(spec.seed * 7919 + 1)
        self._crash_plan = self._plan_crashes() if spec.faults else []
        self.generation = 0
        self.server: Optional[DBServer] = None
        self.clients: list[DBClient] = []

    # -- construction ------------------------------------------------------------

    def _plan_crashes(self) -> list[tuple[str, int]]:
        return [(self._fault_rng.choice(CRASH_POINTS),
                 self._fault_rng.randint(1, 12))
                for _ in range(self._fault_rng.randint(0, self.spec.max_crashes))]

    def _wire_injector(self) -> FaultInjector:
        injector = FaultInjector(seed=self._fault_rng.randrange(1 << 30))
        for _ in range(self._fault_rng.randint(0, 3)):
            # occurrence 1 on each point is the connect exchange;
            # dropping it would orphan a half-open connection the
            # retry then duplicates, so faults start at occurrence 2
            injector.fail_at(self._fault_rng.choice(WIRE_POINTS),
                             occurrence=self._fault_rng.randint(2, 15),
                             times=self._fault_rng.randint(1, 2))
        return injector

    def setup(self) -> None:
        """Phase 1 (fault-free): create the schema, checkpoint, close."""
        database = Database(data_directory=self.data_dir)
        database.execute(
            "CREATE TABLE kv (k integer PRIMARY KEY, v integer)")
        database.close()
        self._build_generation()

    def _build_generation(self) -> None:
        """(Re)build server and clients over the surviving directory."""
        injector = FaultInjector(seed=self.spec.seed + self.generation)
        io = None
        if self.spec.faults:
            if self.generation < len(self._crash_plan):
                point, occurrence = self._crash_plan[self.generation]
                injector.crash_at(point, occurrence)
            for _ in range(self._fault_rng.randint(0, 2)):
                injector.fail_at(
                    self._fault_rng.choice(FLAKY_POINTS),
                    occurrence=self._fault_rng.randint(1, 10))
            io = FaultyIO(injector)
        self.injector = injector
        admission = None
        if self.spec.faults and self.spec.admission:
            admission = AdmissionControl(capacity=6, refill_per_second=50.0,
                                         timer=self.clock.read)
        self.server = DBServer(
            Database(data_directory=self.data_dir, io=io),
            admission=admission,
            max_pipeline_depth=4,
            max_cursors_per_connection=4)
        self.clients = []
        for client_index in range(self.spec.clients):
            transport = self.server.transport()
            if self.spec.faults:
                transport = FlakyTransport(transport, self._wire_injector())
            policy = RetryPolicy(
                max_attempts=10, base_delay=0.01, max_delay=0.2,
                sleep=self.clock.advance, jitter=0.25,
                rng=random.Random(self.spec.seed * 31 + client_index))
            client = DBClient(transport, client_name=f"chaos{client_index}",
                              process_id=str(client_index),
                              retry_policy=policy)
            client.connect()
            self.clients.append(client)

    # -- driving -----------------------------------------------------------------

    def run(self) -> CampaignReport:
        self.setup()
        for round_index in range(self.spec.rounds):
            for client_index in range(self.spec.clients):
                self._drive_step(
                    client_index,
                    self.workload[client_index][round_index])
            if (round_index + 1) % self.spec.checkpoint_every == 0:
                self._maintenance_checkpoint()
        self._teardown()
        self._check_invariants()
        return self.report

    def _drive_step(self, client_index: int, step: dict[str, Any]) -> None:
        """Run one step to completion, surviving crashes and exhausted
        client retry budgets; every re-attempt reuses the step's pinned
        tokens, so completion is exactly-once by construction."""
        self.report.steps += 1
        for attempt in range(MAX_STEP_ATTEMPTS):
            try:
                self._run_step(client_index, step, attempt)
                return
            except SimulatedCrash:
                self._recover()
            except TransientError:
                # the client's retry budget ran out (or the server was
                # poisoned by an aborted group commit) — rebuild if
                # needed and re-drive the whole step
                if self.server.database.failed:
                    self._recover()
        raise CampaignFailure(
            f"seed {self.spec.seed}: step {step!r} did not complete "
            f"after {MAX_STEP_ATTEMPTS} attempts")

    def _run_step(self, client_index: int, step: dict[str, Any],
                  attempt: int) -> None:
        client = self.clients[client_index]
        kind = step["kind"]
        if kind == "dml":
            client.execute(step["sql"], token=step["token"])
        elif kind == "select":
            client.execute(step["sql"])
        elif kind == "txn":
            self._run_txn(client, step, first=attempt == 0)
        elif kind == "pipeline":
            handles = []
            with client.pipeline() as batch:
                for sql, token in step["body"]:
                    handles.append(batch.execute(sql, token=token))
            for handle in handles:
                handle.result()
        elif kind == "stream":
            # the open token makes a frame-level retry replay the same
            # server cursor; a *wholesale* re-drive gets a per-attempt
            # token — its predecessor's cursor (if any survived) may
            # have advanced, so its retained frame must not be replayed
            cursor = client.execute_stream(
                step["sql"], fetch_size=2,
                token=f"{step['token']}.a{attempt}")
            try:
                cursor.fetch_all()
            except BaseException:
                try:
                    # release the server-side cursor before re-driving
                    # the step, else retries accumulate open cursors
                    cursor.close()
                except BaseException:
                    pass
                raise

    def _run_txn(self, client: DBClient, step: dict[str, Any],
                 first: bool) -> None:
        if not first and not client.in_transaction:
            # COMMIT probe: if the lost attempt actually committed, the
            # durable ledger answers this token and nothing re-executes
            # (and no clock tick is consumed — tick parity with the
            # oracle is what keeps I4 byte-exact)
            try:
                client.execute("COMMIT", token=step["commit_token"])
                return
            except TransactionError:
                pass  # it never committed: re-run the whole transaction
        client.execute("BEGIN", token=step["begin_token"])
        for sql, token in step["body"]:
            client.execute(sql, token=token)
        client.execute("COMMIT", token=step["commit_token"])

    def _maintenance_checkpoint(self) -> None:
        try:
            self.server.database.checkpoint()
        except SimulatedCrash:
            self._recover()
        except TransientError:
            if self.server.database.failed:
                self._recover()
            # a transiently-failed checkpoint is harmless: the WAL
            # still holds everything, the next checkpoint catches up
        except TransactionError:
            # a concurrent open transaction or pinned cursor blocks
            # checkpointing; skip — the WAL retains everything and the
            # post-teardown checkpoint (all connections closed) is clean
            pass

    def _recover(self) -> None:
        """What an operator does after a crash: restart the server on
        the same directory (WAL recovery) and reconnect the clients."""
        self.report.crashes += 1
        self.generation += 1
        self.report.generations += 1
        self._collect_counters()
        self._build_generation()
        self._probe_scan_cache()

    def _probe_scan_cache(self) -> None:
        """A recovered engine must never serve a stale scan-cache
        segment — notably across the window where a crash lands between
        a commit's heap writes and its watermark bump. The recovered
        cache is necessarily empty (it never survives the process), so
        the first read rebuilds from recovered state; this probes that
        a warm hit then agrees with a cache-disabled walk of the same
        heap. SELECTs never tick the logical clock, so the probe keeps
        the survivor byte-identical to its fault-free oracle twin.
        """
        database = self.server.database
        if not database.catalog.has_table("kv"):
            return
        cache = database.scan_cache
        cold = sorted(database.query("SELECT k, v FROM kv"))
        warm = sorted(database.query("SELECT k, v FROM kv"))
        enabled = cache.enabled
        cache.enabled = False
        try:
            reference = sorted(database.query("SELECT k, v FROM kv"))
        finally:
            cache.enabled = enabled
        if not (cold == warm == reference):
            raise CampaignFailure(
                f"seed {self.spec.seed}: scan cache diverged after "
                f"recovery (generation {self.generation}): "
                f"cold={len(cold)} warm={len(warm)} "
                f"uncached={len(reference)} rows")

    def _collect_counters(self) -> None:
        for client in self.clients:
            self.report.retries += client.retries_performed
            self.report.transactions_retried += client.transactions_retried
        if self.server is not None:
            database = self.server.database
            self.report.ledger_hits += database.dedupe_ledger.hits
            self.report.ledger_stores += database.dedupe_ledger.stores
            self.report.group_aborts += self.server.group_aborts
            if self.server.admission is not None:
                self.report.sheds += self.server.admission.shed

    def _teardown(self) -> None:
        """Disconnect every client and leave a checkpointed directory."""
        for _ in range(MAX_TEARDOWN_ATTEMPTS):
            try:
                for client in self.clients:
                    if client.connected:
                        try:
                            client.close()
                        except DatabaseError:
                            # a retried close whose first ack was lost:
                            # the server already forgot the connection
                            client.connection_id = None
                self.server.database.checkpoint()
                self._collect_counters()
                return
            except SimulatedCrash:
                self._recover()
            except TransientError:
                if self.server.database.failed:
                    self._recover()
        raise CampaignFailure(
            f"seed {self.spec.seed}: teardown did not complete")

    # -- invariants ---------------------------------------------------------------

    def _check_invariants(self) -> None:
        seed = self.spec.seed
        server, database = self.server, self.server.database
        # I3: nothing leaked once every connection is gone
        counters = server.server_counters()
        if counters["open_connections"] or counters["open_cursors"]:
            raise CampaignFailure(
                f"seed {seed}: leaked {counters['open_connections']} "
                f"connection(s) and {counters['open_cursors']} cursor(s) "
                f"after teardown")
        if database.mvcc.active_count():
            raise CampaignFailure(
                f"seed {seed}: leaked transactions still pin snapshots: "
                f"{database.mvcc.active_ids()}")
        database.vacuum()
        if database.mvcc.commit_map_size():
            raise CampaignFailure(
                f"seed {seed}: MVCC pruning stalled — commit map still "
                f"holds {database.mvcc.commit_map_size()} entries")
        # I1 + I2: reopen fresh and compare against the exactly-once
        # expectation (missing key = lost write; wrong value = a retry
        # was double-applied or dropped)
        expected = expected_state(self.spec)
        fresh = Database(data_directory=self.data_dir)
        actual = dict(fresh.query("SELECT k, v FROM kv"))
        self.report.final_rows = actual
        if actual != expected:
            missing = sorted(set(expected) - set(actual))
            extra = sorted(set(actual) - set(expected))
            wrong = sorted(key for key in set(actual) & set(expected)
                           if actual[key] != expected[key])
            raise CampaignFailure(
                f"seed {seed}: survivor diverged from exactly-once "
                f"expectation — lost keys {missing}, phantom keys "
                f"{extra}, double-applied/corrupted keys {wrong}")


# -- campaign entry points ---------------------------------------------------------


def tree_bytes(root: str | Path) -> dict[str, bytes]:
    """Relative path → bytes for every file under ``root``."""
    root = Path(root)
    return {str(path.relative_to(root)): path.read_bytes()
            for path in sorted(root.rglob("*")) if path.is_file()}


def run_campaign(seed: int, base_dir: str | Path,
                 clients: int = 3, rounds: int = 8,
                 oracle: bool = True) -> CampaignReport:
    """Run one seeded campaign (plus its fault-free oracle twin) and
    check all four invariants; returns the survivor's report."""
    base_dir = Path(base_dir)
    spec = CampaignSpec(seed=seed, clients=clients, rounds=rounds)
    harness = ChaosHarness(base_dir / f"survivor-{seed}", spec)
    report = harness.run()
    if oracle:
        oracle_spec = replace(spec, faults=False, admission=False)
        oracle_harness = ChaosHarness(base_dir / f"oracle-{seed}",
                                      oracle_spec)
        oracle_report = oracle_harness.run()
        # I4: the survivor's checkpointed directory must be
        # byte-identical to the fault-free oracle's
        survivor_tree = tree_bytes(base_dir / f"survivor-{seed}")
        oracle_tree = tree_bytes(base_dir / f"oracle-{seed}")
        if set(survivor_tree) != set(oracle_tree):
            raise CampaignFailure(
                f"seed {seed}: survivor file set "
                f"{sorted(survivor_tree)} != oracle "
                f"{sorted(oracle_tree)}")
        different = [name for name in sorted(survivor_tree)
                     if survivor_tree[name] != oracle_tree[name]]
        if different:
            raise CampaignFailure(
                f"seed {seed}: survivor directory is not byte-identical "
                f"to the fault-free oracle; differing files: {different}")
        if report.final_rows != oracle_report.final_rows:
            raise CampaignFailure(
                f"seed {seed}: survivor rows diverge from oracle rows")
    return report
