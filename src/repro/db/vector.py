"""Batch-at-a-time (vectorized) query operators.

The row executor in :mod:`repro.db.executor` moves one ``(values,
lineage)`` pair per Python ``next()`` call; at 100k rows the
interpreter dispatch around those calls dominates evaluation. The
operators here move a :class:`RowBatch` — column vectors plus a
parallel *annotation vector* of lineages — so per-tuple overhead is
paid once per ~:data:`BATCH_SIZE` rows, and expressions evaluate as
compiled list comprehensions over whole columns (see the batch
compilation section of :mod:`repro.db.expressions`).

Design rules:

* Every batch operator subclasses its row twin (``BatchFilter`` is a
  ``Filter``) so isinstance-based planner/EXPLAIN logic keeps working,
  and inherits a row-iterator compatibility shim from
  :class:`BatchOperator` — anything that consumes annotated rows
  (MVCC read views, the monitor's lineage capture, INSERT ... SELECT)
  sees the exact row stream the tuple engine produced.
* Lineage annotations ride in a vector parallel to the columns;
  ``None`` means "no annotations anywhere in this batch" so the
  non-provenance path never allocates per-row frozensets.
* A selection vector (``sel``) defers gathering after filters: a
  filter only refines ``sel``, the next gathering operator pays the
  copy once.
* Row-only operators (NestedLoopJoin, MaterializedSource) compose
  into batch plans through :func:`batches_of`, which chunks any
  annotated-row iterator into batches.

Fallbacks to full row-at-a-time planning: the
``interpreted_expressions()`` escape hatch and the
:func:`row_at_a_time_plans` context manager (used by benchmarks to
measure the tuple engine on identical plans).
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from itertools import islice
from operator import itemgetter
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.db import executor as ex
from repro.db import expressions as exprs
from repro.db import parallel as par
from repro.db.provtypes import EMPTY_LINEAGE, lineage_singletons
from repro.db.sql import ast
from repro.errors import ExecutionError

# Rows per batch: large enough to amortize per-batch dispatch, small
# enough that column vectors stay cache-friendly Python lists.
BATCH_SIZE = 1024


# Benchmarks flip this off to run the tuple-at-a-time engine on the
# same queries; production code never touches it.
_VECTORIZED = True

# Lineage annotation vectors materialized by scan paths (operators and
# cached segments). The no-provenance path must keep this flat — zero
# allocations — and cached segments allocate once per segment instead
# of once per scan; tests assert both through this counter.
LINEAGE_VECTOR_BUILDS = 0


def note_lineage_vector_build() -> None:
    global LINEAGE_VECTOR_BUILDS
    LINEAGE_VECTOR_BUILDS += 1


@contextmanager
def row_at_a_time_plans():
    """Force plans built inside the block onto the row executor."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = False
    try:
        yield
    finally:
        _VECTORIZED = previous


def vectorized_enabled() -> bool:
    """Should the planner emit batch operators right now?

    Interpreted-expressions mode implies row plans: the escape hatch
    promises the *interpreter* evaluates every expression, and batch
    operators would re-route evaluation through vector closures.
    """
    return _VECTORIZED and not exprs._INTERPRET_ONLY


class RowBatch:
    """A batch of rows in columnar layout with lineage annotations.

    ``columns`` holds one list per schema column, each ``count`` long.
    ``lineages`` is a parallel list of frozensets, or None when no row
    in the batch carries lineage. ``sel`` is a selection vector of row
    positions still alive (None = all). ``row_major`` optionally
    caches the same rows as tuples (producers that already hold row
    tuples — scans, join output — pass them so :meth:`rows` skips
    re-transposing). ``rowids`` is a second annotation vector carrying
    each row's global heap rowid — only partition-parallel pipelines
    populate it (the gather boundary merges partition streams back
    into exact serial rowid order by it); everywhere else it stays
    None and costs nothing. Consumers must treat the vectors as
    immutable — operators share them across batches.
    """

    __slots__ = ("columns", "count", "lineages", "sel", "row_major",
                 "rowids")

    def __init__(self, columns: list, count: int,
                 lineages: list | None = None,
                 sel: Any = None,
                 row_major: list | None = None,
                 rowids: list | None = None) -> None:
        self.columns = columns
        self.count = count
        self.lineages = lineages
        self.sel = sel
        self.row_major = row_major
        self.rowids = rowids

    def selection(self) -> Any:
        return range(self.count) if self.sel is None else self.sel

    def __len__(self) -> int:
        return self.count if self.sel is None else len(self.sel)

    def rows(self) -> list[tuple]:
        """Selected rows as plain tuples (the row-shim's currency).

        Transposition runs through ``zip(*columns)`` — per-row
        ``tuple(generator)`` calls were the single hottest line of the
        batch engine before this.
        """
        row_major = self.row_major
        sel = self.sel
        if row_major is not None:
            if sel is None:
                return row_major
            return [row_major[index] for index in sel]
        columns = self.columns
        if not columns:
            return [()] * (self.count if sel is None else len(sel))
        if sel is None:
            return list(zip(*columns))
        if len(columns) == 1:
            column = columns[0]
            return [(column[index],) for index in sel]
        return list(zip(*[[column[index] for index in sel]
                          for column in columns]))

    def gathered_lineages(self) -> list | None:
        """Annotation vector aligned with :meth:`rows`, or None."""
        if self.lineages is None:
            return None
        if self.sel is None:
            return self.lineages
        return [self.lineages[index] for index in self.sel]

    def picked_lineages(self) -> list:
        """Like :meth:`gathered_lineages` with the empty-lineage fill."""
        gathered = self.gathered_lineages()
        if gathered is None:
            return [EMPTY_LINEAGE] * len(self)
        return gathered

    def gathered_rowids(self) -> list | None:
        """Rowid vector aligned with :meth:`rows`, or None."""
        if self.rowids is None:
            return None
        if self.sel is None:
            return self.rowids
        return [self.rowids[index] for index in self.sel]

    def slice(self, start: int, stop: int) -> "RowBatch":
        """A sub-range of the selected rows (shares the vectors)."""
        sel = self.selection()
        return RowBatch(self.columns, self.count, self.lineages,
                        sel[start:stop], self.row_major, self.rowids)


class BatchOperator(ex.Operator):
    """Base for batch operators: a stream of :class:`RowBatch`.

    The inherited iteration protocol is a compatibility shim — row
    consumers iterate ``(values, lineage)`` exactly as before, decoded
    from the batch stream.
    """

    def batches(self) -> Iterator[RowBatch]:  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self) -> Iterator[ex.Annotated]:
        for batch in self.batches():
            lineages = batch.gathered_lineages()
            if lineages is None:
                for values in batch.rows():
                    yield values, EMPTY_LINEAGE
            else:
                yield from zip(batch.rows(), lineages)


def _chunk_annotated(iterator: Iterator[ex.Annotated],
                     width: int) -> Iterator[RowBatch]:
    """Chunk an annotated-row iterator into dense batches."""
    while True:
        chunk = list(islice(iterator, BATCH_SIZE))
        if not chunk:
            return
        columns = (list(zip(*(values for values, _ in chunk)))
                   if width else [])
        lineages: list | None = [lineage for _, lineage in chunk]
        if not any(lineages):
            lineages = None
        yield RowBatch(columns, len(chunk), lineages, None)


def batches_of(operator: ex.Operator) -> Iterator[RowBatch]:
    """Batch view of any operator — the bridge for row-only operators
    (NestedLoopJoin, MaterializedSource) inside batch plans."""
    if isinstance(operator, BatchOperator):
        return operator.batches()
    return _chunk_annotated(iter(operator), len(operator.schema))


class BatchSeqScan(BatchOperator, ex.SeqScan):
    """Columnar full scan.

    Under an MVCC read view (or with lineage tracking) rows flow
    through ``scan_versions()`` so snapshot visibility and version
    stamps match the row scan exactly; the committed-latest
    no-lineage case slices the heap directly.

    ``needed_columns`` (set by a fused parent whose expressions are
    all pure-vector) prunes materialization: only those column
    vectors are built, the rest stay None placeholders that the
    kernel provably never reads.

    When the table belongs to a catalog with a scan cache
    (:mod:`repro.db.scancache`), the scan is served from prebuilt
    cached segments whenever that is provably exact — committed-latest
    reads, and snapshot reads the cache's delta pass covers — and
    ``cache_note`` records hit/miss for EXPLAIN ANALYZE. Anything the
    cache declines falls through to the walk below unchanged.
    """

    needed_columns: set[int] | None = None
    cache_note: str | None = None

    def batches(self) -> Iterator[RowBatch]:
        table = self.table
        width = len(self.schema)
        cache = table.scan_cache
        if cache is not None:
            served = cache.serve_seq_scan(self, table)
            if served is not None:
                yield from served
                return
        if self.track_lineage or table.active_view() is not None:
            name = table.name
            track = self.track_lineage
            iterator = table.scan_versions()
            while True:
                chunk = list(islice(iterator, BATCH_SIZE))
                if not chunk:
                    return
                chunk_rows = [values for _, values, _ in chunk]
                columns = list(zip(*chunk_rows)) if width else []
                lineages = None
                if track:
                    lineages = lineage_singletons(
                        name,
                        [(rowid, version) for rowid, _, version in chunk])
                    note_lineage_vector_build()
                yield RowBatch(columns, len(chunk), lineages, None,
                               chunk_rows)
            return
        heap = table.rows
        rowids = sorted(heap)
        if rowids == list(heap):
            # rowids are allocated monotonically, so the heap dict is
            # almost always already in rowid order — skip 1 dict
            # lookup per row
            ordered = list(heap.values())
        else:
            ordered = [heap[rowid] for rowid in rowids]
        needed = self.needed_columns
        if needed is not None and len(needed) < width:
            getters = [(index, itemgetter(index))
                       for index in sorted(needed)]
            for start in range(0, len(ordered), BATCH_SIZE):
                chunk_rows = ordered[start:start + BATCH_SIZE]
                columns: list = [None] * width
                for index, getter in getters:
                    columns[index] = list(map(getter, chunk_rows))
                yield RowBatch(columns, len(chunk_rows), None, None,
                               chunk_rows)
            return
        for start in range(0, len(ordered), BATCH_SIZE):
            chunk_rows = ordered[start:start + BATCH_SIZE]
            columns = list(zip(*chunk_rows)) if width else []
            yield RowBatch(columns, len(chunk_rows), None, None,
                           chunk_rows)


class BatchPartitionScan(BatchSeqScan):
    """One partition of a parallel scan: a :class:`BatchSeqScan`
    restricted to an explicit rowid list, assigned per execution by
    the gather operator (heaps grow between executions of a cached
    plan, so partition boundaries cannot be baked in at plan time).

    Every batch carries the rowid annotation vector so downstream
    fused kernels/filters/projections keep output rows aligned with
    global rowids: the merge-mode gather k-way merges partition
    streams back into exact serial rowid order, and partial aggregates
    order merged groups by global first occurrence.

    Visibility matches the serial scan exactly: under an ambient read
    view each rowid resolves through
    :meth:`~repro.db.storage.HeapTable.view_entry` (overlay upserts,
    overlay deletes, history chains); the committed-latest path reads
    the heap directly.
    """

    def __init__(self, table, qualifier: str,
                 track_lineage: bool) -> None:
        ex.SeqScan.__init__(self, table, qualifier, track_lineage)
        self.rowids: list[int] = []

    def batches(self) -> Iterator[RowBatch]:
        table = self.table
        width = len(self.schema)
        rowids = self.rowids
        view = table.active_view()
        cache = table.scan_cache
        if cache is not None and view is None:
            served = cache.serve_partition_scan(self, table, rowids)
            if served is not None:
                yield from served
                return
        if self.track_lineage or view is not None:
            name = table.name
            track = self.track_lineage
            if view is None:
                heap = table.rows
                versions = table.versions
                resolved = [(rowid, heap[rowid], versions[rowid])
                            for rowid in rowids]
            else:
                overlay = view.overlay_for(name)
                resolved = []
                for rowid in rowids:
                    found = table.view_entry(rowid, view, overlay)
                    if found is not None:
                        resolved.append((rowid, found[0], found[1]))
            for start in range(0, len(resolved), BATCH_SIZE):
                chunk = resolved[start:start + BATCH_SIZE]
                chunk_rows = [values for _, values, _ in chunk]
                columns = list(zip(*chunk_rows)) if width else []
                lineages = None
                if track:
                    lineages = lineage_singletons(
                        name,
                        [(rowid, version) for rowid, _, version in chunk])
                    note_lineage_vector_build()
                yield RowBatch(columns, len(chunk), lineages, None,
                               chunk_rows,
                               [rowid for rowid, _, _ in chunk])
            return
        heap = table.rows
        needed = self.needed_columns
        prune = needed is not None and len(needed) < width
        for start in range(0, len(rowids), BATCH_SIZE):
            chunk_ids = rowids[start:start + BATCH_SIZE]
            chunk_rows = [heap[rowid] for rowid in chunk_ids]
            if prune:
                columns: list = [None] * width
                for index in sorted(needed):
                    columns[index] = [row[index] for row in chunk_rows]
            else:
                columns = list(zip(*chunk_rows)) if width else []
            yield RowBatch(columns, len(chunk_rows), None, None,
                           chunk_rows, chunk_ids)


class BatchIndexScan(BatchOperator, ex.IndexScan):
    """Columnar index lookup: chunks the row IndexScan's output (the
    probe itself is already set-at-a-time over the hash buckets)."""

    def batches(self) -> Iterator[RowBatch]:
        return _chunk_annotated(ex.IndexScan.__iter__(self),
                                len(self.schema))


class FusedScanFilterProject(BatchOperator):
    """Scan→Filter→Project fused into one compiled per-batch kernel.

    The planner grows this node bottom-up: predicates pushed onto a
    scan join the fusion via :meth:`add_predicate`, and the final
    SELECT-list projection lands via :meth:`absorb_projections`. Each
    mutation recompiles the kernel (plan-time cost only). One batch
    then takes a single call: refine the selection through every
    predicate, gather the projected columns, pick the surviving
    lineage annotations.
    """

    def __init__(self, child: BatchOperator,
                 predicates: list | None = None,
                 projections: list | None = None,
                 output_schema=None) -> None:
        self.child = child
        self.predicates = list(predicates or [])
        self.projections: list | None = None
        self.schema = child.schema
        if projections is not None:
            self.absorb_projections(projections, output_schema)
        else:
            self._recompile()

    def _recompile(self) -> None:
        self._kernel = exprs.compile_fused_kernel(
            self.predicates, self.projections, self.child.schema)

    def add_predicate(self, predicate: ast.Expression) -> None:
        if self.projections is not None:
            raise ExecutionError(
                "cannot add a predicate below an absorbed projection")
        self.predicates.append(predicate)
        self._recompile()

    def absorb_projections(self, projections: list,
                           output_schema) -> None:
        self.projections = list(projections)
        self.schema = output_schema
        self._recompile()
        # with a dense output this node is the scan's sole consumer;
        # if every expression is pure-vector the scan can skip
        # materializing the columns nothing reads
        if isinstance(self.child, BatchSeqScan):
            self.child.needed_columns = exprs.vector_safe_columns(
                self.predicates + self.projections, self.child.schema)

    def batches(self) -> Iterator[RowBatch]:
        kernel = self._kernel
        dense = self.projections is not None
        for batch in batches_of(self.child):
            out_columns, out_sel, picked = kernel(batch.columns,
                                                  batch.selection())
            if not picked:
                continue
            if dense:
                lineages = (None if batch.lineages is None else
                            [batch.lineages[index] for index in picked])
                rowids = (None if batch.rowids is None else
                          [batch.rowids[index] for index in picked])
                yield RowBatch(out_columns, len(picked), lineages, None,
                               None, rowids)
            else:
                yield RowBatch(out_columns, batch.count, batch.lineages,
                               out_sel, batch.row_major, batch.rowids)


class BatchFilter(BatchOperator, ex.Filter):
    """Selection-vector filter: refines ``sel``, copies nothing."""

    def __init__(self, child: ex.Operator,
                 predicate: ast.Expression) -> None:
        ex.Filter.__init__(self, child, predicate)
        self._refine = exprs.compile_batch_predicate(predicate,
                                                     child.schema)

    def batches(self) -> Iterator[RowBatch]:
        refine = self._refine
        for batch in batches_of(self.child):
            sel = refine(batch.columns, batch.selection())
            if sel:
                yield RowBatch(batch.columns, batch.count,
                               batch.lineages, sel, batch.row_major,
                               batch.rowids)


class BatchProject(BatchOperator, ex.Project):
    """Vectorized projection: one compiled closure per output column."""

    def __init__(self, child: ex.Operator,
                 output_expressions: list, output_schema) -> None:
        ex.Project.__init__(self, child, output_expressions,
                            output_schema)
        self._batch_fns = [
            exprs.compile_batch_expression(expression, child.schema)
            for expression in output_expressions]

    def batches(self) -> Iterator[RowBatch]:
        batch_fns = self._batch_fns
        for batch in batches_of(self.child):
            sel = batch.selection()
            if not sel:
                continue
            columns = [fn(batch.columns, sel) for fn in batch_fns]
            yield RowBatch(columns, len(sel),
                           batch.gathered_lineages(), None, None,
                           batch.gathered_rowids())


def _dense_batch(rows: list[tuple], lineages: list | None,
                 width: int) -> RowBatch:
    """Dense batch from produced row tuples (zip-transposed)."""
    columns = list(zip(*rows)) if width else []
    return RowBatch(columns, len(rows),
                    lineages if lineages and any(lineages) else None,
                    None, rows)


class BatchHashJoin(BatchOperator, ex.HashJoin):
    """Hash join probing one batch at a time.

    The build side is consumed through its batch stream and hashed as
    row tuples (probe output is row-shaped anyway); the probe side
    evaluates its key expressions as column vectors, so the per-row
    probe loop touches only the hash lookup. NULL keys are never
    inserted into the build table, so probe lookups need no NULL
    checks — a missing key and a NULL key both miss. When neither
    input carries lineage annotations the probe loop skips all
    per-row lineage bookkeeping (no frozenset unions)."""

    def __init__(self, left: ex.Operator, right: ex.Operator,
                 left_keys: list, right_keys: list,
                 kind: str = "inner", residual=None,
                 build_side: str = "right") -> None:
        ex.HashJoin.__init__(self, left, right, left_keys, right_keys,
                             kind, residual, build_side)
        self._left_batch_keys = [
            exprs.compile_batch_expression(expression, left.schema)
            for expression in left_keys]
        self._right_batch_keys = [
            exprs.compile_batch_expression(expression, right.schema)
            for expression in right_keys]
        self._prune_side(left, left_keys)
        self._prune_side(right, right_keys)

    @staticmethod
    def _prune_side(side: ex.Operator, keys: list) -> None:
        """Prune an input scan down to the vector-read columns.

        The join touches its inputs two ways: key expressions as
        column vectors, and whole rows via ``rows()`` — which a scan
        serves from its ``row_major`` cache without reading column
        vectors. So the scan only needs to materialize the key (and
        pushed-predicate) columns, provided every such expression is
        pure-vector."""
        expressions = list(keys)
        if (isinstance(side, FusedScanFilterProject)
                and side.projections is None):
            expressions += side.predicates
            side = side.child
        if isinstance(side, BatchSeqScan):
            side.needed_columns = exprs.vector_safe_columns(
                expressions, side.schema)

    def _build_table(self, side: ex.Operator,
                     key_fns: list) -> tuple[dict, bool]:
        build: dict[Any, list] = {}
        tracked = False
        single = len(key_fns) == 1
        for batch in batches_of(side):
            sel = batch.selection()
            if not sel:
                continue
            rows = batch.rows()
            lineages = batch.gathered_lineages()
            if lineages is None:
                lineages = [EMPTY_LINEAGE] * len(rows)
            else:
                tracked = True
            key_vectors = [fn(batch.columns, sel) for fn in key_fns]
            if single:
                for position, key in enumerate(key_vectors[0]):
                    if key is None:
                        continue  # NULL never equi-joins
                    build.setdefault(key, []).append(
                        (rows[position], lineages[position]))
            else:
                for position, key in enumerate(zip(*key_vectors)):
                    if any(part is None for part in key):
                        continue
                    build.setdefault(key, []).append(
                        (rows[position], lineages[position]))
        return build, tracked

    def _build(self, build_on_left: bool) -> tuple[dict, bool]:
        """Construct the build-side hash table; the parallel subclass
        overrides this to build per-partition in workers."""
        return self._build_table(
            self.left if build_on_left else self.right,
            self._left_batch_keys if build_on_left
            else self._right_batch_keys)

    def batches(self) -> Iterator[RowBatch]:
        build_on_left = self.build_side == "left"
        build, tracking = self._build(build_on_left)
        if not build and self.kind == "inner":
            return
        probe = self.right if build_on_left else self.left
        probe_key_fns = (self._right_batch_keys if build_on_left
                         else self._left_batch_keys)
        single = len(probe_key_fns) == 1
        residual = self._residual_fn
        left_outer = self.kind == "left"
        null_pad = (None,) * len(self.right.schema)
        width = len(self.schema)
        empty = EMPTY_LINEAGE
        lookup = build.get
        out_rows: list[tuple] = []
        out_lineages: list = []
        for batch in batches_of(probe):
            sel = batch.selection()
            if not sel:
                continue
            rows = batch.rows()
            key_vectors = [fn(batch.columns, sel) for fn in probe_key_fns]
            keys = key_vectors[0] if single else list(zip(*key_vectors))
            lineages = batch.gathered_lineages()
            if lineages is not None and not tracking:
                tracking = True
                out_lineages.extend([empty] * len(out_rows))
            append = out_rows.append
            if not tracking:
                if left_outer:
                    for position, key in enumerate(keys):
                        values = rows[position]
                        produced = False
                        matches = lookup(key)
                        if matches:
                            for other_values, _lin in matches:
                                joined = values + other_values
                                if residual is None or residual(joined):
                                    produced = True
                                    append(joined)
                        if not produced:
                            append(values + null_pad)
                else:
                    for values, key in zip(rows, keys):
                        matches = lookup(key)
                        if matches:
                            for other_values, _lin in matches:
                                joined = (other_values + values
                                          if build_on_left
                                          else values + other_values)
                                if residual is None or residual(joined):
                                    append(joined)
            else:
                append_lineage = out_lineages.append
                for position, key in enumerate(keys):
                    produced = False
                    matches = lookup(key)
                    if matches:
                        values = rows[position]
                        lineage = (lineages[position]
                                   if lineages is not None else empty)
                        for other_values, other_lineage in matches:
                            if build_on_left:
                                joined = other_values + values
                                merged = other_lineage | lineage
                            else:
                                joined = values + other_values
                                merged = lineage | other_lineage
                            if (residual is not None
                                    and not residual(joined)):
                                continue
                            produced = True
                            append(joined)
                            append_lineage(merged)
                    if left_outer and not produced:
                        append(rows[position] + null_pad)
                        append_lineage(lineages[position]
                                       if lineages is not None else empty)
            if len(out_rows) >= BATCH_SIZE:
                yield _dense_batch(out_rows,
                                   out_lineages if tracking else None,
                                   width)
                out_rows, out_lineages = [], []
        if out_rows:
            yield _dense_batch(out_rows,
                               out_lineages if tracking else None, width)


class BatchGroupAggregate(BatchOperator, ex.GroupAggregate):
    """Hash aggregation fed whole batches.

    Each batch is partitioned by group key once; every accumulator
    then consumes its group's value vector through ``add_many`` —
    preserving left-to-right fold order within the group so float
    aggregates stay bit-identical to row execution.
    """

    def __init__(self, child: ex.Operator, group_expressions: list,
                 output_expressions: list, output_schema,
                 having=None) -> None:
        ex.GroupAggregate.__init__(self, child, group_expressions,
                                   output_expressions, output_schema,
                                   having)
        self._group_batch_fns = [
            exprs.compile_batch_expression(expression, child.schema)
            for expression in group_expressions]
        # COUNT(*) reads nothing per row — its accumulator only needs
        # the group's cardinality, so it is fed the position bucket
        self._input_batch_fns = [
            None if (len(call.args) == 1
                     and isinstance(call.args[0], ast.Star))
            else exprs.compile_batch_expression(call.args[0],
                                                child.schema)
            for call in self.aggregate_calls]

    def batches(self) -> Iterator[RowBatch]:
        groups, order = self._accumulate()
        self._ensure_global_group(groups, order)
        return _chunk_annotated(self._finalize(groups, order),
                                len(self.schema))

    def _accumulate(self) -> tuple[dict, list]:
        """Drain the child into per-group accumulator states.

        Split out of :meth:`batches` so partition-parallel execution
        can run the same accumulation over a partition's sub-stream
        and ship the *partial* states to the parent for an exact
        merge + shared finalize (see :class:`BatchAggregateGather`).
        """
        group_fns = self._group_batch_fns
        input_fns = self._input_batch_fns
        single_key = len(group_fns) == 1
        groups: dict[tuple, dict[str, Any]] = {}
        order: list[tuple] = []
        for batch in batches_of(self.child):
            sel = batch.selection()
            size = len(sel)
            if size == 0:
                continue
            if group_fns:
                key_vectors = [fn(batch.columns, sel)
                               for fn in group_fns]
                # scalar partition keys in the common single-key case;
                # the groups dict still keys on tuples (finalize reads
                # group values back out of the key)
                keys = (key_vectors[0] if single_key
                        else list(zip(*key_vectors)))
                positions: dict[Any, list[int]] = {}
                bucket_of = positions.get
                for position, key in enumerate(keys):
                    bucket = bucket_of(key)
                    if bucket is None:
                        positions[key] = [position]
                    else:
                        bucket.append(position)
            else:
                positions = {(): list(range(size))}
            input_vectors = [None if fn is None
                             else fn(batch.columns, sel)
                             for fn in input_fns]
            lineages = batch.gathered_lineages()
            sel_list = sel if type(sel) is list else list(sel)
            row_major = batch.row_major
            rowid_vector = batch.rowids
            for key, bucket in positions.items():
                group_key = ((key,) if group_fns and single_key
                             else key)
                state = groups.get(group_key)
                if state is None:
                    first = sel_list[bucket[0]]
                    representative = (
                        row_major[first] if row_major is not None
                        else tuple(column[first]
                                   for column in batch.columns))
                    state = self._new_state(representative)
                    if rowid_vector is not None:
                        state["first_rowid"] = rowid_vector[first]
                    groups[group_key] = state
                    order.append(group_key)
                whole = len(bucket) == size
                for vector, accumulator in zip(input_vectors,
                                               state["accumulators"]):
                    if vector is None:
                        fed = bucket  # COUNT(*): only len() matters
                    else:
                        fed = vector if whole else [vector[position]
                                                    for position in bucket]
                    accumulator.add_many(fed)
                if lineages is not None:
                    group_lineage = state["lineage"]
                    for position in bucket:
                        group_lineage.update(lineages[position])
        return groups, order


def _concat_batches(batches: Iterator[RowBatch],
                    width: int) -> tuple[list, list | None, int]:
    """Materialize a batch stream into dense full-length columns."""
    columns: list[list] = [[] for _ in range(width)]
    lineages: list = []
    tracking = False
    count = 0
    for batch in batches:
        sel = batch.selection()
        size = len(sel)
        if size == 0:
            continue
        for out, column in zip(columns, batch.columns):
            out.extend(exprs._gather(column, sel))
        gathered = batch.gathered_lineages()
        if gathered is not None:
            if not tracking:
                lineages.extend([EMPTY_LINEAGE] * count)
                tracking = True
            lineages.extend(gathered)
        elif tracking:
            lineages.extend([EMPTY_LINEAGE] * size)
        count += size
    return columns, (lineages if tracking else None), count


def _rechunk(columns: list, lineages: list | None,
             count: int) -> Iterator[RowBatch]:
    """Emit dense full-length columns as BATCH_SIZE slices."""
    for start in range(0, count, BATCH_SIZE):
        stop = min(start + BATCH_SIZE, count)
        yield RowBatch(
            [column[start:stop] for column in columns], stop - start,
            lineages[start:stop] if lineages is not None else None,
            None)


class BatchSort(BatchOperator, ex.Sort):
    """Materializing sort over concatenated column vectors.

    Sorting permutes an index vector (:func:`executor.ordered_indices`
    — the sort keys are already columns, no per-row key extraction)
    and gathers each column once.
    """

    def batches(self) -> Iterator[RowBatch]:
        columns, lineages, count = _concat_batches(
            batches_of(self.child), len(self.schema))
        if count == 0:
            return
        if count > 1 and self.keys:
            key_columns = [(columns[index], descending)
                           for index, descending in self.keys]
            order = ex.ordered_indices(count, key_columns)
            columns = [[column[index] for index in order]
                       for column in columns]
            if lineages is not None:
                lineages = [lineages[index] for index in order]
        yield from _rechunk(columns, lineages, count)


class BatchDistinct(BatchOperator, ex.Distinct):
    """Duplicate collapse over batches, merging lineages as the row
    operator does (first occurrence wins, annotations union)."""

    def batches(self) -> Iterator[RowBatch]:
        seen: dict[tuple, list] = {}
        order: list[tuple] = []
        key_width = self.key_width
        for batch in batches_of(self.child):
            rows = batch.rows()
            lineages = batch.gathered_lineages()
            for position, values in enumerate(rows):
                key = (values if key_width is None
                       else values[:key_width])
                entry = seen.get(key)
                if entry is None:
                    seen[key] = [values,
                                 set() if lineages is None
                                 else set(lineages[position])]
                    order.append(key)
                elif lineages is not None:
                    entry[1].update(lineages[position])
        return _chunk_annotated(
            ((seen[key][0], frozenset(seen[key][1])) for key in order),
            len(self.schema))


class BatchLimit(BatchOperator, ex.Limit):
    """LIMIT/OFFSET by slicing selection vectors."""

    def batches(self) -> Iterator[RowBatch]:
        to_skip = self.offset
        remaining = self.limit
        for batch in batches_of(self.child):
            size = len(batch)
            if size == 0:
                continue
            start = 0
            if to_skip:
                if to_skip >= size:
                    to_skip -= size
                    continue
                start = to_skip
                to_skip = 0
            stop = size
            if remaining is not None:
                if remaining <= 0:
                    return
                stop = min(stop, start + remaining)
            piece = batch.slice(start, stop)
            if remaining is not None:
                remaining -= len(piece)
            yield piece
            if remaining is not None and remaining <= 0:
                return


class BatchStripColumns(BatchOperator, ex.StripColumns):
    """Drop hidden trailing columns — a vector-list slice per batch."""

    def batches(self) -> Iterator[RowBatch]:
        width = self.visible_width
        for batch in batches_of(self.child):
            yield RowBatch(batch.columns[:width], batch.count,
                           batch.lineages, batch.sel)


class BatchUnion(BatchOperator, ex.Union):
    """UNION ALL: concatenates the children's batch streams."""

    def batches(self) -> Iterator[RowBatch]:
        for child in self.children:
            yield from batches_of(child)


# ---------------------------------------------------------------------------
# Partition-parallel execution: Exchange / Gather
# ---------------------------------------------------------------------------


def parallel_scan_leaf(node: ex.Operator):
    """The :class:`BatchSeqScan` leaf of a parallel-eligible pipeline.

    Eligible: a chain of fused kernels / filters / projections over
    exactly one base-table sequential scan. Returns None for anything
    else (joins, index scans, unions) — those plans stay serial.
    """
    while isinstance(node, (FusedScanFilterProject, BatchFilter,
                            BatchProject)):
        node = node.child
    if type(node) is BatchSeqScan:
        return node
    return None


def _chain_spec(template: ex.Operator) -> dict:
    """Picklable description of a parallel-eligible pipeline chain.

    Steps are AST expressions and :class:`~repro.db.types.Schema`
    objects (frozen dataclasses and plain tuples — they cross the
    resident-pool task pipe via pickle); the leaf scan's table rides
    as a direct reference for in-process execution and collapses to
    its name when a :class:`PartitionTask` is pickled.
    """
    steps: list[tuple] = []
    node = template
    while isinstance(node, (FusedScanFilterProject, BatchFilter,
                            BatchProject)):
        if isinstance(node, FusedScanFilterProject):
            steps.append((
                "fused", tuple(node.predicates),
                (tuple(node.projections)
                 if node.projections is not None else None),
                node.schema))
        elif isinstance(node, BatchFilter):
            steps.append(("filter", node.predicate))
        else:
            steps.append(("project", tuple(node.output_expressions),
                          node.schema))
        node = node.child
    return {"steps": tuple(steps), "table": node.table,
            "qualifier": node.qualifier,
            "track_lineage": node.track_lineage,
            "needed": node.needed_columns}


def _resolve_table(ref):
    """A chain spec's table: a direct reference in-process, a name in
    a resident worker (re-resolved against the fork-time engine)."""
    if isinstance(ref, str):
        engine = par.current_worker_engine()
        if engine is None:
            raise ExecutionError(
                f"partition task for table {ref!r} executed outside a "
                f"resident pool worker")
        return engine.catalog.get_table(ref)
    return ref


def _build_chain(chain: dict,
                 rowids: list[int]) -> tuple[BatchOperator,
                                             "BatchPartitionScan"]:
    """Instantiate a chain spec with a :class:`BatchPartitionScan`
    leaf. The same constructors run in-process and in resident
    workers, so every pool substrate drains identical operator
    pipelines (kernels recompile from the same ASTs)."""
    table = _resolve_table(chain["table"])
    scan = BatchPartitionScan(table, chain["qualifier"],
                              chain["track_lineage"])
    scan.needed_columns = chain["needed"]
    scan.rowids = list(rowids)
    node: BatchOperator = scan
    for step in reversed(chain["steps"]):
        kind = step[0]
        if kind == "fused":
            _, predicates, projections, schema = step
            if projections is not None:
                node = FusedScanFilterProject(node, list(predicates),
                                              list(projections),
                                              schema)
            else:
                node = FusedScanFilterProject(node, list(predicates))
        elif kind == "filter":
            node = BatchFilter(node, step[1])
        else:
            node = BatchProject(node, list(step[1]), step[2])
    return node, scan


def _portable_chain(chain: dict) -> dict:
    out = dict(chain)
    table = out["table"]
    if not isinstance(table, str):
        out["table"] = table.name
    return out


class PartitionTask:
    """One partition's unit of parallel work.

    Callable in-process — :class:`~repro.db.parallel.InProcessPool`
    and the fork-per-statement :class:`~repro.db.parallel.ForkPool`
    just invoke it (the fork copies direct table references and any
    prebuilt clone) — and *picklable* for
    :class:`~repro.db.parallel.PersistentForkPool` residents:
    ``__getstate__`` collapses heap-table references to names and
    drops the prebuilt clone; the resident re-resolves names against
    its fork-time engine and rebuilds the pipeline from the AST spec
    through the same constructors. The ambient
    :class:`~repro.db.mvcc.ReadView` pickles whole (snapshot,
    overlays, commit map), so MVCC visibility ships to residents
    exactly as the fork-per-statement pool shipped it.
    """

    __slots__ = ("spec", "root")

    def __init__(self, spec: dict, root=None) -> None:
        self.spec = spec
        self.root = root

    def __call__(self):
        return _run_partition_task(self.spec, self.root)

    def __getstate__(self) -> dict:
        spec = dict(self.spec)
        for key in ("chain", "build_chain", "probe_chain"):
            if key in spec:
                spec[key] = _portable_chain(spec[key])
        return spec

    def __setstate__(self, spec: dict) -> None:
        self.spec = spec
        self.root = None


def _drain_rows(root: BatchOperator) -> tuple[list, list | None, list]:
    """Drain a partition pipeline into picklable dense results: row
    tuples, a lineage vector (None when nothing tracked), and the
    global rowid vector every partition scan threads through."""
    rows: list = []
    lineages: list = []
    rowids: list = []
    tracking = False
    for batch in root.batches():
        batch_rows = batch.rows()
        gathered = batch.gathered_lineages()
        if gathered is not None:
            if not tracking:
                lineages.extend([EMPTY_LINEAGE] * len(rows))
                tracking = True
            lineages.extend(gathered)
        elif tracking:
            lineages.extend([EMPTY_LINEAGE] * len(batch_rows))
        gathered_ids = batch.gathered_rowids()
        if gathered_ids is not None:
            rowids.extend(gathered_ids)
        rows.extend(batch_rows)
    return rows, (lineages if tracking else None), rowids


def _sorted_partition(rows: list, lineages: list | None, rowids: list,
                      keys: list, ship_limit: int | None):
    """Partition-local ORDER BY: the exact serial comparator
    (:func:`executor.ordered_indices` — same stability, same NULL
    placement) over this partition's rows, then the top-k slice when
    a LIMIT was pushed down (a partition never contributes more than
    offset+limit rows to the final order)."""
    if len(rows) > 1 and keys:
        key_columns = [([row[index] for row in rows], descending)
                       for index, descending in keys]
        order = ex.ordered_indices(len(rows), key_columns)
        rows = [rows[index] for index in order]
        rowids = [rowids[index] for index in order]
        if lineages is not None:
            lineages = [lineages[index] for index in order]
    if ship_limit is not None:
        rows = rows[:ship_limit]
        rowids = rowids[:ship_limit]
        if lineages is not None:
            lineages = lineages[:ship_limit]
    return rows, lineages, rowids


def _drain_build(root: BatchOperator, keys: tuple, started: float):
    """Partial hash-join build: evaluate the build keys over this
    partition and ship flat ``(key, row, lineage, rowid)`` entries —
    the parent folds them into one table in global rowid order, which
    reproduces the serial build's per-key insertion order exactly."""
    key_fns = [exprs.compile_batch_expression(expression, root.schema)
               for expression in keys]
    single = len(key_fns) == 1
    entries: list = []
    tracked = False
    for batch in batches_of(root):
        sel = batch.selection()
        if not sel:
            continue
        rows = batch.rows()
        lineages = batch.gathered_lineages()
        if lineages is None:
            lineages = [EMPTY_LINEAGE] * len(rows)
        else:
            tracked = True
        rowids = batch.gathered_rowids()
        key_vectors = [fn(batch.columns, sel) for fn in key_fns]
        key_values = (key_vectors[0] if single
                      else list(zip(*key_vectors)))
        for position, key in enumerate(key_values):
            if single:
                if key is None:
                    continue  # NULL never equi-joins
            elif any(part is None for part in key):
                continue
            entries.append((key, rows[position], lineages[position],
                            rowids[position]))
    return (entries, tracked, perf_counter() - started, len(entries))


def _run_copart_task(spec: dict):
    """Co-partitioned join slice: build bucket *i*'s hash table and
    stream bucket *i*'s probe rows through it, entirely inside the
    worker. Keys only ever match within a bucket (both sides hash the
    join key with ``storage.stable_hash``), so a worker's aligned
    buckets join exactly like the full tables restricted to those
    rowids. Joined rows ship tagged with probe rowids; the parent
    k-way merges them back into serial probe order."""
    started = perf_counter()
    build_root, _scan = _build_chain(spec["build_chain"],
                                     spec["build_rowids"])
    probe_root, _scan = _build_chain(spec["probe_chain"],
                                     spec["probe_rowids"])
    build_fns = [exprs.compile_batch_expression(expression,
                                                build_root.schema)
                 for expression in spec["build_keys"]]
    probe_fns = [exprs.compile_batch_expression(expression,
                                                probe_root.schema)
                 for expression in spec["probe_keys"]]
    single = len(probe_fns) == 1
    tracked = spec["tracked"]
    build: dict = {}
    for batch in batches_of(build_root):
        sel = batch.selection()
        if not sel:
            continue
        rows = batch.rows()
        lineages = batch.gathered_lineages()
        if lineages is None:
            lineages = [EMPTY_LINEAGE] * len(rows)
        key_vectors = [fn(batch.columns, sel) for fn in build_fns]
        key_values = (key_vectors[0] if single
                      else list(zip(*key_vectors)))
        for position, key in enumerate(key_values):
            if single:
                if key is None:
                    continue  # NULL never equi-joins
            elif any(part is None for part in key):
                continue
            build.setdefault(key, []).append(
                (rows[position], lineages[position]))
    residual = (exprs.compile_predicate(spec["residual"],
                                        spec["schema"])
                if spec["residual"] is not None else None)
    left_outer = spec["join_kind"] == "left"
    build_on_left = spec["build_on_left"]
    null_pad = (None,) * spec["pad_width"]
    lookup = build.get
    out_rows: list = []
    out_lineages: list = []
    out_rowids: list = []
    for batch in batches_of(probe_root):
        sel = batch.selection()
        if not sel:
            continue
        rows = batch.rows()
        key_vectors = [fn(batch.columns, sel) for fn in probe_fns]
        key_values = (key_vectors[0] if single
                      else list(zip(*key_vectors)))
        lineages = batch.gathered_lineages()
        rowids = batch.gathered_rowids()
        for position, key in enumerate(key_values):
            produced = False
            matches = lookup(key)
            values = rows[position]
            lineage = (lineages[position] if lineages is not None
                       else EMPTY_LINEAGE)
            if matches:
                for other_values, other_lineage in matches:
                    if build_on_left:
                        joined = other_values + values
                        merged = other_lineage | lineage
                    else:
                        joined = values + other_values
                        merged = lineage | other_lineage
                    if residual is not None and not residual(joined):
                        continue
                    produced = True
                    out_rows.append(joined)
                    out_rowids.append(rowids[position])
                    if tracked:
                        out_lineages.append(merged)
            if left_outer and not produced:
                out_rows.append(values + null_pad)
                out_rowids.append(rowids[position])
                if tracked:
                    out_lineages.append(lineage)
    return (out_rows, out_lineages if tracked else None, out_rowids,
            perf_counter() - started, len(out_rows))


def _run_partition_task(spec: dict, root=None):
    """Execute one partition task — the single implementation behind
    every pool substrate. ``root`` is the gather's cached in-process
    clone (None in resident workers and for join tasks, which rebuild
    from the spec). Installs the shipped read view around the drain
    exactly as the fork-per-statement thunks did."""
    kind = spec["kind"]
    if kind == "copart":
        return _run_copart_task(spec)
    started = perf_counter()
    chain = spec["chain"]
    table = _resolve_table(chain["table"])
    if root is None:
        root, _scan = _build_chain(chain, spec["rowids"])
        if kind == "aggregate":
            root = BatchGroupAggregate(
                root, list(spec["groups"]), list(spec["outputs"]),
                spec["schema"], spec["having"])
    state = table.mvcc
    view = spec["view"]
    previous = state.current
    state.current = view
    try:
        if kind == "aggregate":
            groups, order = root._accumulate()
            partial = [
                (key,
                 groups[key]["accumulators"],
                 groups[key]["representative"],
                 frozenset(groups[key]["lineage"]),
                 groups[key]["first_rowid"])
                for key in order]
            return (partial, perf_counter() - started, len(partial))
        if kind == "build":
            return _drain_build(root, spec["keys"], started)
        rows, lineages, rowids = _drain_rows(root)
        if kind == "sort":
            rows, lineages, rowids = _sorted_partition(
                rows, lineages, rowids, spec["keys"],
                spec["ship_limit"])
        return (rows, lineages, rowids, perf_counter() - started,
                len(rows))
    finally:
        state.current = previous


def _merge_row_payloads(payloads: list, merge_mode: bool,
                        width: int) -> Iterator[RowBatch]:
    """Merge per-partition dense results back into the serial row
    order: concatenation for contiguous rowid-range partitions, a
    k-way merge by global rowid for hash-partition streams."""
    tracking = any(payload[1] is not None for payload in payloads)
    all_rows: list = []
    all_lineages: list = []
    if merge_mode:
        streams = []
        for rows, lineages, rowids, _seconds, _count in payloads:
            if not rows:
                continue
            filled = (lineages if lineages is not None
                      else [EMPTY_LINEAGE] * len(rows))
            streams.append(zip(rowids, rows, filled))
        for _rowid, row, lineage in heapq.merge(*streams,
                                                key=itemgetter(0)):
            all_rows.append(row)
            if tracking:
                all_lineages.append(lineage)
    else:
        for rows, lineages, _rowids, _seconds, _count in payloads:
            all_rows.extend(rows)
            if tracking:
                all_lineages.extend(
                    lineages if lineages is not None
                    else [EMPTY_LINEAGE] * len(rows))
    for start in range(0, len(all_rows), BATCH_SIZE):
        chunk = all_rows[start:start + BATCH_SIZE]
        yield _dense_batch(
            chunk,
            all_lineages[start:start + BATCH_SIZE] if tracking else None,
            width)


def _partition_rowid_lists(table, workers: int):
    """Per-worker rowid lists for a table: bucket lists when it is
    hash-partitioned and no read view is active (merge mode — output
    restored to rowid order by k-way merge), contiguous ranges over
    the candidate rowid universe otherwise (concat mode)."""
    spec = table.partition_spec
    if spec is not None and table.active_view() is None:
        return par.bucket_lists(table.partition_rowids(), workers), True
    return par.split_ranges(table.candidate_rowids(), workers), False


class _Desc:
    """Inverts comparison for DESC merge keys (values like strings
    cannot be negated, so the k-way merge wraps them instead)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


def _merge_sort_key(keys: list):
    """Composite ``heapq.merge`` key reproducing the serial sort
    order exactly: per ASC key NULLs sort last, per DESC key NULLs
    sort first and values invert via :class:`_Desc` (matching
    :func:`executor._stable_key_sort`), with the global rowid as the
    final tie-break — the serial sort is stable over rowid-ordered
    input, so ties resolve in rowid order there too."""
    def key_of(item):
        rowid, row = item[0], item[1]
        parts: list = []
        for index, descending in keys:
            value = row[index]
            if descending:
                parts.append((0, 0) if value is None
                             else (1, _Desc(value)))
            else:
                parts.append((1, 0) if value is None
                             else (0, value))
        parts.append(rowid)
        return tuple(parts)
    return key_of


class _GatherBase(ex.Gather, BatchOperator):
    """Shared exchange planning for the two gather variants.

    Partition lists are computed at *execution* time (cached plans
    outlive heap growth): a hash-partitioned table contributes its
    bucket lists (merge mode — output restored to rowid order by
    k-way merge); otherwise the candidate rowid universe splits into
    contiguous ranges (concat mode — order-preserving by
    construction). Under an ambient read view the hash buckets (which
    only reflect committed-latest state) are bypassed in favor of
    range partitioning over the view's candidate rowids, so snapshot
    visibility never depends on bucket maintenance.
    """

    def __init__(self, template, scan: BatchSeqScan, context) -> None:
        self.template = template
        self.schema = template.schema
        self.context = context
        self.workers = context.workers
        self._scan = scan
        self._clones: list = []
        self._clone_scans: list[BatchPartitionScan] = []
        self._chain_cache: dict | None = None
        self.partition_stats: list[dict] | None = None

    def _template_chain(self) -> ex.Operator:
        """The scan-rooted pipeline the workers drain (the aggregate
        gather drains its template's child)."""
        return self.template

    def _chain(self) -> dict:
        if self._chain_cache is None:
            self._chain_cache = _chain_spec(self._template_chain())
        return self._chain_cache

    def _make_clone(self):
        """Cached in-process clone — rebuilt from the same chain spec
        the resident workers receive, so both substrates compile
        identical pipelines."""
        root, scan = _build_chain(self._chain(), [])
        self._clone_scans.append(scan)
        return root

    def _ensure_clones(self, count: int) -> None:
        while len(self._clones) < count:
            self._clones.append(self._make_clone())

    def _partition_lists(self) -> tuple[list[list[int]], bool]:
        return _partition_rowid_lists(self._scan.table, self.workers)

    def _task_spec(self, chunk: list[int], view) -> dict:
        raise NotImplementedError  # pragma: no cover - interface

    def _dispatch(self) -> tuple[list, bool]:
        """Partition, dispatch to the pool, collect worker payloads."""
        lists, merge_mode = self._partition_lists()
        lists = [chunk for chunk in lists if chunk]
        if not lists:
            lists = [[]]
        self._ensure_clones(len(lists))
        view = self._scan.table.active_view()
        tasks = []
        for index, chunk in enumerate(lists):
            self._clone_scans[index].rowids = chunk
            tasks.append(PartitionTask(self._task_spec(chunk, view),
                                       root=self._clones[index]))
        payloads = self.context.make_pool().run(tasks)
        self.partition_stats = [
            {"partition": index, "rows": payload[-1],
             "seconds": payload[-2]}
            for index, payload in enumerate(payloads)]
        return payloads, merge_mode


class BatchGather(_GatherBase):
    """Exchange + Gather over a scan/filter/project pipeline.

    Each worker drains a clone of ``template`` restricted to its
    partition's rowids; the parent merges the dense results — rows
    *and* lineage-annotation vectors — back into the exact serial
    order and re-chunks them into batches. Downstream operators
    cannot tell the difference from a serial scan.
    """

    def _task_spec(self, chunk: list[int], view) -> dict:
        return {"kind": "drain", "chain": self._chain(),
                "rowids": chunk, "view": view}

    def batches(self) -> Iterator[RowBatch]:
        payloads, merge_mode = self._dispatch()
        yield from _merge_row_payloads(payloads, merge_mode,
                                       len(self.schema))


class BatchAggregateGather(_GatherBase):
    """Partial→final parallel GroupAggregate.

    Workers run the *accumulation* phase of a cloned
    :class:`BatchGroupAggregate` over their partition and ship partial
    group states; the parent merges accumulators pairwise
    (:meth:`repro.db.expressions.Accumulator.merge`) and runs the
    template's finalize (HAVING, output projection) once.

    The planner only builds this node when every aggregate in the
    query is merge-exact (:func:`repro.db.expressions.merge_exact_aggregate`),
    so the merged result is bit-identical to the serial fold. Group
    output order is restored to first-seen serial order: partition-
    major for range partitions (ranges are rowid-ordered), by global
    first-contribution rowid for hash-partition streams. Lineage per
    group is the union of the partials' lineage sets — exactly the
    serial union.
    """

    def _template_chain(self) -> ex.Operator:
        return self.template.child

    def _make_clone(self):
        template = self.template
        root, scan = _build_chain(self._chain(), [])
        self._clone_scans.append(scan)
        return BatchGroupAggregate(
            root, template.group_expressions,
            template.output_expressions, template.schema,
            template.having)

    def _task_spec(self, chunk: list[int], view) -> dict:
        template = self.template
        return {"kind": "aggregate", "chain": self._chain(),
                "rowids": chunk, "view": view,
                "groups": tuple(template.group_expressions),
                "outputs": tuple(template.output_expressions),
                "schema": template.schema,
                "having": template.having}

    def batches(self) -> Iterator[RowBatch]:
        payloads, merge_mode = self._dispatch()
        groups: dict = {}
        order: list = []
        for partial, _seconds, _count in payloads:
            for key, accumulators, representative, lineage, \
                    first_rowid in partial:
                state = groups.get(key)
                if state is None:
                    groups[key] = {
                        "accumulators": accumulators,
                        "representative": representative,
                        "lineage": set(lineage),
                        "first_rowid": first_rowid,
                    }
                    order.append(key)
                    continue
                for mine, other in zip(state["accumulators"],
                                       accumulators):
                    mine.merge(other)
                state["lineage"].update(lineage)
                if (first_rowid is not None
                        and state["first_rowid"] is not None
                        and first_rowid < state["first_rowid"]):
                    state["first_rowid"] = first_rowid
                    state["representative"] = representative
        if merge_mode:
            order.sort(key=lambda key: groups[key]["first_rowid"])
        template = self.template
        template._ensure_global_group(groups, order)
        return _chunk_annotated(template._finalize(groups, order),
                                len(self.schema))


class BatchParallelSort(_GatherBase):
    """Partition-parallel ORDER BY.

    Workers sort their partition with the exact serial comparator
    (:func:`executor.ordered_indices`) and the parent k-way merges
    the sorted streams on a composite key built from the sort columns
    plus the global rowid tie-break. Partition input order is rowid-
    ascending in both partitioning modes and the serial sort is
    stable over rowid-ordered input, so the merged order — including
    ties and NULL placement — is byte-identical to the serial sort.

    With ORDER BY ... LIMIT the planner pushes ``offset + limit``
    down as ``ship_limit``: no partition can contribute more than the
    first ``ship_limit`` rows of the final order, so workers ship at
    most that many rows each (the downstream ``BatchLimit`` still
    applies the offset/limit itself).
    """

    def __init__(self, template, scan: BatchSeqScan, context,
                 keys: list, ship_limit: int | None = None) -> None:
        _GatherBase.__init__(self, template, scan, context)
        self.keys = list(keys)
        self.ship_limit = ship_limit

    def _task_spec(self, chunk: list[int], view) -> dict:
        return {"kind": "sort", "chain": self._chain(),
                "rowids": chunk, "view": view,
                "keys": tuple(self.keys),
                "ship_limit": self.ship_limit}

    def batches(self) -> Iterator[RowBatch]:
        payloads, _merge_mode = self._dispatch()
        tracking = any(payload[1] is not None for payload in payloads)
        streams = []
        for rows, lineages, rowids, _seconds, _count in payloads:
            if not rows:
                continue
            filled = (lineages if lineages is not None
                      else [EMPTY_LINEAGE] * len(rows))
            streams.append(zip(rowids, rows, filled))
        all_rows: list = []
        all_lineages: list = []
        for _rowid, row, lineage in heapq.merge(
                *streams, key=_merge_sort_key(self.keys)):
            all_rows.append(row)
            if tracking:
                all_lineages.append(lineage)
        if self.ship_limit is not None:
            all_rows = all_rows[:self.ship_limit]
            if tracking:
                all_lineages = all_lineages[:self.ship_limit]
        width = len(self.schema)
        for start in range(0, len(all_rows), BATCH_SIZE):
            chunk = all_rows[start:start + BATCH_SIZE]
            yield _dense_batch(
                chunk,
                (all_lineages[start:start + BATCH_SIZE]
                 if tracking else None),
                width)


class BatchParallelHashJoin(BatchHashJoin):
    """Hash join whose build side is constructed partition-parallel.

    Two modes, chosen by the planner and re-checked at execution:

    * **Parallel build** — workers hash their partition of the build
      side and ship flat ``(key, row, lineage, rowid)`` entries; the
      parent folds them into one table in global rowid order
      (concatenation for range partitions, k-way rowid merge for hash
      buckets), which reproduces the serial build's per-key insertion
      order exactly, then streams the probe side through it with the
      inherited serial probe loop. Identical table contents and probe
      path → identical output bytes.
    * **Co-partitioned fast path** (``copart=True``) — when both
      sides are hash-partitioned on their join key with equal bucket
      counts, a key's rows land in the same bucket index on both
      sides (same ``stable_hash``), so bucket *i* can only ever join
      bucket *i*: each worker builds and probes its aligned buckets
      locally and ships finished joined rows tagged with probe
      rowids; the parent k-way merges the streams back into serial
      probe order. No rebucketing, no shipped hash tables. The fast
      path needs the committed-latest bucket maps, so an ambient read
      view (or a spec cleared since planning) falls back to parallel
      build at execution time.
    """

    def __init__(self, join: BatchHashJoin, context,
                 copart: bool = False) -> None:
        BatchHashJoin.__init__(self, join.left, join.right,
                               join.left_keys, join.right_keys,
                               join.kind, join.residual,
                               join.build_side)
        self.context = context
        self.workers = context.workers
        self.copart = copart
        self.build_partition_stats: list[dict] | None = None
        for attr in ("est_rows", "est_build_rows"):
            value = getattr(join, attr, None)
            if value is not None:
                setattr(self, attr, value)

    def _build_side_operator(self, build_on_left: bool) -> ex.Operator:
        return self.left if build_on_left else self.right

    def _probe_side_operator(self, build_on_left: bool) -> ex.Operator:
        return self.right if build_on_left else self.left

    def _build(self, build_on_left: bool) -> tuple[dict, bool]:
        side = self._build_side_operator(build_on_left)
        scan = parallel_scan_leaf(side)
        if scan is None:  # defensive: the planner gates eligibility
            return BatchHashJoin._build(self, build_on_left)
        table = scan.table
        lists, merge_mode = _partition_rowid_lists(table, self.workers)
        lists = [chunk for chunk in lists if chunk]
        if not lists:
            lists = [[]]
        chain = _chain_spec(side)
        view = table.active_view()
        keys = tuple(self.left_keys if build_on_left
                     else self.right_keys)
        tasks = [PartitionTask({"kind": "build", "chain": chain,
                                "rowids": chunk, "view": view,
                                "keys": keys})
                 for chunk in lists]
        payloads = self.context.make_pool().run(tasks)
        self.build_partition_stats = [
            {"partition": index, "rows": payload[-1],
             "seconds": payload[-2]}
            for index, payload in enumerate(payloads)]
        if merge_mode:
            ordered = heapq.merge(*[payload[0] for payload in payloads],
                                  key=itemgetter(3))
        else:
            ordered = (entry for payload in payloads
                       for entry in payload[0])
        build: dict[Any, list] = {}
        for key, row, lineage, _rowid in ordered:
            build.setdefault(key, []).append((row, lineage))
        tracked = any(payload[1] for payload in payloads)
        return build, tracked

    def _copart_state(self):
        """Leaf scans when the co-partitioned fast path can run *now*
        (both sides still hash-partitioned with matching counts and
        no ambient read view), else None."""
        build_on_left = self.build_side == "left"
        build_scan = parallel_scan_leaf(
            self._build_side_operator(build_on_left))
        probe_scan = parallel_scan_leaf(
            self._probe_side_operator(build_on_left))
        if build_scan is None or probe_scan is None:
            return None
        build_spec = build_scan.table.partition_spec
        probe_spec = probe_scan.table.partition_spec
        if (build_spec is None or probe_spec is None
                or build_spec.count != probe_spec.count):
            return None
        if (build_scan.table.active_view() is not None
                or probe_scan.table.active_view() is not None):
            return None
        return build_on_left, build_scan, probe_scan

    def batches(self) -> Iterator[RowBatch]:
        state = self._copart_state() if self.copart else None
        if state is None:
            yield from BatchHashJoin.batches(self)
            return
        yield from self._copart_batches(*state)

    def _copart_batches(self, build_on_left: bool, build_scan,
                        probe_scan) -> Iterator[RowBatch]:
        build_side = self._build_side_operator(build_on_left)
        probe_side = self._probe_side_operator(build_on_left)
        build_lists = par.aligned_bucket_lists(
            build_scan.table.partition_rowids(), self.workers)
        probe_lists = par.aligned_bucket_lists(
            probe_scan.table.partition_rowids(), self.workers)
        build_chain = _chain_spec(build_side)
        probe_chain = _chain_spec(probe_side)
        tracked = bool(build_chain["track_lineage"]
                       or probe_chain["track_lineage"])
        build_keys = tuple(self.left_keys if build_on_left
                           else self.right_keys)
        probe_keys = tuple(self.right_keys if build_on_left
                           else self.left_keys)
        tasks = []
        for build_rowids, probe_rowids in zip(build_lists,
                                              probe_lists):
            if not probe_rowids:
                continue  # no probe rows → no output from this slice
            tasks.append(PartitionTask({
                "kind": "copart",
                "build_chain": build_chain,
                "build_rowids": build_rowids,
                "probe_chain": probe_chain,
                "probe_rowids": probe_rowids,
                "build_keys": build_keys, "probe_keys": probe_keys,
                "join_kind": self.kind, "residual": self.residual,
                "build_on_left": build_on_left,
                "pad_width": len(self.right.schema),
                "schema": self.schema, "tracked": tracked}))
        if not tasks:
            return
        payloads = self.context.make_pool().run(tasks)
        self.build_partition_stats = [
            {"partition": index, "rows": payload[-1],
             "seconds": payload[-2]}
            for index, payload in enumerate(payloads)]
        yield from _merge_row_payloads(payloads, True,
                                       len(self.schema))


class BatchInstrumented(BatchOperator, ex.Instrumented):
    """Per-batch accounting for EXPLAIN ANALYZE.

    The row :class:`executor.Instrumented` charges a timer pair per
    ``next()``; wrapping batch operators that way would re-impose the
    per-tuple overhead the batch engine removed. This variant charges
    the clock once per *batch* and counts rows by batch length.
    """

    def __init__(self, inner: ex.Operator,
                 timer: Callable[[], float]) -> None:
        ex.Instrumented.__init__(self, inner, timer)
        self.batches_produced = 0

    def batches(self) -> Iterator[RowBatch]:
        self.loops += 1
        timer = self.timer
        started = timer()
        iterator = batches_of(self.inner)
        self.total_seconds += timer() - started
        while True:
            started = timer()
            try:
                batch = next(iterator)
            except StopIteration:
                self.total_seconds += timer() - started
                return
            self.total_seconds += timer() - started
            self.rows += len(batch)
            self.batches_produced += 1
            yield batch
