"""Batch-at-a-time (vectorized) query operators.

The row executor in :mod:`repro.db.executor` moves one ``(values,
lineage)`` pair per Python ``next()`` call; at 100k rows the
interpreter dispatch around those calls dominates evaluation. The
operators here move a :class:`RowBatch` — column vectors plus a
parallel *annotation vector* of lineages — so per-tuple overhead is
paid once per ~:data:`BATCH_SIZE` rows, and expressions evaluate as
compiled list comprehensions over whole columns (see the batch
compilation section of :mod:`repro.db.expressions`).

Design rules:

* Every batch operator subclasses its row twin (``BatchFilter`` is a
  ``Filter``) so isinstance-based planner/EXPLAIN logic keeps working,
  and inherits a row-iterator compatibility shim from
  :class:`BatchOperator` — anything that consumes annotated rows
  (MVCC read views, the monitor's lineage capture, INSERT ... SELECT)
  sees the exact row stream the tuple engine produced.
* Lineage annotations ride in a vector parallel to the columns;
  ``None`` means "no annotations anywhere in this batch" so the
  non-provenance path never allocates per-row frozensets.
* A selection vector (``sel``) defers gathering after filters: a
  filter only refines ``sel``, the next gathering operator pays the
  copy once.
* Row-only operators (NestedLoopJoin, MaterializedSource) compose
  into batch plans through :func:`batches_of`, which chunks any
  annotated-row iterator into batches.

Fallbacks to full row-at-a-time planning: the
``interpreted_expressions()`` escape hatch and the
:func:`row_at_a_time_plans` context manager (used by benchmarks to
measure the tuple engine on identical plans).
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import islice
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.db import executor as ex
from repro.db import expressions as exprs
from repro.db.provtypes import EMPTY_LINEAGE, lineage_singletons
from repro.db.sql import ast
from repro.errors import ExecutionError

# Rows per batch: large enough to amortize per-batch dispatch, small
# enough that column vectors stay cache-friendly Python lists.
BATCH_SIZE = 1024


# Benchmarks flip this off to run the tuple-at-a-time engine on the
# same queries; production code never touches it.
_VECTORIZED = True


@contextmanager
def row_at_a_time_plans():
    """Force plans built inside the block onto the row executor."""
    global _VECTORIZED
    previous = _VECTORIZED
    _VECTORIZED = False
    try:
        yield
    finally:
        _VECTORIZED = previous


def vectorized_enabled() -> bool:
    """Should the planner emit batch operators right now?

    Interpreted-expressions mode implies row plans: the escape hatch
    promises the *interpreter* evaluates every expression, and batch
    operators would re-route evaluation through vector closures.
    """
    return _VECTORIZED and not exprs._INTERPRET_ONLY


class RowBatch:
    """A batch of rows in columnar layout with lineage annotations.

    ``columns`` holds one list per schema column, each ``count`` long.
    ``lineages`` is a parallel list of frozensets, or None when no row
    in the batch carries lineage. ``sel`` is a selection vector of row
    positions still alive (None = all). ``row_major`` optionally
    caches the same rows as tuples (producers that already hold row
    tuples — scans, join output — pass them so :meth:`rows` skips
    re-transposing). Consumers must treat the vectors as immutable —
    operators share them across batches.
    """

    __slots__ = ("columns", "count", "lineages", "sel", "row_major")

    def __init__(self, columns: list, count: int,
                 lineages: list | None = None,
                 sel: Any = None,
                 row_major: list | None = None) -> None:
        self.columns = columns
        self.count = count
        self.lineages = lineages
        self.sel = sel
        self.row_major = row_major

    def selection(self) -> Any:
        return range(self.count) if self.sel is None else self.sel

    def __len__(self) -> int:
        return self.count if self.sel is None else len(self.sel)

    def rows(self) -> list[tuple]:
        """Selected rows as plain tuples (the row-shim's currency).

        Transposition runs through ``zip(*columns)`` — per-row
        ``tuple(generator)`` calls were the single hottest line of the
        batch engine before this.
        """
        row_major = self.row_major
        sel = self.sel
        if row_major is not None:
            if sel is None:
                return row_major
            return [row_major[index] for index in sel]
        columns = self.columns
        if not columns:
            return [()] * (self.count if sel is None else len(sel))
        if sel is None:
            return list(zip(*columns))
        if len(columns) == 1:
            column = columns[0]
            return [(column[index],) for index in sel]
        return list(zip(*[[column[index] for index in sel]
                          for column in columns]))

    def gathered_lineages(self) -> list | None:
        """Annotation vector aligned with :meth:`rows`, or None."""
        if self.lineages is None:
            return None
        if self.sel is None:
            return self.lineages
        return [self.lineages[index] for index in self.sel]

    def picked_lineages(self) -> list:
        """Like :meth:`gathered_lineages` with the empty-lineage fill."""
        gathered = self.gathered_lineages()
        if gathered is None:
            return [EMPTY_LINEAGE] * len(self)
        return gathered

    def slice(self, start: int, stop: int) -> "RowBatch":
        """A sub-range of the selected rows (shares the vectors)."""
        sel = self.selection()
        return RowBatch(self.columns, self.count, self.lineages,
                        sel[start:stop], self.row_major)


class BatchOperator(ex.Operator):
    """Base for batch operators: a stream of :class:`RowBatch`.

    The inherited iteration protocol is a compatibility shim — row
    consumers iterate ``(values, lineage)`` exactly as before, decoded
    from the batch stream.
    """

    def batches(self) -> Iterator[RowBatch]:  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self) -> Iterator[ex.Annotated]:
        for batch in self.batches():
            lineages = batch.gathered_lineages()
            if lineages is None:
                for values in batch.rows():
                    yield values, EMPTY_LINEAGE
            else:
                yield from zip(batch.rows(), lineages)


def _chunk_annotated(iterator: Iterator[ex.Annotated],
                     width: int) -> Iterator[RowBatch]:
    """Chunk an annotated-row iterator into dense batches."""
    while True:
        chunk = list(islice(iterator, BATCH_SIZE))
        if not chunk:
            return
        columns = (list(zip(*(values for values, _ in chunk)))
                   if width else [])
        lineages: list | None = [lineage for _, lineage in chunk]
        if not any(lineages):
            lineages = None
        yield RowBatch(columns, len(chunk), lineages, None)


def batches_of(operator: ex.Operator) -> Iterator[RowBatch]:
    """Batch view of any operator — the bridge for row-only operators
    (NestedLoopJoin, MaterializedSource) inside batch plans."""
    if isinstance(operator, BatchOperator):
        return operator.batches()
    return _chunk_annotated(iter(operator), len(operator.schema))


class BatchSeqScan(BatchOperator, ex.SeqScan):
    """Columnar full scan.

    Under an MVCC read view (or with lineage tracking) rows flow
    through ``scan_versions()`` so snapshot visibility and version
    stamps match the row scan exactly; the committed-latest
    no-lineage case slices the heap directly.

    ``needed_columns`` (set by a fused parent whose expressions are
    all pure-vector) prunes materialization: only those column
    vectors are built, the rest stay None placeholders that the
    kernel provably never reads.
    """

    needed_columns: set[int] | None = None

    def batches(self) -> Iterator[RowBatch]:
        table = self.table
        width = len(self.schema)
        if self.track_lineage or table.active_view() is not None:
            name = table.name
            iterator = table.scan_versions()
            while True:
                chunk = list(islice(iterator, BATCH_SIZE))
                if not chunk:
                    return
                chunk_rows = [values for _, values, _ in chunk]
                columns = list(zip(*chunk_rows)) if width else []
                lineages = (lineage_singletons(
                    name, [(rowid, version) for rowid, _, version in chunk])
                    if self.track_lineage else None)
                yield RowBatch(columns, len(chunk), lineages, None,
                               chunk_rows)
            return
        heap = table.rows
        rowids = sorted(heap)
        if rowids == list(heap):
            # rowids are allocated monotonically, so the heap dict is
            # almost always already in rowid order — skip 1 dict
            # lookup per row
            ordered = list(heap.values())
        else:
            ordered = [heap[rowid] for rowid in rowids]
        needed = self.needed_columns
        if needed is not None and len(needed) < width:
            getters = [(index, itemgetter(index))
                       for index in sorted(needed)]
            for start in range(0, len(ordered), BATCH_SIZE):
                chunk_rows = ordered[start:start + BATCH_SIZE]
                columns: list = [None] * width
                for index, getter in getters:
                    columns[index] = list(map(getter, chunk_rows))
                yield RowBatch(columns, len(chunk_rows), None, None,
                               chunk_rows)
            return
        for start in range(0, len(ordered), BATCH_SIZE):
            chunk_rows = ordered[start:start + BATCH_SIZE]
            columns = list(zip(*chunk_rows)) if width else []
            yield RowBatch(columns, len(chunk_rows), None, None,
                           chunk_rows)


class BatchIndexScan(BatchOperator, ex.IndexScan):
    """Columnar index lookup: chunks the row IndexScan's output (the
    probe itself is already set-at-a-time over the hash buckets)."""

    def batches(self) -> Iterator[RowBatch]:
        return _chunk_annotated(ex.IndexScan.__iter__(self),
                                len(self.schema))


class FusedScanFilterProject(BatchOperator):
    """Scan→Filter→Project fused into one compiled per-batch kernel.

    The planner grows this node bottom-up: predicates pushed onto a
    scan join the fusion via :meth:`add_predicate`, and the final
    SELECT-list projection lands via :meth:`absorb_projections`. Each
    mutation recompiles the kernel (plan-time cost only). One batch
    then takes a single call: refine the selection through every
    predicate, gather the projected columns, pick the surviving
    lineage annotations.
    """

    def __init__(self, child: BatchOperator,
                 predicates: list | None = None,
                 projections: list | None = None,
                 output_schema=None) -> None:
        self.child = child
        self.predicates = list(predicates or [])
        self.projections: list | None = None
        self.schema = child.schema
        if projections is not None:
            self.absorb_projections(projections, output_schema)
        else:
            self._recompile()

    def _recompile(self) -> None:
        self._kernel = exprs.compile_fused_kernel(
            self.predicates, self.projections, self.child.schema)

    def add_predicate(self, predicate: ast.Expression) -> None:
        if self.projections is not None:
            raise ExecutionError(
                "cannot add a predicate below an absorbed projection")
        self.predicates.append(predicate)
        self._recompile()

    def absorb_projections(self, projections: list,
                           output_schema) -> None:
        self.projections = list(projections)
        self.schema = output_schema
        self._recompile()
        # with a dense output this node is the scan's sole consumer;
        # if every expression is pure-vector the scan can skip
        # materializing the columns nothing reads
        if isinstance(self.child, BatchSeqScan):
            self.child.needed_columns = exprs.vector_safe_columns(
                self.predicates + self.projections, self.child.schema)

    def batches(self) -> Iterator[RowBatch]:
        kernel = self._kernel
        dense = self.projections is not None
        for batch in batches_of(self.child):
            out_columns, out_sel, picked = kernel(batch.columns,
                                                  batch.selection())
            if not picked:
                continue
            if dense:
                lineages = (None if batch.lineages is None else
                            [batch.lineages[index] for index in picked])
                yield RowBatch(out_columns, len(picked), lineages, None)
            else:
                yield RowBatch(out_columns, batch.count, batch.lineages,
                               out_sel, batch.row_major)


class BatchFilter(BatchOperator, ex.Filter):
    """Selection-vector filter: refines ``sel``, copies nothing."""

    def __init__(self, child: ex.Operator,
                 predicate: ast.Expression) -> None:
        ex.Filter.__init__(self, child, predicate)
        self._refine = exprs.compile_batch_predicate(predicate,
                                                     child.schema)

    def batches(self) -> Iterator[RowBatch]:
        refine = self._refine
        for batch in batches_of(self.child):
            sel = refine(batch.columns, batch.selection())
            if sel:
                yield RowBatch(batch.columns, batch.count,
                               batch.lineages, sel, batch.row_major)


class BatchProject(BatchOperator, ex.Project):
    """Vectorized projection: one compiled closure per output column."""

    def __init__(self, child: ex.Operator,
                 output_expressions: list, output_schema) -> None:
        ex.Project.__init__(self, child, output_expressions,
                            output_schema)
        self._batch_fns = [
            exprs.compile_batch_expression(expression, child.schema)
            for expression in output_expressions]

    def batches(self) -> Iterator[RowBatch]:
        batch_fns = self._batch_fns
        for batch in batches_of(self.child):
            sel = batch.selection()
            if not sel:
                continue
            columns = [fn(batch.columns, sel) for fn in batch_fns]
            yield RowBatch(columns, len(sel),
                           batch.gathered_lineages(), None)


def _dense_batch(rows: list[tuple], lineages: list | None,
                 width: int) -> RowBatch:
    """Dense batch from produced row tuples (zip-transposed)."""
    columns = list(zip(*rows)) if width else []
    return RowBatch(columns, len(rows),
                    lineages if lineages and any(lineages) else None,
                    None, rows)


class BatchHashJoin(BatchOperator, ex.HashJoin):
    """Hash join probing one batch at a time.

    The build side is consumed through its batch stream and hashed as
    row tuples (probe output is row-shaped anyway); the probe side
    evaluates its key expressions as column vectors, so the per-row
    probe loop touches only the hash lookup. NULL keys are never
    inserted into the build table, so probe lookups need no NULL
    checks — a missing key and a NULL key both miss. When neither
    input carries lineage annotations the probe loop skips all
    per-row lineage bookkeeping (no frozenset unions)."""

    def __init__(self, left: ex.Operator, right: ex.Operator,
                 left_keys: list, right_keys: list,
                 kind: str = "inner", residual=None,
                 build_side: str = "right") -> None:
        ex.HashJoin.__init__(self, left, right, left_keys, right_keys,
                             kind, residual, build_side)
        self._left_batch_keys = [
            exprs.compile_batch_expression(expression, left.schema)
            for expression in left_keys]
        self._right_batch_keys = [
            exprs.compile_batch_expression(expression, right.schema)
            for expression in right_keys]
        self._prune_side(left, left_keys)
        self._prune_side(right, right_keys)

    @staticmethod
    def _prune_side(side: ex.Operator, keys: list) -> None:
        """Prune an input scan down to the vector-read columns.

        The join touches its inputs two ways: key expressions as
        column vectors, and whole rows via ``rows()`` — which a scan
        serves from its ``row_major`` cache without reading column
        vectors. So the scan only needs to materialize the key (and
        pushed-predicate) columns, provided every such expression is
        pure-vector."""
        expressions = list(keys)
        if (isinstance(side, FusedScanFilterProject)
                and side.projections is None):
            expressions += side.predicates
            side = side.child
        if isinstance(side, BatchSeqScan):
            side.needed_columns = exprs.vector_safe_columns(
                expressions, side.schema)

    def _build_table(self, side: ex.Operator,
                     key_fns: list) -> tuple[dict, bool]:
        build: dict[Any, list] = {}
        tracked = False
        single = len(key_fns) == 1
        for batch in batches_of(side):
            sel = batch.selection()
            if not sel:
                continue
            rows = batch.rows()
            lineages = batch.gathered_lineages()
            if lineages is None:
                lineages = [EMPTY_LINEAGE] * len(rows)
            else:
                tracked = True
            key_vectors = [fn(batch.columns, sel) for fn in key_fns]
            if single:
                for position, key in enumerate(key_vectors[0]):
                    if key is None:
                        continue  # NULL never equi-joins
                    build.setdefault(key, []).append(
                        (rows[position], lineages[position]))
            else:
                for position, key in enumerate(zip(*key_vectors)):
                    if any(part is None for part in key):
                        continue
                    build.setdefault(key, []).append(
                        (rows[position], lineages[position]))
        return build, tracked

    def batches(self) -> Iterator[RowBatch]:
        build_on_left = self.build_side == "left"
        build, tracking = self._build_table(
            self.left if build_on_left else self.right,
            self._left_batch_keys if build_on_left
            else self._right_batch_keys)
        if not build and self.kind == "inner":
            return
        probe = self.right if build_on_left else self.left
        probe_key_fns = (self._right_batch_keys if build_on_left
                         else self._left_batch_keys)
        single = len(probe_key_fns) == 1
        residual = self._residual_fn
        left_outer = self.kind == "left"
        null_pad = (None,) * len(self.right.schema)
        width = len(self.schema)
        empty = EMPTY_LINEAGE
        lookup = build.get
        out_rows: list[tuple] = []
        out_lineages: list = []
        for batch in batches_of(probe):
            sel = batch.selection()
            if not sel:
                continue
            rows = batch.rows()
            key_vectors = [fn(batch.columns, sel) for fn in probe_key_fns]
            keys = key_vectors[0] if single else list(zip(*key_vectors))
            lineages = batch.gathered_lineages()
            if lineages is not None and not tracking:
                tracking = True
                out_lineages.extend([empty] * len(out_rows))
            append = out_rows.append
            if not tracking:
                if left_outer:
                    for position, key in enumerate(keys):
                        values = rows[position]
                        produced = False
                        matches = lookup(key)
                        if matches:
                            for other_values, _lin in matches:
                                joined = values + other_values
                                if residual is None or residual(joined):
                                    produced = True
                                    append(joined)
                        if not produced:
                            append(values + null_pad)
                else:
                    for values, key in zip(rows, keys):
                        matches = lookup(key)
                        if matches:
                            for other_values, _lin in matches:
                                joined = (other_values + values
                                          if build_on_left
                                          else values + other_values)
                                if residual is None or residual(joined):
                                    append(joined)
            else:
                append_lineage = out_lineages.append
                for position, key in enumerate(keys):
                    produced = False
                    matches = lookup(key)
                    if matches:
                        values = rows[position]
                        lineage = (lineages[position]
                                   if lineages is not None else empty)
                        for other_values, other_lineage in matches:
                            if build_on_left:
                                joined = other_values + values
                                merged = other_lineage | lineage
                            else:
                                joined = values + other_values
                                merged = lineage | other_lineage
                            if (residual is not None
                                    and not residual(joined)):
                                continue
                            produced = True
                            append(joined)
                            append_lineage(merged)
                    if left_outer and not produced:
                        append(rows[position] + null_pad)
                        append_lineage(lineages[position]
                                       if lineages is not None else empty)
            if len(out_rows) >= BATCH_SIZE:
                yield _dense_batch(out_rows,
                                   out_lineages if tracking else None,
                                   width)
                out_rows, out_lineages = [], []
        if out_rows:
            yield _dense_batch(out_rows,
                               out_lineages if tracking else None, width)


class BatchGroupAggregate(BatchOperator, ex.GroupAggregate):
    """Hash aggregation fed whole batches.

    Each batch is partitioned by group key once; every accumulator
    then consumes its group's value vector through ``add_many`` —
    preserving left-to-right fold order within the group so float
    aggregates stay bit-identical to row execution.
    """

    def __init__(self, child: ex.Operator, group_expressions: list,
                 output_expressions: list, output_schema,
                 having=None) -> None:
        ex.GroupAggregate.__init__(self, child, group_expressions,
                                   output_expressions, output_schema,
                                   having)
        self._group_batch_fns = [
            exprs.compile_batch_expression(expression, child.schema)
            for expression in group_expressions]
        # COUNT(*) reads nothing per row — its accumulator only needs
        # the group's cardinality, so it is fed the position bucket
        self._input_batch_fns = [
            None if (len(call.args) == 1
                     and isinstance(call.args[0], ast.Star))
            else exprs.compile_batch_expression(call.args[0],
                                                child.schema)
            for call in self.aggregate_calls]

    def batches(self) -> Iterator[RowBatch]:
        group_fns = self._group_batch_fns
        input_fns = self._input_batch_fns
        single_key = len(group_fns) == 1
        groups: dict[tuple, dict[str, Any]] = {}
        order: list[tuple] = []
        for batch in batches_of(self.child):
            sel = batch.selection()
            size = len(sel)
            if size == 0:
                continue
            if group_fns:
                key_vectors = [fn(batch.columns, sel)
                               for fn in group_fns]
                # scalar partition keys in the common single-key case;
                # the groups dict still keys on tuples (finalize reads
                # group values back out of the key)
                keys = (key_vectors[0] if single_key
                        else list(zip(*key_vectors)))
                positions: dict[Any, list[int]] = {}
                bucket_of = positions.get
                for position, key in enumerate(keys):
                    bucket = bucket_of(key)
                    if bucket is None:
                        positions[key] = [position]
                    else:
                        bucket.append(position)
            else:
                positions = {(): list(range(size))}
            input_vectors = [None if fn is None
                             else fn(batch.columns, sel)
                             for fn in input_fns]
            lineages = batch.gathered_lineages()
            sel_list = sel if type(sel) is list else list(sel)
            row_major = batch.row_major
            for key, bucket in positions.items():
                group_key = ((key,) if group_fns and single_key
                             else key)
                state = groups.get(group_key)
                if state is None:
                    first = sel_list[bucket[0]]
                    representative = (
                        row_major[first] if row_major is not None
                        else tuple(column[first]
                                   for column in batch.columns))
                    state = self._new_state(representative)
                    groups[group_key] = state
                    order.append(group_key)
                whole = len(bucket) == size
                for vector, accumulator in zip(input_vectors,
                                               state["accumulators"]):
                    if vector is None:
                        fed = bucket  # COUNT(*): only len() matters
                    else:
                        fed = vector if whole else [vector[position]
                                                    for position in bucket]
                    accumulator.add_many(fed)
                if lineages is not None:
                    group_lineage = state["lineage"]
                    for position in bucket:
                        group_lineage.update(lineages[position])
        self._ensure_global_group(groups, order)
        return _chunk_annotated(self._finalize(groups, order),
                                len(self.schema))


def _concat_batches(batches: Iterator[RowBatch],
                    width: int) -> tuple[list, list | None, int]:
    """Materialize a batch stream into dense full-length columns."""
    columns: list[list] = [[] for _ in range(width)]
    lineages: list = []
    tracking = False
    count = 0
    for batch in batches:
        sel = batch.selection()
        size = len(sel)
        if size == 0:
            continue
        for out, column in zip(columns, batch.columns):
            out.extend(exprs._gather(column, sel))
        gathered = batch.gathered_lineages()
        if gathered is not None:
            if not tracking:
                lineages.extend([EMPTY_LINEAGE] * count)
                tracking = True
            lineages.extend(gathered)
        elif tracking:
            lineages.extend([EMPTY_LINEAGE] * size)
        count += size
    return columns, (lineages if tracking else None), count


def _rechunk(columns: list, lineages: list | None,
             count: int) -> Iterator[RowBatch]:
    """Emit dense full-length columns as BATCH_SIZE slices."""
    for start in range(0, count, BATCH_SIZE):
        stop = min(start + BATCH_SIZE, count)
        yield RowBatch(
            [column[start:stop] for column in columns], stop - start,
            lineages[start:stop] if lineages is not None else None,
            None)


class BatchSort(BatchOperator, ex.Sort):
    """Materializing sort over concatenated column vectors.

    Sorting permutes an index vector (:func:`executor.ordered_indices`
    — the sort keys are already columns, no per-row key extraction)
    and gathers each column once.
    """

    def batches(self) -> Iterator[RowBatch]:
        columns, lineages, count = _concat_batches(
            batches_of(self.child), len(self.schema))
        if count == 0:
            return
        if count > 1 and self.keys:
            key_columns = [(columns[index], descending)
                           for index, descending in self.keys]
            order = ex.ordered_indices(count, key_columns)
            columns = [[column[index] for index in order]
                       for column in columns]
            if lineages is not None:
                lineages = [lineages[index] for index in order]
        yield from _rechunk(columns, lineages, count)


class BatchDistinct(BatchOperator, ex.Distinct):
    """Duplicate collapse over batches, merging lineages as the row
    operator does (first occurrence wins, annotations union)."""

    def batches(self) -> Iterator[RowBatch]:
        seen: dict[tuple, list] = {}
        order: list[tuple] = []
        key_width = self.key_width
        for batch in batches_of(self.child):
            rows = batch.rows()
            lineages = batch.gathered_lineages()
            for position, values in enumerate(rows):
                key = (values if key_width is None
                       else values[:key_width])
                entry = seen.get(key)
                if entry is None:
                    seen[key] = [values,
                                 set() if lineages is None
                                 else set(lineages[position])]
                    order.append(key)
                elif lineages is not None:
                    entry[1].update(lineages[position])
        return _chunk_annotated(
            ((seen[key][0], frozenset(seen[key][1])) for key in order),
            len(self.schema))


class BatchLimit(BatchOperator, ex.Limit):
    """LIMIT/OFFSET by slicing selection vectors."""

    def batches(self) -> Iterator[RowBatch]:
        to_skip = self.offset
        remaining = self.limit
        for batch in batches_of(self.child):
            size = len(batch)
            if size == 0:
                continue
            start = 0
            if to_skip:
                if to_skip >= size:
                    to_skip -= size
                    continue
                start = to_skip
                to_skip = 0
            stop = size
            if remaining is not None:
                if remaining <= 0:
                    return
                stop = min(stop, start + remaining)
            piece = batch.slice(start, stop)
            if remaining is not None:
                remaining -= len(piece)
            yield piece
            if remaining is not None and remaining <= 0:
                return


class BatchStripColumns(BatchOperator, ex.StripColumns):
    """Drop hidden trailing columns — a vector-list slice per batch."""

    def batches(self) -> Iterator[RowBatch]:
        width = self.visible_width
        for batch in batches_of(self.child):
            yield RowBatch(batch.columns[:width], batch.count,
                           batch.lineages, batch.sel)


class BatchUnion(BatchOperator, ex.Union):
    """UNION ALL: concatenates the children's batch streams."""

    def batches(self) -> Iterator[RowBatch]:
        for child in self.children:
            yield from batches_of(child)


class BatchInstrumented(BatchOperator, ex.Instrumented):
    """Per-batch accounting for EXPLAIN ANALYZE.

    The row :class:`executor.Instrumented` charges a timer pair per
    ``next()``; wrapping batch operators that way would re-impose the
    per-tuple overhead the batch engine removed. This variant charges
    the clock once per *batch* and counts rows by batch length.
    """

    def __init__(self, inner: ex.Operator,
                 timer: Callable[[], float]) -> None:
        ex.Instrumented.__init__(self, inner, timer)
        self.batches_produced = 0

    def batches(self) -> Iterator[RowBatch]:
        self.loops += 1
        timer = self.timer
        started = timer()
        iterator = batches_of(self.inner)
        self.total_seconds += timer() - started
        while True:
            started = timer()
            try:
                batch = next(iterator)
            except StopIteration:
                self.total_seconds += timer() - started
                return
            self.total_seconds += timer() - started
            self.rows += len(batch)
            self.batches_produced += 1
            yield batch
