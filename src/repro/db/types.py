"""SQL value types, columns, schemas, and rows.

Rows are plain Python tuples for speed; a :class:`Schema` gives each
position a name and a :class:`SQLType` and supports qualified lookup
(``lineitem.l_suppkey``) for join results.

SQL ``NULL`` is represented by Python ``None`` throughout the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import CatalogError, TypeError_


class SQLType(enum.Enum):
    """The SQL types supported by the engine."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"  # stored as ISO 'YYYY-MM-DD' strings

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        """Map a SQL type name (including common aliases) to a SQLType."""
        normalized = name.strip().lower()
        # strip parameterised lengths such as varchar(25) / decimal(15,2)
        if "(" in normalized:
            normalized = normalized[: normalized.index("(")].strip()
        alias = _TYPE_ALIASES.get(normalized)
        if alias is None:
            raise TypeError_(f"unknown SQL type: {name!r}")
        return alias


_TYPE_ALIASES: dict[str, SQLType] = {
    "int": SQLType.INTEGER,
    "integer": SQLType.INTEGER,
    "bigint": SQLType.INTEGER,
    "smallint": SQLType.INTEGER,
    "serial": SQLType.INTEGER,
    "float": SQLType.FLOAT,
    "real": SQLType.FLOAT,
    "double": SQLType.FLOAT,
    "double precision": SQLType.FLOAT,
    "decimal": SQLType.FLOAT,
    "numeric": SQLType.FLOAT,
    "text": SQLType.TEXT,
    "varchar": SQLType.TEXT,
    "char": SQLType.TEXT,
    "character": SQLType.TEXT,
    "character varying": SQLType.TEXT,
    "boolean": SQLType.BOOLEAN,
    "bool": SQLType.BOOLEAN,
    "date": SQLType.DATE,
}


def coerce_value(value: Any, sql_type: SQLType) -> Any:
    """Coerce a Python value into the canonical representation of a type.

    ``None`` (SQL NULL) passes through every type unchanged. Raises
    :class:`repro.errors.TypeError_` when the value cannot represent the
    target type.
    """
    if value is None:
        return None
    try:
        if sql_type is SQLType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not value.is_integer():
                raise TypeError_(f"cannot store {value!r} in INTEGER")
            return int(value)
        if sql_type is SQLType.FLOAT:
            if isinstance(value, bool):
                raise TypeError_("cannot store boolean in FLOAT")
            return float(value)
        if sql_type is SQLType.TEXT:
            if isinstance(value, (int, float, bool)):
                raise TypeError_(f"cannot store {value!r} in TEXT")
            return str(value)
        if sql_type is SQLType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.lower() in ("true", "false", "t", "f"):
                return value.lower() in ("true", "t")
            raise TypeError_(f"cannot store {value!r} in BOOLEAN")
        if sql_type is SQLType.DATE:
            text = str(value)
            _validate_date(text)
            return text
    except TypeError_:
        raise
    except (ValueError, TypeError) as exc:
        raise TypeError_(f"cannot coerce {value!r} to {sql_type.value}") from exc
    raise TypeError_(f"unhandled SQL type {sql_type!r}")  # pragma: no cover


def _validate_date(text: str) -> None:
    """Check 'YYYY-MM-DD' shape without pulling in datetime parsing cost."""
    parts = text.split("-")
    ok = (
        len(parts) == 3
        and len(parts[0]) == 4
        and len(parts[1]) == 2
        and len(parts[2]) == 2
        and all(part.isdigit() for part in parts)
        and 1 <= int(parts[1]) <= 12
        and 1 <= int(parts[2]) <= 31
    )
    if not ok:
        raise TypeError_(f"invalid DATE literal: {text!r}")


def value_from_csv(text: str, sql_type: SQLType) -> Any:
    """Parse a CSV cell back into a typed value (empty string == NULL)."""
    if text == "":
        return None
    if sql_type is SQLType.INTEGER:
        return int(text)
    if sql_type is SQLType.FLOAT:
        return float(text)
    if sql_type is SQLType.BOOLEAN:
        return text.lower() in ("true", "t", "1")
    return text


def value_to_csv(value: Any) -> str:
    """Render a typed value as a CSV cell (NULL == empty string)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class Column:
    """A named, typed column in a table schema."""

    name: str
    sql_type: SQLType
    not_null: bool = False
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


class Schema:
    """An ordered list of columns with (optionally qualified) name lookup.

    Base-table schemas carry unqualified names; derived schemas (join
    results, subquery outputs) may qualify names with a table alias. Name
    resolution accepts either form and reports ambiguity.
    """

    def __init__(self, columns: Sequence[Column],
                 qualifiers: Sequence[str | None] | None = None) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        if qualifiers is None:
            qualifiers = [None] * len(self.columns)
        if len(qualifiers) != len(self.columns):
            raise CatalogError("qualifier list does not match column list")
        self.qualifiers: tuple[str | None, ...] = tuple(qualifiers)
        self._by_name: dict[str, list[int]] = {}
        self._by_qualified: dict[tuple[str, str], int] = {}
        for index, (column, qualifier) in enumerate(zip(self.columns, qualifiers)):
            self._by_name.setdefault(column.name.lower(), []).append(index)
            if qualifier is not None:
                key = (qualifier.lower(), column.name.lower())
                if key in self._by_qualified:
                    raise CatalogError(
                        f"duplicate qualified column {qualifier}.{column.name}")
                self._by_qualified[key] = index

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, *named_types: tuple[str, SQLType]) -> "Schema":
        """Shorthand: ``Schema.of(("id", SQLType.INTEGER), ...)``."""
        return cls([Column(name, sql_type) for name, sql_type in named_types])

    def qualified(self, qualifier: str) -> "Schema":
        """Return a copy where every column is qualified by ``qualifier``."""
        return Schema(self.columns, [qualifier] * len(self.columns))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (join output)."""
        return Schema(self.columns + other.columns,
                      self.qualifiers + other.qualifiers)

    # -- lookup ----------------------------------------------------------------

    def index_of(self, name: str, qualifier: str | None = None) -> int:
        """Resolve a column reference to a row position.

        Raises :class:`CatalogError` for unknown or ambiguous names.
        """
        if qualifier is not None:
            key = (qualifier.lower(), name.lower())
            index = self._by_qualified.get(key)
            if index is None:
                raise CatalogError(f"unknown column {qualifier}.{name}")
            return index
        indexes = self._by_name.get(name.lower())
        if not indexes:
            raise CatalogError(f"unknown column {name}")
        if len(indexes) > 1:
            raise CatalogError(f"ambiguous column reference {name}")
        return indexes[0]

    def has_column(self, name: str, qualifier: str | None = None) -> bool:
        """True if the reference resolves to exactly one column."""
        try:
            self.index_of(name, qualifier)
            return True
        except CatalogError:
            return False

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def types(self) -> list[SQLType]:
        return [column.sql_type for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(
            f"{q + '.' if q else ''}{c.name} {c.sql_type.value}"
            for c, q in zip(self.columns, self.qualifiers))
        return f"Schema({cols})"


def coerce_row(values: Iterable[Any], schema: Schema) -> tuple[Any, ...]:
    """Coerce an iterable of raw values into a typed row for ``schema``.

    Enforces arity and NOT NULL constraints.
    """
    values = tuple(values)
    if len(values) != len(schema):
        raise TypeError_(
            f"row has {len(values)} values, schema expects {len(schema)}")
    out = []
    for value, column in zip(values, schema.columns):
        coerced = coerce_value(value, column.sql_type)
        if coerced is None and column.not_null:
            raise TypeError_(f"column {column.name} is NOT NULL")
        out.append(coerced)
    return tuple(out)
