"""Client/server wire protocol (the engine's "libpq").

All traffic between :class:`repro.db.client.DBClient` and
:class:`repro.db.server.DBServer` is a request/response exchange of
JSON-serializable frame dictionaries. Frames round-trip through
:func:`encode_frame` / :func:`decode_frame` on every call, so the
interposition layer (the LDV monitor and replayer) observes exactly the
bytes-on-the-wire view a real libpq interceptor would.

Frame types::

    connect      {frame, client_name, process_id, version}
    connected    {frame, connection_id, version[, limits]}
    query        {frame, connection_id, sql, provenance[, fetch]
                  [, token]}
    result       {frame, kind, columns, types, rows, lineages, rowcount,
                  written, written_lineage, deleted, source_tables,
                  stats, txn}
    error        {frame, error_type, message, transient, txn
                  [, retry_after]}
    close        {frame, connection_id}
    closed       {frame}

    prepare      {frame, connection_id, name, sql}
    prepared     {frame, name, param_count}
    bind-execute {frame, connection_id, name, params, provenance
                  [, fetch][, token]}
    deallocate   {frame, connection_id, name}
    deallocated  {frame, name}

    cursor       {frame, cursor_id, columns, types, rows, lineages,
                  done, source_tables, txn}
    fetch        {frame, connection_id, cursor_id, max_rows
                  [, position]}
    chunk        {frame, cursor_id, rows, lineages, done, txn}
    close-cursor {frame, connection_id, cursor_id}
    cursor-closed {frame, cursor_id}

    pipeline     {frame, connection_id, frames}
    pipeline-result {frame, frames}
    stats        {frame, connection_id}
    stats-result {frame, server, connection}

Version 2 of the protocol adds the prepared-statement, cursor,
pipeline, and stats families. ``connect`` carries the client's
version and ``connected`` echoes the negotiated one (the minimum of
both sides); version-1 recordings — whose ``connected`` frames lack
the field — still decode and replay, as do version-1 clients against
a version-2 server.

Transactions run over plain query frames (``BEGIN`` / ``COMMIT`` /
``ROLLBACK`` SQL); the server stamps every per-connection response
with ``txn`` (``"open"`` or ``"idle"``) so clients can track their
transaction state — including the server-side auto-rollback after a
``WriteConflictError``. ``result_from_wire`` ignores the field, so
frames recorded by older monitors still replay.

An error frame with ``transient`` set marks a failure the client may
safely retry (an injected wire fault, a failed fsync): the server
guarantees the statement had no durable effect. Clients with a
``RetryPolicy`` resend such requests with bounded backoff. A
``WriteConflictError`` frame is deliberately *not* flagged transient —
the failed transaction is gone, so the retry unit is the whole
transaction (:meth:`repro.db.client.DBClient.run_transaction`), never
the frame.

Resilience fields (still protocol version 2 — every field is optional
and ignored by older peers):

* ``token`` on query / bind-execute stamps a mutating statement with a
  globally-unique idempotency token. The engine's dedupe ledger makes
  resending the same token exactly-once: a retry whose original
  response frame was lost gets the recorded result back instead of
  re-executing (see :class:`repro.db.engine.IdempotencyLedger`).
* ``retry_after`` on error frames is the server's advisory backoff
  hint in seconds (admission-control sheds, drain rejections); clients
  fold it into their jittered retry delay.
* ``limits`` on connected advertises server caps (currently
  ``max_pipeline_depth`` and ``max_cursors``) so clients can chunk
  pipelines instead of being bounced.
* ``position`` on fetch is the count of rows the client has received
  so far; the server retains each cursor's last-served chunk and
  replays it when ``position`` shows the previous response was lost,
  making streamed fetches exactly-once too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.db.engine import StatementResult
from repro.db.provtypes import TupleRef
from repro.db.types import Column, Schema, SQLType
from repro.errors import ProtocolError

PROTOCOL_VERSION = 2


def _ref_to_wire(ref: TupleRef) -> list:
    return [ref.table, ref.rowid, ref.version]


def _ref_from_wire(data: list) -> TupleRef:
    return TupleRef(str(data[0]), int(data[1]), int(data[2]))


def _lineages_to_wire(lineages: list) -> list:
    """Wire form of the per-row lineage column.

    The no-provenance common case (every lineage empty — exactly what
    batch plans report via a ``None`` annotation vector) skips the
    per-row sort/encode entirely; the emitted JSON is byte-identical
    to the slow path.
    """
    if not any(lineages):
        return [[] for _ in lineages]
    return [sorted(_ref_to_wire(ref) for ref in lineage)
            for lineage in lineages]


def result_to_wire(result: StatementResult) -> dict[str, Any]:
    """Serialize a StatementResult into a ``result`` frame."""
    return {
        "frame": "result",
        "kind": result.kind,
        "columns": result.schema.column_names(),
        "types": [sql_type.value for sql_type in result.schema.types()],
        "rows": [list(row) for row in result.rows],
        "lineages": _lineages_to_wire(result.lineages),
        "rowcount": result.rowcount,
        "written": [_ref_to_wire(ref) for ref in result.written],
        "written_lineage": [
            [_ref_to_wire(ref), sorted(_ref_to_wire(dep) for dep in deps)]
            for ref, deps in result.written_lineage.items()],
        "deleted": [_ref_to_wire(ref) for ref in result.deleted],
        "source_tables": list(result.source_tables),
        "stats": result.stats,
    }


def result_from_wire(frame: dict[str, Any]) -> StatementResult:
    """Deserialize a ``result`` frame back into a StatementResult."""
    if frame.get("frame") != "result":
        raise ProtocolError(f"expected result frame, got {frame.get('frame')!r}")
    columns = [Column(name, SQLType(type_name))
               for name, type_name in zip(frame["columns"], frame["types"])]
    return StatementResult(
        kind=frame["kind"],
        schema=Schema(columns),
        rows=[tuple(row) for row in frame["rows"]],
        lineages=[frozenset(_ref_from_wire(item) for item in lineage)
                  for lineage in frame["lineages"]],
        rowcount=frame["rowcount"],
        written=[_ref_from_wire(item) for item in frame["written"]],
        written_lineage={
            _ref_from_wire(ref): frozenset(_ref_from_wire(dep)
                                           for dep in deps)
            for ref, deps in frame["written_lineage"]},
        deleted=[_ref_from_wire(item) for item in frame["deleted"]],
        source_tables=list(frame["source_tables"]),
        # absent in frames recorded by older monitors: default to empty
        stats=dict(frame.get("stats") or {}),
    )


def connect_frame(client_name: str, process_id: str) -> dict[str, Any]:
    return {"frame": "connect", "client_name": client_name,
            "process_id": process_id, "version": PROTOCOL_VERSION}


def connected_frame(connection_id: int,
                    version: int = PROTOCOL_VERSION,
                    limits: dict[str, Any] | None = None) -> dict[str, Any]:
    frame = {"frame": "connected", "connection_id": connection_id,
             "version": version}
    if limits:
        frame["limits"] = dict(limits)
    return frame


def query_frame(connection_id: int, sql: str,
                provenance: bool = False,
                fetch: int | None = None,
                token: str | None = None) -> dict[str, Any]:
    frame = {"frame": "query", "connection_id": connection_id,
             "sql": sql, "provenance": provenance}
    if fetch is not None:
        frame["fetch"] = fetch
    if token is not None:
        frame["token"] = token
    return frame


def prepare_frame(connection_id: int, name: str,
                  sql: str) -> dict[str, Any]:
    return {"frame": "prepare", "connection_id": connection_id,
            "name": name, "sql": sql}


def prepared_frame(name: str, param_count: int) -> dict[str, Any]:
    return {"frame": "prepared", "name": name,
            "param_count": param_count}


def bind_execute_frame(connection_id: int, name: str,
                       params: list | tuple = (),
                       provenance: bool = False,
                       fetch: int | None = None,
                       token: str | None = None) -> dict[str, Any]:
    frame = {"frame": "bind-execute", "connection_id": connection_id,
             "name": name, "params": list(params),
             "provenance": provenance}
    if fetch is not None:
        frame["fetch"] = fetch
    if token is not None:
        frame["token"] = token
    return frame


def deallocate_frame(connection_id: int, name: str) -> dict[str, Any]:
    return {"frame": "deallocate", "connection_id": connection_id,
            "name": name}


def deallocated_frame(name: str) -> dict[str, Any]:
    return {"frame": "deallocated", "name": name}


def cursor_frame(cursor_id: int, schema, rows: list, lineages: list,
                 done: bool, source_tables: list[str]) -> dict[str, Any]:
    """First response of a streamed execute: cursor id + first chunk."""
    return {
        "frame": "cursor",
        "cursor_id": cursor_id,
        "columns": schema.column_names(),
        "types": [sql_type.value for sql_type in schema.types()],
        "rows": [list(row) for row in rows],
        "lineages": _lineages_to_wire(lineages),
        "done": done,
        "source_tables": list(source_tables),
    }


def fetch_frame(connection_id: int, cursor_id: int,
                max_rows: int,
                position: int | None = None) -> dict[str, Any]:
    frame = {"frame": "fetch", "connection_id": connection_id,
             "cursor_id": cursor_id, "max_rows": max_rows}
    if position is not None:
        frame["position"] = position
    return frame


def chunk_frame(cursor_id: int, rows: list, lineages: list,
                done: bool) -> dict[str, Any]:
    return {"frame": "chunk", "cursor_id": cursor_id,
            "rows": [list(row) for row in rows],
            "lineages": _lineages_to_wire(lineages),
            "done": done}


def close_cursor_frame(connection_id: int,
                       cursor_id: int) -> dict[str, Any]:
    return {"frame": "close-cursor", "connection_id": connection_id,
            "cursor_id": cursor_id}


def cursor_closed_frame(cursor_id: int) -> dict[str, Any]:
    return {"frame": "cursor-closed", "cursor_id": cursor_id}


def pipeline_frame(connection_id: int,
                   frames: list[dict]) -> dict[str, Any]:
    """Envelope batching N request frames into one exchange."""
    return {"frame": "pipeline", "connection_id": connection_id,
            "frames": list(frames)}


def pipeline_result_frame(frames: list[dict]) -> dict[str, Any]:
    return {"frame": "pipeline-result", "frames": list(frames)}


def stats_frame(connection_id: int) -> dict[str, Any]:
    return {"frame": "stats", "connection_id": connection_id}


def error_frame(error_type: str, message: str,
                transient: bool = False,
                retry_after: float | None = None) -> dict[str, Any]:
    frame = {"frame": "error", "error_type": error_type,
             "message": message}
    if transient:
        frame["transient"] = True
    if retry_after is not None:
        frame["retry_after"] = retry_after
    return frame


def is_transient_error(frame: dict[str, Any]) -> bool:
    """True for an error frame a client may retry."""
    return bool(frame.get("frame") == "error" and frame.get("transient"))


def close_frame(connection_id: int) -> dict[str, Any]:
    return {"frame": "close", "connection_id": connection_id}


def closed_frame() -> dict[str, Any]:
    return {"frame": "closed"}


def encode_frame(frame: dict[str, Any]) -> str:
    """Serialize a frame to its wire representation (JSON text)."""
    return json.dumps(frame, separators=(",", ":"))


def decode_frame(text: str) -> dict[str, Any]:
    """Parse a wire representation back into a frame dictionary."""
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict) or "frame" not in frame:
        raise ProtocolError("frame is missing its type tag")
    return frame
