"""Shared provenance value types for the relational engine.

Kept in a leaf module so the executor, the provenance rewriter, and the
LDV monitor can all import :class:`TupleRef` without circular imports.
"""

from __future__ import annotations

from typing import Any, NamedTuple


class TupleRef(NamedTuple):
    """A stable reference to one *version* of one stored tuple.

    ``table`` is the lower-cased table name, ``rowid`` the storage-level
    row identifier (the paper's ``prov_rowid``) and ``version`` the
    logical tick of the statement that last wrote the row (the paper's
    ``prov_v``). Two references differing only in ``version`` denote two
    versions of the same tuple, which the combined provenance model
    treats as distinct entities.
    """

    table: str
    rowid: int
    version: int

    def display(self) -> str:
        return f"{self.table}[{self.rowid}@v{self.version}]"


Lineage = frozenset  # alias: a lineage is a frozenset[TupleRef]

EMPTY_LINEAGE: frozenset[TupleRef] = frozenset()


def lineage_singletons(table: str,
                       rowid_versions: list[tuple[int, int]]
                       ) -> list[frozenset[TupleRef]]:
    """Annotation vector for one scanned batch: each entry is the
    singleton lineage of the corresponding ``(rowid, version)``."""
    return [frozenset((TupleRef(table, rowid, version),))
            for rowid, version in rowid_versions]


class ResultRow(NamedTuple):
    """One row of a query result with optional lineage annotation."""

    values: tuple[Any, ...]
    lineage: frozenset[TupleRef]
