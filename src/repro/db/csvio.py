"""CSV import/export of typed row sets.

Used by three consumers:

* ``COPY table FROM/TO`` in the engine,
* the LDV packager, which writes the *relevant tuple versions* of each
  table into ``db/restore/<table>.csv`` (server-included packages) and
  recorded query results into ``replay/results/`` (server-excluded),
* the replayer, which bulk-loads those files back.

NULL is encoded as the empty string; TEXT cells are always quoted by
the csv module when needed, so an empty *quoted* string would be
ambiguous — the engine never stores the empty string as distinct from
NULL in these files, a documented limitation shared with PostgreSQL's
default text COPY format.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Iterable, Iterator

from repro.db.types import Schema, value_from_csv, value_to_csv
from repro.errors import ExecutionError


def format_rows(rows: Iterable[tuple], schema: Schema,
                header: bool = False, delimiter: str = ",") -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    if header:
        writer.writerow(schema.column_names())
    for row in rows:
        writer.writerow([value_to_csv(value) for value in row])
    return buffer.getvalue()


def parse_rows(text: str, schema: Schema,
               header: bool = False, delimiter: str = ",") -> list[tuple]:
    """Parse CSV text into typed rows for ``schema``."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    types = schema.types()
    rows: list[tuple] = []
    first = True
    for cells in reader:
        if not cells:
            continue
        if first and header:
            first = False
            continue
        first = False
        if len(cells) != len(types):
            raise ExecutionError(
                f"CSV row has {len(cells)} cells, schema expects {len(types)}")
        rows.append(tuple(value_from_csv(cell, sql_type)
                          for cell, sql_type in zip(cells, types)))
    return rows


def format_versioned_rows(rows: Iterable[tuple[int, int, tuple]],
                          schema: Schema) -> str:
    """Render ``(rowid, version, values)`` triples — the package restore
    format, which must preserve storage identity across replay."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for rowid, version, values in rows:
        cells = [str(rowid), str(version)]
        cells.extend(value_to_csv(value) for value in values)
        writer.writerow(cells)
    return buffer.getvalue()


def parse_versioned_rows(text: str,
                         schema: Schema) -> Iterator[tuple[int, int, tuple]]:
    """Parse the package restore format back into triples."""
    types = schema.types()
    for cells in csv.reader(io.StringIO(text)):
        if not cells:
            continue
        if len(cells) != len(types) + 2:
            raise ExecutionError(
                f"restore row has {len(cells)} cells, expected "
                f"{len(types) + 2}")
        rowid = int(cells[0])
        version = int(cells[1])
        values = tuple(value_from_csv(cell, sql_type)
                       for cell, sql_type in zip(cells[2:], types))
        yield rowid, version, values
