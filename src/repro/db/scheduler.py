"""Deterministic interleaving scheduler for concurrency tests.

Concurrency bugs are schedule bugs, so the test-kit controls the
schedule instead of sleeping and hoping. A *script* is a generator
function that yields SQL strings; the scheduler runs one script per
session and advances exactly one session per step, following either a
**named schedule** you spell out (``"a a b a b b"``) or a seeded
**bounded exploration** of every schedule reachable from the scripts.
Statements are atomic in this engine, so a schedule — the order in
which whole statements interleave — captures every behavior concurrent
sessions can produce, and each run is exactly reproducible.

Each yield receives a :class:`StepResult` back, so scripts can branch
on results and assert mid-flight::

    def transfer():
        result = yield "SELECT balance FROM accounts WHERE id = 1"
        balance = result.rows[0][0]
        yield "BEGIN"
        yield f"UPDATE accounts SET balance = {balance - 10} WHERE id = 1"
        result = yield "COMMIT"
        if result.error is not None:
            return "conflicted"
        return "committed"

    scheduler = InterleavingScheduler(setup, {"a": transfer, "b": transfer})
    outcome = scheduler.run("a a a b b a b b")
    assert outcome.value("a") == "committed"

``setup()`` builds a fresh :class:`~repro.db.engine.Database` per run,
so every schedule starts from identical state. By default scripts talk
through a real :class:`~repro.db.server.DBServer` + one
:class:`~repro.db.client.DBClient` per session (the wire path under
test); ``through_wire=False`` drives engine sessions directly.

Database errors (conflicts included) are captured into the
:class:`StepResult` — the script decides whether they are expected. A
:class:`repro.faults.SimulatedCrash` is *not* captured: like a real
``kill -9`` it aborts the run and propagates to the test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, Optional

from repro.db.client import DBClient, RetryPolicy
from repro.db.engine import Database, StatementResult
from repro.db.server import DBServer
from repro.errors import DatabaseError, ReproError

Script = Callable[[], Generator[str, "StepResult", Any]]


class SchedulerError(ReproError):
    """A schedule was invalid (unknown session, stepping a finished
    script, or a run that left scripts unfinished)."""


@dataclass
class StepResult:
    """What one scheduled statement produced, handed back to the
    script at its ``yield``."""

    sql: str
    result: Optional[StatementResult] = None
    error: Optional[DatabaseError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def rows(self) -> list[tuple]:
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result.rows


@dataclass
class SessionTrace:
    """Everything one scripted session did during a run."""

    name: str
    steps: list[StepResult] = field(default_factory=list)
    value: Any = None  # the script's return value
    finished: bool = False


class RunOutcome:
    """The result of running one complete schedule."""

    def __init__(self, schedule: tuple[str, ...],
                 traces: Dict[str, SessionTrace],
                 database: Database) -> None:
        self.schedule = schedule
        self.traces = traces
        self.database = database

    def value(self, name: str) -> Any:
        return self.traces[name].value

    def steps(self, name: str) -> list[StepResult]:
        return self.traces[name].steps

    def errors(self) -> list[tuple[str, int, DatabaseError]]:
        """Every captured statement error as (session, step, error)."""
        return [(name, index, step.error)
                for name, trace in sorted(self.traces.items())
                for index, step in enumerate(trace.steps)
                if step.error is not None]

    def query(self, sql: str) -> list[tuple]:
        """Inspect the final committed state (fresh default session)."""
        return self.database.query(sql)


class _LiveSession:
    """One script mid-run: its generator, its connection, and the SQL
    it is waiting to execute next."""

    def __init__(self, name: str, generator: Generator,
                 execute: Callable[[str], StatementResult],
                 trace: SessionTrace) -> None:
        self.name = name
        self.generator = generator
        self.execute = execute
        self.trace = trace
        self.pending: Optional[str] = None

    def start(self) -> None:
        try:
            self.pending = next(self.generator)
        except StopIteration as stop:
            self._finish(stop.value)

    def step(self) -> None:
        assert self.pending is not None
        step = StepResult(sql=self.pending)
        try:
            step.result = self.execute(self.pending)
        except DatabaseError as exc:
            step.error = exc
        self.trace.steps.append(step)
        try:
            self.pending = self.generator.send(step)
        except StopIteration as stop:
            self._finish(stop.value)

    def _finish(self, value: Any) -> None:
        self.pending = None
        self.trace.finished = True
        self.trace.value = value


class InterleavingScheduler:
    """Runs N scripted sessions under exact, reproducible schedules."""

    def __init__(self, setup: Callable[[], Database],
                 scripts: Dict[str, Script],
                 through_wire: bool = True,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if not scripts:
            raise SchedulerError("at least one script is required")
        self.setup = setup
        self.scripts = dict(scripts)
        self.through_wire = through_wire
        self.retry_policy = retry_policy

    # -- running one schedule ---------------------------------------------------

    def run(self, schedule: str | Iterable[str]) -> RunOutcome:
        """Run one named schedule to completion.

        The schedule lists session names in execution order (space
        separated, or any iterable of names) and must consume every
        script exactly: running a finished script, or leaving one
        unfinished, is a :class:`SchedulerError` — a test asserting an
        interleaving should mean exactly that interleaving.
        """
        steps = self._parse(schedule)
        outcome, live = self._run_steps(steps)
        unfinished = sorted(name for name, session in live.items()
                            if not session.trace.finished)
        if unfinished:
            raise SchedulerError(
                f"schedule {' '.join(steps)!r} left sessions "
                f"{unfinished} unfinished")
        return outcome

    def explore(self, limit: Optional[int] = None,
                seed: Optional[int] = None) -> list[RunOutcome]:
        """Depth-first enumeration of complete schedules.

        Every run restarts from a fresh ``setup()`` database, so each
        explored schedule is independent and deterministic. ``seed``
        shuffles the branch order (useful with ``limit`` to sample the
        schedule space instead of always walking the same corner);
        without a seed the order is lexicographic by session name.
        """
        rng = random.Random(seed) if seed is not None else None
        outcomes: list[RunOutcome] = []
        stack: list[tuple[str, ...]] = [()]
        while stack and (limit is None or len(outcomes) < limit):
            prefix = stack.pop()
            outcome, live = self._run_steps(prefix)
            runnable = sorted(name for name, session in live.items()
                              if session.pending is not None)
            if not runnable:
                unfinished = sorted(
                    name for name, session in live.items()
                    if not session.trace.finished)
                if unfinished:  # pragma: no cover - defensive
                    raise SchedulerError(
                        f"sessions {unfinished} can never finish")
                outcomes.append(outcome)
                continue
            if rng is not None:
                rng.shuffle(runnable)
            for name in reversed(runnable):
                stack.append(prefix + (name,))
        return outcomes

    # -- internals --------------------------------------------------------------

    def _parse(self, schedule: str | Iterable[str]) -> tuple[str, ...]:
        names = (tuple(schedule.split())
                 if isinstance(schedule, str) else tuple(schedule))
        for name in names:
            if name not in self.scripts:
                raise SchedulerError(f"unknown session {name!r} in "
                                     f"schedule (have "
                                     f"{sorted(self.scripts)})")
        return names

    def _run_steps(self, steps: tuple[str, ...]
                   ) -> tuple[RunOutcome, Dict[str, _LiveSession]]:
        database = self.setup()
        live: Dict[str, _LiveSession] = {}
        traces: Dict[str, SessionTrace] = {}
        if self.through_wire:
            server = DBServer(database)
            transport = server.transport()
            for name in sorted(self.scripts):
                client = DBClient(transport, client_name=name,
                                  process_id=name,
                                  retry_policy=self.retry_policy)
                client.connect()
                traces[name] = SessionTrace(name)
                live[name] = _LiveSession(name, self.scripts[name](),
                                          client.execute, traces[name])
        else:
            for name in sorted(self.scripts):
                session = database.create_session(name)
                traces[name] = SessionTrace(name)
                live[name] = _LiveSession(
                    name, self.scripts[name](),
                    lambda sql, _s=session: database.execute(
                        sql, session=_s),
                    traces[name])
        for name in sorted(live):
            live[name].start()
        for name in steps:
            session = live[name]
            if session.pending is None:
                raise SchedulerError(
                    f"session {name!r} has already finished")
            session.step()
        return RunOutcome(steps, traces, database), live
