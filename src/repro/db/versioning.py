"""Tuple versioning bookkeeping (paper Section VII-B).

The LDV prototype extends each relation accessed by the application with
four attributes: ``prov_rowid`` (stable row identifier), ``prov_v``
(timestamp of the latest update), and ``prov_usedby`` / ``prov_p``
(identifiers of the query and process that used the tuple). In this
engine, ``prov_rowid`` and ``prov_v`` are native storage metadata
(:mod:`repro.db.storage`); this module supplies the remaining half:

* :meth:`VersionManager.enable` — "extend the schema" of a table the
  first time the application touches it. As in the paper, this costs a
  pass over the whole table (every tuple must be stamped), which is the
  cold-cache overhead visible in the First Select bar of Fig 7a.
* :meth:`VersionManager.mark_used` — stamp accessed tuple versions with
  the query/process that read them, the steady-state per-query
  versioning overhead of subsequent selects.
"""

from __future__ import annotations

from typing import Iterable

from repro.db.engine import Database
from repro.db.provtypes import TupleRef


class VersionManager:
    """Maintains the ``prov_usedby`` / ``prov_p`` marks for one database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._enabled_tables: set[str] = set()
        # (table, rowid, version) -> set of (query_id, process_id)
        self._used_by: dict[TupleRef, set[tuple[str, str]]] = {}

    @property
    def enabled_tables(self) -> frozenset[str]:
        return frozenset(self._enabled_tables)

    def is_enabled(self, table: str) -> bool:
        return table.lower() in self._enabled_tables

    def enable(self, table: str) -> int:
        """Provenance-enable a table on first access.

        Returns the number of tuples stamped (0 if already enabled).
        The full-table pass mirrors the prototype's schema-extension
        cost on first access.
        """
        key = table.lower()
        if key in self._enabled_tables:
            return 0
        heap = self.database.catalog.get_table(key)
        stamped = 0
        # scan_versions pairs each row with the version the ambient
        # read view sees — reading heap.versions directly would mix a
        # snapshot's rows with committed-latest stamps
        for rowid, _values, version in heap.scan_versions():
            ref = TupleRef(key, rowid, version)
            self._used_by.setdefault(ref, set())
            stamped += 1
        self._enabled_tables.add(key)
        return stamped

    def ensure_enabled(self, tables: Iterable[str]) -> int:
        """Enable every table in ``tables``; returns total tuples stamped."""
        return sum(self.enable(table) for table in tables)

    def mark_used(self, refs: Iterable[TupleRef], query_id: str,
                  process_id: str) -> int:
        """Stamp tuple versions as used by (query, process).

        Returns the number of stamps applied.
        """
        stamp = (query_id, process_id)
        count = 0
        for ref in refs:
            self._used_by.setdefault(ref, set()).add(stamp)
            count += 1
        return count

    def used_by(self, ref: TupleRef) -> frozenset[tuple[str, str]]:
        """The (query, process) stamps recorded for a tuple version."""
        return frozenset(self._used_by.get(ref, ()))

    def all_used_refs(self) -> list[TupleRef]:
        """Every tuple version that carries at least one usage stamp."""
        return sorted(ref for ref, stamps in self._used_by.items() if stamps)
