"""Table statistics for the cost-based planner.

``ANALYZE [table]`` scans the committed heap and records, per column:
the number of distinct values (NDV), the fraction of NULLs, min/max,
and an equi-depth histogram over the non-NULL values. The planner uses
these to estimate filter selectivities and join cardinalities — which
in turn drive join ordering, hash-join build sides, and the
index-probe-vs-scan decision (see :mod:`repro.db.planner`).

Statistics live on the catalog (never inside the ``.tbl`` files, whose
byte format is part of the packaging contract) and are durable: each
ANALYZE appends an ``{"op": "analyze"}`` WAL record, and checkpoints
persist the current stats in the meta file.

Everything here is advisory. A stale or missing statistic can only
produce a slower plan, never a wrong answer — plans of any shape
produce identical rows and lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.db.sql import ast

# equi-depth histogram resolution: enough to see a 1-in-32 skew
# without bloating the meta file
HISTOGRAM_BUCKETS = 32

# default selectivities when a column has no statistics (classic
# System R guesses)
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_BOOL_SELECTIVITY = 0.5

# cost units, relative to visiting one row in a sequential scan (1.0):
# one hash-index lookup, and one row produced through index buckets
# (random access + per-bucket bookkeeping)
INDEX_PROBE_COST = 4.0
INDEX_ROW_COST = 2.0
# visiting one row of a resident scan-cache segment: no heap walk, no
# transpose — just replaying prebuilt column vectors. With the 4x/2x
# index unit costs above, a warm cached scan undercuts an index probe
# until the probe matches under ~an eighth of the table, which is the
# planner flip the scan cache is meant to buy
CACHED_SCAN_ROW_COST = 0.25


@dataclass
class ColumnStats:
    """Distribution summary of one column's committed values."""

    ndv: int = 0
    null_fraction: float = 0.0
    min_value: Any = None
    max_value: Any = None
    # equi-depth bucket boundaries over the sorted non-NULL values:
    # len(histogram) == buckets + 1; each (histogram[i], histogram[i+1]]
    # holds an equal share of the rows
    histogram: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "ndv": self.ndv,
            "null_fraction": self.null_fraction,
            "min": self.min_value,
            "max": self.max_value,
            "histogram": list(self.histogram),
        }

    @classmethod
    def from_dict(cls, dumped: dict) -> "ColumnStats":
        return cls(
            ndv=int(dumped.get("ndv", 0)),
            null_fraction=float(dumped.get("null_fraction", 0.0)),
            min_value=dumped.get("min"),
            max_value=dumped.get("max"),
            histogram=list(dumped.get("histogram", [])),
        )

    # -- selectivity ----------------------------------------------------------

    def eq_selectivity(self, value: Any = None) -> float:
        """Fraction of rows with ``column = value`` (uniform over the
        distinct values; a known out-of-range value estimates to near
        zero)."""
        if self.ndv <= 0:
            return DEFAULT_EQ_SELECTIVITY
        if value is not None and self.min_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.0
            except TypeError:
                pass
        return _clamp((1.0 - self.null_fraction) / self.ndv)

    def fraction_below(self, value: Any) -> Optional[float]:
        """Fraction of *non-NULL* rows strictly below ``value`` by the
        equi-depth histogram, or None when the histogram cannot answer
        (no histogram, or an incomparable value)."""
        bounds = self.histogram
        if len(bounds) < 2:
            return None
        try:
            if value <= bounds[0]:
                return 0.0
            if value > bounds[-1]:
                return 1.0
        except TypeError:
            return None
        buckets = len(bounds) - 1
        for index in range(buckets):
            low, high = bounds[index], bounds[index + 1]
            if value <= high:
                covered = index / buckets
                width = 1.0 / buckets
                if (isinstance(value, (int, float))
                        and isinstance(low, (int, float))
                        and isinstance(high, (int, float))
                        and high > low):
                    covered += width * (value - low) / (high - low)
                else:
                    covered += width / 2.0  # mid-bucket for text keys
                return _clamp(covered)
        return 1.0

    def range_selectivity(self, op: str, value: Any) -> float:
        """Fraction of rows with ``column <op> value`` for an
        inequality operator."""
        below = self.fraction_below(value)
        if below is None:
            return DEFAULT_RANGE_SELECTIVITY
        eq = self.eq_selectivity(value)
        if op in ("<", "<="):
            fraction = below + (eq if op == "<=" else 0.0)
        else:
            fraction = 1.0 - below
            if op == ">":
                fraction -= eq
        return _clamp(fraction * (1.0 - self.null_fraction))


@dataclass
class TableStats:
    """ANALYZE output for one table: row count + per-column stats."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def to_dict(self) -> dict:
        return {
            "row_count": self.row_count,
            "columns": {name: stats.to_dict()
                        for name, stats in sorted(self.columns.items())},
        }

    @classmethod
    def from_dict(cls, dumped: dict) -> "TableStats":
        return cls(
            row_count=int(dumped.get("row_count", 0)),
            columns={name: ColumnStats.from_dict(column)
                     for name, column in dumped.get("columns", {}).items()},
        )


def compute_table_stats(table) -> TableStats:
    """One full scan of a table's committed rows → :class:`TableStats`.

    Runs outside any transaction (ANALYZE autocommits, like DDL), so
    ``table.scan()`` reads the committed heap directly.
    """
    columns = [column.name.lower() for column in table.schema.columns]
    values_per_column: list[list] = [[] for _ in columns]
    nulls = [0] * len(columns)
    row_count = 0
    for _rowid, values in table.scan():
        row_count += 1
        for index, value in enumerate(values):
            if value is None:
                nulls[index] += 1
            else:
                values_per_column[index].append(value)
    stats = TableStats(row_count=row_count)
    for index, name in enumerate(columns):
        stats.columns[name] = _column_stats(values_per_column[index],
                                            nulls[index], row_count)
    return stats


def _column_stats(values: list, null_count: int,
                  row_count: int) -> ColumnStats:
    column = ColumnStats(
        ndv=len(set(values)),
        null_fraction=(null_count / row_count) if row_count else 0.0,
    )
    if not values:
        return column
    try:
        ordered = sorted(values)
    except TypeError:
        # mixed uncomparable values: keep NDV/null fraction, skip the
        # order statistics
        return column
    column.min_value = ordered[0]
    column.max_value = ordered[-1]
    count = len(ordered)
    buckets = min(HISTOGRAM_BUCKETS, max(column.ndv, 1))
    column.histogram = [ordered[0]] + [
        ordered[min((index * count) // buckets, count - 1)]
        for index in range(1, buckets)] + [ordered[-1]]
    return column


# ---------------------------------------------------------------------------
# Predicate selectivity
# ---------------------------------------------------------------------------

# type alias: maps a ColumnRef to that column's stats (None if the
# planner cannot resolve the reference to an analyzed base table)
ColumnResolver = Callable[[ast.ColumnRef], Optional[ColumnStats]]


def _literal_value(expression: ast.Expression):
    """The constant value of a literal, or None for anything else
    (parameters bind at execution time, so their value is unknown at
    plan time)."""
    if isinstance(expression, ast.Literal):
        return expression.value
    return None


def conjunct_selectivity(conjunct: ast.Expression,
                         resolve: ColumnResolver) -> float:
    """Estimated fraction of rows satisfying one predicate.

    Column references resolve through ``resolve``; unresolvable or
    exotic shapes fall back to the System R defaults. The result is
    always in [0, 1] — a misestimate changes only plan quality.
    """
    if isinstance(conjunct, ast.BinaryOp):
        op = conjunct.op
        if op == "and":
            return _clamp(conjunct_selectivity(conjunct.left, resolve)
                          * conjunct_selectivity(conjunct.right, resolve))
        if op == "or":
            left = conjunct_selectivity(conjunct.left, resolve)
            right = conjunct_selectivity(conjunct.right, resolve)
            return _clamp(left + right - left * right)
        if op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return _comparison_selectivity(conjunct, resolve)
        return DEFAULT_BOOL_SELECTIVITY
    if isinstance(conjunct, ast.UnaryOp) and conjunct.op == "not":
        return _clamp(1.0 - conjunct_selectivity(conjunct.operand,
                                                 resolve))
    if isinstance(conjunct, ast.Between):
        low = ast.BinaryOp(">=", conjunct.operand, conjunct.low)
        high = ast.BinaryOp("<=", conjunct.operand, conjunct.high)
        selectivity = (_comparison_selectivity(low, resolve)
                       + _comparison_selectivity(high, resolve) - 1.0)
        result = _clamp(selectivity)
        if conjunct.negated:
            result = _clamp(1.0 - result)
        return result
    if isinstance(conjunct, ast.InList):
        return _in_list_selectivity(conjunct, resolve)
    if isinstance(conjunct, ast.IsNull):
        stats = (resolve(conjunct.operand)
                 if isinstance(conjunct.operand, ast.ColumnRef) else None)
        null_fraction = (stats.null_fraction if stats is not None
                         else DEFAULT_EQ_SELECTIVITY)
        return _clamp(1.0 - null_fraction if conjunct.negated
                      else null_fraction)
    if isinstance(conjunct, ast.Like):
        selectivity = DEFAULT_LIKE_SELECTIVITY
        return _clamp(1.0 - selectivity if conjunct.negated
                      else selectivity)
    return DEFAULT_BOOL_SELECTIVITY


def _comparison_selectivity(conjunct: ast.BinaryOp,
                            resolve: ColumnResolver) -> float:
    column, other = conjunct.left, conjunct.right
    op = conjunct.op
    if not isinstance(column, ast.ColumnRef):
        column, other = other, column
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if not isinstance(column, ast.ColumnRef):
        return DEFAULT_BOOL_SELECTIVITY
    stats = resolve(column)
    if isinstance(other, ast.ColumnRef):
        # same-source column = column: 1/max ndv when both are known
        other_stats = resolve(other)
        if (op == "=" and stats is not None and other_stats is not None
                and stats.ndv > 0 and other_stats.ndv > 0):
            return _clamp(1.0 / max(stats.ndv, other_stats.ndv))
        return (DEFAULT_EQ_SELECTIVITY if op == "="
                else DEFAULT_RANGE_SELECTIVITY)
    value = _literal_value(other)
    if op == "=":
        if stats is None:
            return DEFAULT_EQ_SELECTIVITY
        return stats.eq_selectivity(value)
    if op in ("<>", "!="):
        if stats is None:
            return _clamp(1.0 - DEFAULT_EQ_SELECTIVITY)
        return _clamp((1.0 - stats.null_fraction)
                      - stats.eq_selectivity(value))
    if stats is None or value is None:
        return DEFAULT_RANGE_SELECTIVITY
    return stats.range_selectivity(op, value)


def _in_list_selectivity(conjunct: ast.InList,
                         resolve: ColumnResolver) -> float:
    stats = (resolve(conjunct.operand)
             if isinstance(conjunct.operand, ast.ColumnRef) else None)
    # NULL items can only make the predicate UNKNOWN, never TRUE, so
    # they contribute nothing; parameters are unknown single probes
    literal_values = set()
    unknown_probes = 0
    for item in conjunct.items:
        if isinstance(item, ast.Literal):
            if item.value is not None:
                literal_values.add(item.value)
        else:
            unknown_probes += 1
    if stats is None:
        selectivity = _clamp((len(literal_values) + unknown_probes)
                             * DEFAULT_EQ_SELECTIVITY)
    else:
        selectivity = _clamp(
            sum(stats.eq_selectivity(value) for value in literal_values)
            + unknown_probes * stats.eq_selectivity())
    if conjunct.negated:
        return _clamp(1.0 - selectivity)
    return selectivity


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def parallel_input_estimate(scan, stats: Optional[TableStats] = None
                            ) -> float:
    """Estimated rows a partition-parallel placement would read.

    Preference order: the per-node ``est_rows`` the planner stamped
    from conjunct selectivities, the table's ANALYZE row count, then
    the session-visible row count (overlay-aware, like every other
    cost input). Shared by every parallel placement gate — gather,
    parallel sort, parallel hash-join build — so they all price their
    inputs identically.
    """
    estimate = getattr(scan, "est_rows", None)
    if estimate is not None:
        return float(estimate)
    if stats is not None and stats.row_count:
        return float(stats.row_count)
    return float(scan.table.visible_row_count())
