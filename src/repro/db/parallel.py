"""Partition-parallel execution: worker pools and exchange planning.

The vectorized pipeline (``repro.db.vector``) is single-threaded, and
the GIL makes in-process threads useless for CPU-bound scans. This
module supplies the process layer under the ``Gather`` operators:

* :class:`ForkPool` — one forked child per partition. ``fork`` gives
  every worker a copy-on-write snapshot of the whole engine (heaps,
  compiled kernels, the ambient MVCC read view), which sidesteps the
  fact that compiled expression closures are not picklable: nothing is
  shipped *to* a worker, only pickled results come back through a
  pipe. Children exit with ``os._exit`` so they never run the parent's
  cleanup handlers, and the parent reaps every child it forked — on
  success, on worker crash, and on parent-side errors alike.
* :class:`InProcessPool` — the deterministic twin used by the parity
  and property test suites: same thunks, same merge path, no
  processes. Injecting it makes partition/merge logic testable with
  plain stack traces and coverage.

Both pools run read-only thunks. Parallel plans are only ever built
for SELECT pipelines, so a worker never writes WAL records, never
flushes tables, and never mutates shared state the parent observes —
the fork boundary is a read-only snapshot handoff by construction.

MVCC correctness: the gather operator captures the session's ambient
:class:`~repro.db.mvcc.ReadView` before dispatching and each thunk
re-installs it, so a worker scans exactly the snapshot the serial plan
would have scanned (fork already copies the view and the overlay data
it points at; re-installing makes the handoff explicit and keeps the
in-process pool honest).
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Callable

from repro.errors import WorkerCrashError

Thunk = Callable[[], Any]

# Parallel plans only pay off once the scan dominates plan overhead;
# below this many estimated input rows the planner stays serial.
DEFAULT_MIN_ROWS = 10_000


class InProcessPool:
    """Deterministic pool: runs every thunk in this process, in order.

    ``child_hook`` (if given) runs before each thunk with the
    partition index — the chaos tests use it to inject failures at
    exact partitions in both pool implementations.
    """

    def __init__(self, child_hook: Callable[[int], None] | None = None
                 ) -> None:
        self.child_hook = child_hook

    def run(self, thunks: list[Thunk]) -> list[Any]:
        results = []
        for index, thunk in enumerate(thunks):
            if self.child_hook is not None:
                self.child_hook(index)
            results.append(thunk())
        return results


class ForkPool:
    """One forked worker process per thunk, results over pipes.

    Wire format per pipe: an 8-byte little-endian length followed by a
    pickled ``(ok, value)`` pair — ``(True, result)`` or ``(False,
    exception)``. A worker that dies before completing its frame (the
    chaos campaigns kill them mid-scan) surfaces as
    :class:`WorkerCrashError` in the parent *after* every child has
    been reaped, so no zombies or pipe fds outlive the statement.
    """

    def __init__(self, child_hook: Callable[[int], None] | None = None
                 ) -> None:
        self.child_hook = child_hook
        # pids of the most recent run, for reap assertions in tests
        self.last_pids: list[int] = []

    def run(self, thunks: list[Thunk]) -> list[Any]:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return InProcessPool(self.child_hook).run(thunks)
        children: list[tuple[int, int, int]] = []  # (pid, read_fd, index)
        results: list[Any] = [None] * len(thunks)
        crashed: list[int] = []
        worker_error: BaseException | None = None
        self.last_pids = []
        try:
            for index, thunk in enumerate(thunks):
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:  # pragma: no cover - forked child
                    os.close(read_fd)
                    self._child_main(write_fd, index, thunk)
                os.close(write_fd)
                children.append((pid, read_fd, index))
                self.last_pids.append(pid)
            for _pid, read_fd, index in children:
                outcome = self._read_frame(read_fd)
                if outcome is None:
                    crashed.append(index)
                    continue
                ok, value = outcome
                if ok:
                    results[index] = value
                elif worker_error is None:
                    worker_error = value
        finally:
            for _pid, read_fd, _index in children:
                try:
                    os.close(read_fd)
                except OSError:  # pragma: no cover - already closed
                    pass
            for pid, _read_fd, _index in children:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:  # pragma: no cover
                    pass
        if crashed:
            raise WorkerCrashError(
                f"parallel worker(s) {crashed} died before returning "
                f"results; statement aborted, all workers reaped")
        if worker_error is not None:
            raise worker_error
        return results

    def _child_main(  # pragma: no cover - runs only in the forked child
            self, write_fd: int, index: int, thunk: Thunk) -> None:
        """Runs only in the forked child; never returns. Coverage
        tooling cannot observe post-fork lines (hence the pragma) —
        the behavior is pinned instead by the pool tests: result
        frames, exception frames, unpicklable-exception downgrade, and
        death-before-frame all have parent-side assertions."""
        status = 0
        try:
            if self.child_hook is not None:
                self.child_hook(index)
            payload = pickle.dumps((True, thunk()),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as error:
            status = 1
            try:
                payload = pickle.dumps((False, error),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                payload = pickle.dumps(
                    (False, WorkerCrashError(
                        f"worker {index} failed with unpicklable "
                        f"error: {error!r}")),
                    protocol=pickle.HIGHEST_PROTOCOL)
        try:
            os.write(write_fd, struct.pack("<Q", len(payload)))
            os.write(write_fd, payload)
            os.close(write_fd)
        except BaseException:  # pragma: no cover - parent died first
            status = 1
        os._exit(status)

    @staticmethod
    def _read_frame(read_fd: int) -> tuple[bool, Any] | None:
        """One length-prefixed frame, or None if the writer died."""
        def read_exact(wanted: int) -> bytes | None:
            pieces = []
            remaining = wanted
            while remaining:
                piece = os.read(read_fd, remaining)
                if not piece:
                    return None
                pieces.append(piece)
                remaining -= len(piece)
            return b"".join(pieces)

        header = read_exact(8)
        if header is None:
            return None
        (length,) = struct.unpack("<Q", header)
        payload = read_exact(length)
        if payload is None:
            return None
        return pickle.loads(payload)


def default_pool_factory() -> ForkPool:
    return ForkPool()


class ParallelContext:
    """Everything the planner and Gather operators need to go parallel:
    the worker count, how to obtain a pool, and the cost threshold
    below which plans stay serial. One context is built per planning
    call from the database's current settings; the plan-cache key
    carries the worker count so a cached plan can never execute under
    a different setting than it was planned for."""

    __slots__ = ("workers", "pool_factory", "min_rows")

    def __init__(self, workers: int,
                 pool_factory: Callable[[], Any] | None = None,
                 min_rows: int = DEFAULT_MIN_ROWS) -> None:
        self.workers = max(1, int(workers))
        self.pool_factory = (pool_factory if pool_factory is not None
                             else default_pool_factory)
        self.min_rows = min_rows

    def make_pool(self) -> Any:
        return self.pool_factory()


def split_ranges(items: list, parts: int) -> list[list]:
    """Split a list into at most ``parts`` contiguous chunks of nearly
    equal size (never an empty chunk). Order within and across chunks
    preserves the input order, so concatenating the chunks round-trips
    the list — the property the concat-mode gather relies on."""
    total = len(items)
    parts = max(1, min(parts, total if total else 1))
    base, extra = divmod(total, parts)
    chunks: list[list] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        chunks.append(items[start:start + size])
        start += size
    return chunks


def bucket_lists(buckets: list[list[int]], parts: int) -> list[list[int]]:
    """Distribute hash-partition buckets round-robin over ``parts``
    workers, each worker's rowid list re-sorted so every per-worker
    stream is rowid-ordered (the merge-mode gather k-way merges them
    back into exact global rowid order)."""
    parts = max(1, parts)
    assigned: list[list[int]] = [[] for _ in range(min(parts,
                                                       len(buckets)) or 1)]
    for index, bucket in enumerate(buckets):
        assigned[index % len(assigned)].extend(bucket)
    lists = [sorted(rowids) for rowids in assigned if rowids]
    return lists if lists else [[]]
