"""Partition-parallel execution: worker pools and exchange planning.

The vectorized pipeline (``repro.db.vector``) is single-threaded, and
the GIL makes in-process threads useless for CPU-bound scans. This
module supplies the process layer under the ``Gather`` operators:

* :class:`ForkPool` — one forked child per partition. ``fork`` gives
  every worker a copy-on-write snapshot of the whole engine (heaps,
  compiled kernels, the ambient MVCC read view), which sidesteps the
  fact that compiled expression closures are not picklable: nothing is
  shipped *to* a worker, only pickled results come back through a
  pipe. Children exit with ``os._exit`` so they never run the parent's
  cleanup handlers, and the parent reaps every child it forked — on
  success, on worker crash, and on parent-side errors alike.
* :class:`PersistentForkPool` — the production runtime: N long-lived
  resident workers forked once per ``set_parallel_workers(n)`` and
  reused across statements over a length-prefixed task/result frame
  protocol. Tasks (``repro.db.vector.PartitionTask``) pickle their
  AST-level pipeline spec through the task pipe; the worker rebuilds
  the operators against its own fork-time engine snapshot. The pool
  stamps the engine state (logical clock, catalog version, stats
  version, partition epoch) at fork time and recycles its residents
  whenever the stamp moves — so a resident never scans a stale heap —
  and respawns crashed workers so one bad statement cannot poison the
  pool.
* :class:`InProcessPool` — the deterministic twin used by the parity
  and property test suites: same thunks, same merge path, no
  processes. Injecting it makes partition/merge logic testable with
  plain stack traces and coverage.

Both pools run read-only thunks. Parallel plans are only ever built
for SELECT pipelines, so a worker never writes WAL records, never
flushes tables, and never mutates shared state the parent observes —
the fork boundary is a read-only snapshot handoff by construction.

MVCC correctness: the gather operator captures the session's ambient
:class:`~repro.db.mvcc.ReadView` before dispatching and each thunk
re-installs it, so a worker scans exactly the snapshot the serial plan
would have scanned (fork already copies the view and the overlay data
it points at; re-installing makes the handoff explicit and keeps the
in-process pool honest).
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import time
from typing import Any, Callable

from repro.errors import WorkerCrashError

Thunk = Callable[[], Any]

# Parallel plans only pay off once the scan dominates plan overhead;
# below this many estimated input rows the planner stays serial.
DEFAULT_MIN_ROWS = 10_000


class InProcessPool:
    """Deterministic pool: runs every thunk in this process, in order.

    ``child_hook`` (if given) runs before each thunk with the
    partition index — the chaos tests use it to inject failures at
    exact partitions in both pool implementations.
    """

    def __init__(self, child_hook: Callable[[int], None] | None = None
                 ) -> None:
        self.child_hook = child_hook

    def run(self, thunks: list[Thunk]) -> list[Any]:
        results = []
        for index, thunk in enumerate(thunks):
            if self.child_hook is not None:
                self.child_hook(index)
            results.append(thunk())
        return results


class ForkPool:
    """One forked worker process per thunk, results over pipes.

    Wire format per pipe: an 8-byte little-endian length followed by a
    pickled ``(ok, value)`` pair — ``(True, result)`` or ``(False,
    exception)``. A worker that dies before completing its frame (the
    chaos campaigns kill them mid-scan) surfaces as
    :class:`WorkerCrashError` in the parent *after* every child has
    been reaped, so no zombies or pipe fds outlive the statement.
    """

    def __init__(self, child_hook: Callable[[int], None] | None = None
                 ) -> None:
        self.child_hook = child_hook
        # pids of the most recent run, for reap assertions in tests
        self.last_pids: list[int] = []

    def run(self, thunks: list[Thunk]) -> list[Any]:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return InProcessPool(self.child_hook).run(thunks)
        children: list[tuple[int, int, int]] = []  # (pid, read_fd, index)
        results: list[Any] = [None] * len(thunks)
        crashed: list[int] = []
        worker_error: BaseException | None = None
        self.last_pids = []
        try:
            for index, thunk in enumerate(thunks):
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:  # pragma: no cover - forked child
                    os.close(read_fd)
                    self._child_main(write_fd, index, thunk)
                os.close(write_fd)
                children.append((pid, read_fd, index))
                self.last_pids.append(pid)
            for _pid, read_fd, index in children:
                outcome = self._read_frame(read_fd)
                if outcome is None:
                    crashed.append(index)
                    continue
                ok, value = outcome
                if ok:
                    results[index] = value
                elif worker_error is None:
                    worker_error = value
        finally:
            for _pid, read_fd, _index in children:
                try:
                    os.close(read_fd)
                except OSError:  # pragma: no cover - already closed
                    pass
            for pid, _read_fd, _index in children:
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:  # pragma: no cover
                    pass
        if crashed:
            raise WorkerCrashError(
                f"parallel worker(s) {crashed} died before returning "
                f"results; statement aborted, all workers reaped")
        if worker_error is not None:
            raise worker_error
        return results

    def _child_main(  # pragma: no cover - runs only in the forked child
            self, write_fd: int, index: int, thunk: Thunk) -> None:
        """Runs only in the forked child; never returns. Coverage
        tooling cannot observe post-fork lines (hence the pragma) —
        the behavior is pinned instead by the pool tests: result
        frames, exception frames, unpicklable-exception downgrade, and
        death-before-frame all have parent-side assertions."""
        status = 0
        try:
            if self.child_hook is not None:
                self.child_hook(index)
            payload = pickle.dumps((True, thunk()),
                                   protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as error:
            status = 1
            try:
                payload = pickle.dumps((False, error),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                payload = pickle.dumps(
                    (False, WorkerCrashError(
                        f"worker {index} failed with unpicklable "
                        f"error: {error!r}")),
                    protocol=pickle.HIGHEST_PROTOCOL)
        try:
            os.write(write_fd, struct.pack("<Q", len(payload)))
            os.write(write_fd, payload)
            os.close(write_fd)
        except BaseException:  # pragma: no cover - parent died first
            status = 1
        os._exit(status)

    @staticmethod
    def _read_frame(read_fd: int) -> tuple[bool, Any] | None:
        """One length-prefixed frame, or None if the writer died."""
        def read_exact(wanted: int) -> bytes | None:
            pieces = []
            remaining = wanted
            while remaining:
                piece = os.read(read_fd, remaining)
                if not piece:
                    return None
                pieces.append(piece)
                remaining -= len(piece)
            return b"".join(pieces)

        header = read_exact(8)
        if header is None:
            return None
        (length,) = struct.unpack("<Q", header)
        payload = read_exact(length)
        if payload is None:
            return None
        return pickle.loads(payload)


def default_pool_factory() -> ForkPool:
    return ForkPool()


# The engine of the resident worker process (set once, right after the
# persistent pool forks a worker). PartitionTask specs name tables by
# string on the way through the task pipe; this is what the worker
# resolves those names against.
_WORKER_ENGINE: Any = None


def current_worker_engine() -> Any:
    return _WORKER_ENGINE


# Parent-side pipe fds of every live resident in this process, across
# all pools and engines. A freshly forked resident closes every fd in
# here: a pipe write-end surviving in an unrelated fork would defeat
# the EOF-based shutdown and crash detection of the resident it
# belongs to (the reader only sees EOF once *all* write-ends close).
_RESIDENT_PARENT_FDS: set[int] = set()


class _Resident:
    """One live worker of a :class:`PersistentForkPool`."""

    __slots__ = ("pid", "task_w", "result_r")

    def __init__(self, pid: int, task_w: int, result_r: int) -> None:
        self.pid = pid
        self.task_w = task_w
        self.result_r = result_r


def _write_frame(fd: int, payload: bytes) -> None:
    os.write(fd, struct.pack("<Q", len(payload)))
    os.write(fd, payload)


def _read_frame_bytes(read_fd: int) -> bytes | None:
    """One length-prefixed raw frame, or None if the writer died."""
    def read_exact(wanted: int) -> bytes | None:
        pieces = []
        remaining = wanted
        while remaining:
            piece = os.read(read_fd, remaining)
            if not piece:
                return None
            pieces.append(piece)
            remaining -= len(piece)
        return b"".join(pieces)

    header = read_exact(8)
    if header is None:
        return None
    (length,) = struct.unpack("<Q", header)
    return read_exact(length)


class PersistentForkPool:
    """N long-lived forked workers reused across statements.

    Where :class:`ForkPool` pays a fork + COW snapshot per thunk per
    statement, this pool forks its residents once and then ships each
    statement's partition tasks through pipes: a length-prefixed
    pickled ``(task_index, task)`` frame per task, a length-prefixed
    pickled ``(ok, value)`` frame per result. Tasks must therefore be
    picklable — :class:`repro.db.vector.PartitionTask` ships an
    AST-level pipeline spec (tables collapse to names, the session's
    :class:`~repro.db.mvcc.ReadView` pickles whole) and the worker
    rebuilds the operators against its own engine copy. Unpicklable
    legacy thunks transparently fall back to one-shot
    :class:`ForkPool` semantics.

    Freshness: a resident's heap is a copy-on-write snapshot taken at
    fork time, so the pool records an engine *stamp* — ``(logical
    clock, catalog version, stats version, partition epoch)`` — when
    it spawns and recycles every resident the moment the live stamp
    differs (any committed write, DDL, ANALYZE, or repartition).
    Read-only workloads — the ones parallel plans serve — therefore
    fork exactly ``workers`` times per pool lifetime and reuse the
    residents for every subsequent statement.

    Crash semantics match :class:`ForkPool`: a resident that dies
    before completing its result frame surfaces as
    :class:`WorkerCrashError` after its pid is reaped; the dead slot
    respawns on the next dispatch, so the statement's retry (parallel
    plans are read-only, hence retry-safe) finds a healthy pool.
    """

    def __init__(self, workers: int, engine: Any = None,
                 child_hook: Callable[[int], None] | None = None) -> None:
        self.workers = max(1, int(workers))
        self.engine = engine
        self.child_hook = child_hook
        self._slots: list[_Resident | None] = [None] * self.workers
        self._stamp: tuple | None = None
        self._crashed_slots: set[int] = set()
        # counters surfaced via server_stats() and EXPLAIN ANALYZE
        self.forks = 0
        self.reuse_hits = 0
        self.worker_crashes = 0
        self.respawns = 0
        # pids of the residents used by the most recent run
        self.last_pids: list[int] = []

    # -- observability -------------------------------------------------------

    def counters(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "forks": self.forks,
            "reuse_hits": self.reuse_hits,
            "worker_crashes": self.worker_crashes,
            "respawns": self.respawns,
            "resident_pids": self.worker_pids(),
        }

    def worker_pids(self) -> list[int]:
        return [slot.pid for slot in self._slots if slot is not None]

    # -- lifecycle -----------------------------------------------------------

    def _engine_stamp(self) -> tuple | None:
        engine = self.engine
        if engine is None:
            return None
        return (engine.clock.now, engine.catalog.version,
                engine.catalog.stats_version,
                getattr(engine, "partition_epoch", 0))

    def _ensure_workers(self) -> bool:
        """Spawn or recycle residents; True if every slot was reused."""
        if any(slot is not None for slot in self._slots):
            stamp = self._engine_stamp()
            if stamp != self._stamp:
                self.recycle()
        reused = True
        for index in range(self.workers):
            if self._slots[index] is None:
                if reused:
                    # stamp what the first fork of this generation sees;
                    # every sibling forks under the same (single-threaded)
                    # engine state
                    self._stamp = self._engine_stamp()
                reused = False
                self._spawn(index)
        return reused

    def _spawn(self, index: int) -> None:
        task_r, task_w = os.pipe()
        result_r, result_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - runs only in the forked child
            os.close(task_w)
            os.close(result_r)
            # close inherited parent-side ends of every other live
            # resident's pipes — this pool's and any other pool's in
            # the process — or their EOF-based shutdown and crash
            # detection would hang on the fd this fork still holds
            for fd in list(_RESIDENT_PARENT_FDS):
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._worker_main(index, task_r, result_w)
        os.close(task_r)
        os.close(result_w)
        _RESIDENT_PARENT_FDS.add(task_w)
        _RESIDENT_PARENT_FDS.add(result_r)
        self._slots[index] = _Resident(pid, task_w, result_r)
        self.forks += 1
        if index in self._crashed_slots:
            self._crashed_slots.discard(index)
            self.respawns += 1

    def _worker_main(  # pragma: no cover - runs only in the forked child
            self, index: int, task_r: int, result_w: int) -> None:
        """Resident loop: read task frames until EOF, never return.

        Post-fork lines are invisible to coverage (same as
        ForkPool._child_main); behavior is pinned by parent-side
        assertions in the pool tests: result frames, error frames,
        crash-mid-frame, recycle-on-EOF."""
        global _WORKER_ENGINE
        _WORKER_ENGINE = self.engine
        # populated scan-cache segments ride into the fork copy-on-write
        # for free (stale generations die with the worker on recycle —
        # any committed write moves the engine stamp); only the event
        # counters are zeroed so a worker's numbers describe the worker
        if self.engine is not None:
            cache = getattr(self.engine, "scan_cache", None)
            if cache is not None:
                cache.reset_counters()
        while True:
            frame = _read_frame_bytes(task_r)
            if frame is None:
                os._exit(0)
            try:
                task_index, task = pickle.loads(frame)
                if self.child_hook is not None:
                    self.child_hook(task_index)
                payload = pickle.dumps((True, task()),
                                       protocol=pickle.HIGHEST_PROTOCOL)
            except BaseException as error:
                try:
                    payload = pickle.dumps(
                        (False, error), protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    payload = pickle.dumps(
                        (False, WorkerCrashError(
                            f"worker {index} failed with unpicklable "
                            f"error: {error!r}")),
                        protocol=pickle.HIGHEST_PROTOCOL)
            try:
                _write_frame(result_w, payload)
            except BaseException:
                os._exit(1)

    def _retire(self, index: int, crashed: bool = False) -> None:
        slot = self._slots[index]
        if slot is None:
            return
        self._slots[index] = None
        for fd in (slot.task_w, slot.result_r):
            _RESIDENT_PARENT_FDS.discard(fd)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            # EOF on the task pipe makes the resident exit promptly;
            # the bounded wait + SIGKILL fallback guarantees _retire
            # never hangs even if some other fork of this process
            # still holds the pipe's write end open
            for _ in range(400):
                done, _status = os.waitpid(slot.pid, os.WNOHANG)
                if done:
                    break
                time.sleep(0.005)
            else:  # pragma: no cover - leaked-fd fallback
                os.kill(slot.pid, signal.SIGKILL)
                os.waitpid(slot.pid, 0)
        except (ChildProcessError,
                ProcessLookupError):  # pragma: no cover - already gone
            pass
        if crashed:
            self._crashed_slots.add(index)
            self.worker_crashes += 1

    def recycle(self) -> None:
        """Tear down every resident (they exit on task-pipe EOF and are
        reaped here); the next dispatch forks a fresh generation."""
        for index in range(self.workers):
            self._retire(index)
        self._stamp = None

    def close(self) -> None:
        self.recycle()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.recycle()
        except Exception:
            pass

    # -- dispatch ------------------------------------------------------------

    def run(self, tasks: list) -> list[Any]:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return InProcessPool(self.child_hook).run(tasks)
        try:
            frames = [pickle.dumps((index, task),
                                   protocol=pickle.HIGHEST_PROTOCOL)
                      for index, task in enumerate(tasks)]
        except Exception:
            # unpicklable task (a raw closure): one-shot fork semantics
            return ForkPool(self.child_hook).run(tasks)
        if self._ensure_workers():
            self.reuse_hits += 1
        slot_count = self.workers
        self.last_pids = [
            self._slots[which].pid
            for which in range(min(slot_count, len(tasks)))
            if self._slots[which] is not None]
        results: list[Any] = [None] * len(tasks)
        crashed: list[int] = []
        dead: set[int] = set()
        worker_error: BaseException | None = None
        # dispatch in rounds of at most one task per resident (gathers
        # never exceed this anyway): a worker blocked writing a large
        # result never has the parent blocked writing it a second task
        for start in range(0, len(tasks), slot_count):
            round_indexes = range(start, min(start + slot_count,
                                             len(tasks)))
            for task_index in round_indexes:
                which = task_index % slot_count
                slot = self._slots[which]
                if which in dead or slot is None:
                    dead.add(which)
                    continue
                try:
                    _write_frame(slot.task_w, frames[task_index])
                except OSError:
                    dead.add(which)
            for task_index in round_indexes:
                which = task_index % slot_count
                slot = self._slots[which]
                if which in dead or slot is None:
                    crashed.append(task_index)
                    continue
                payload = _read_frame_bytes(slot.result_r)
                if payload is None:
                    dead.add(which)
                    crashed.append(task_index)
                    continue
                ok, value = pickle.loads(payload)
                if ok:
                    results[task_index] = value
                elif worker_error is None:
                    worker_error = value
        for which in dead:
            self._retire(which, crashed=True)
        if crashed:
            raise WorkerCrashError(
                f"parallel worker(s) {sorted(crashed)} died before "
                f"returning results; statement aborted, all workers "
                f"reaped")
        if worker_error is not None:
            raise worker_error
        return results


class ParallelContext:
    """Everything the planner and Gather operators need to go parallel:
    the worker count, how to obtain a pool, and the cost threshold
    below which plans stay serial. One context is built per planning
    call from the database's current settings; the plan-cache key
    carries the worker count so a cached plan can never execute under
    a different setting than it was planned for."""

    __slots__ = ("workers", "pool_factory", "min_rows")

    def __init__(self, workers: int,
                 pool_factory: Callable[[], Any] | None = None,
                 min_rows: int = DEFAULT_MIN_ROWS) -> None:
        self.workers = max(1, int(workers))
        self.pool_factory = (pool_factory if pool_factory is not None
                             else default_pool_factory)
        self.min_rows = min_rows

    def make_pool(self) -> Any:
        return self.pool_factory()


def split_ranges(items: list, parts: int) -> list[list]:
    """Split a list into at most ``parts`` contiguous chunks of nearly
    equal size (never an empty chunk). Order within and across chunks
    preserves the input order, so concatenating the chunks round-trips
    the list — the property the concat-mode gather relies on."""
    total = len(items)
    parts = max(1, min(parts, total if total else 1))
    base, extra = divmod(total, parts)
    chunks: list[list] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        chunks.append(items[start:start + size])
        start += size
    return chunks


def bucket_lists(buckets: list[list[int]], parts: int) -> list[list[int]]:
    """Distribute hash-partition buckets round-robin over ``parts``
    workers, each worker's rowid list re-sorted so every per-worker
    stream is rowid-ordered (the merge-mode gather k-way merges them
    back into exact global rowid order)."""
    parts = max(1, parts)
    assigned: list[list[int]] = [[] for _ in range(min(parts,
                                                       len(buckets)) or 1)]
    for index, bucket in enumerate(buckets):
        assigned[index % len(assigned)].extend(bucket)
    lists = [sorted(rowids) for rowids in assigned if rowids]
    return lists if lists else [[]]


def aligned_bucket_lists(buckets: list[list[int]],
                         parts: int) -> list[list[int]]:
    """Like :func:`bucket_lists` but *keeps empty worker slots*, so
    two tables with equal bucket counts map bucket ``i`` to the same
    worker slot on both sides — the co-partitioned join pairs slot
    ``k`` of the build side with slot ``k`` of the probe side and
    relies on that alignment even when one side's buckets are empty."""
    parts = max(1, parts)
    slots: list[list[int]] = [[] for _ in range(min(parts,
                                                    len(buckets)) or 1)]
    for index, bucket in enumerate(buckets):
        slots[index % len(slots)].extend(bucket)
    return [sorted(rowids) for rowids in slots]
