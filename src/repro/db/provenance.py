"""Perm / GProM façade: provenance queries and update reenactment.

This module is the engine-side counterpart of the two external systems
the LDV prototype builds on:

* **Perm** (Glavic et al., ICDE 2009) computes the Lineage of a query
  on demand — the LDV prototype sends the same query again with the
  ``PROVENANCE`` keyword. :meth:`PermInterface.provenance_query` does
  exactly that: it re-plans and re-executes the statement with lineage
  tracking enabled, so the caller pays the full second execution, which
  is the dominant audit overhead in Fig 7a/8a.
* **GProM reenactment** (Arab et al., TaPP 2014) obtains the provenance
  of a modification *before executing it* by translating the update
  into a query over the pre-state. :meth:`PermInterface.reenact`
  implements this translation for UPDATE and DELETE; INSERT ... VALUES
  needs no reenactment (the paper notes the low Insert overhead for
  precisely this reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.engine import Database, StatementResult
from repro.db.provtypes import TupleRef
from repro.db.sql import ast
from repro.db.sql.parser import parse_sql
from repro.errors import ExecutionError, SQLSyntaxError


@dataclass
class ReenactmentResult:
    """Pre-state provenance of a modification statement."""

    statement_kind: str  # insert | update | delete
    # tuple versions the statement will read/overwrite (pre-state)
    input_refs: list[TupleRef] = field(default_factory=list)
    # their values, aligned with input_refs (used to ship pre-state
    # versions in server-included packages)
    input_rows: list[tuple] = field(default_factory=list)
    table: str | None = None


class PermInterface:
    """Provenance-computation façade over one :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- queries ---------------------------------------------------------------

    def provenance_query(self, statement: ast.Select | str) -> StatementResult:
        """Run a SELECT with Lineage tracking (Perm's PROVENANCE mode).

        The statement is fully re-executed with annotation propagation,
        mirroring the prototype's second, rewritten query execution.
        """
        select = self._as_select(statement)
        return self.database.execute_statement(select, provenance=True)

    def _as_select(self, statement: ast.Select | str) -> ast.Select:
        if isinstance(statement, str):
            parsed = parse_sql(statement)
            if len(parsed) != 1 or not isinstance(parsed[0], ast.Select):
                raise SQLSyntaxError(
                    "provenance_query expects a single SELECT")
            return parsed[0]
        return statement

    # -- modifications -----------------------------------------------------------

    def reenact(self, statement: ast.Statement) -> ReenactmentResult:
        """Compute the pre-state provenance of a modification.

        Must be called *before* the modification executes — afterwards
        the pre-state versions are gone (the first problem Section
        VII-B identifies).
        """
        if isinstance(statement, ast.Insert):
            return self._reenact_insert(statement)
        if isinstance(statement, ast.Update):
            return self._reenact_where(statement.table, statement.where,
                                       "update")
        if isinstance(statement, ast.Delete):
            return self._reenact_where(statement.table, statement.where,
                                       "delete")
        raise ExecutionError(
            f"cannot reenact statement type {type(statement).__name__}")

    def _reenact_insert(self, insert: ast.Insert) -> ReenactmentResult:
        result = ReenactmentResult("insert", table=insert.table.lower())
        if insert.query is None:
            # plain INSERT ... VALUES: no pre-state provenance
            return result
        # INSERT ... SELECT reads tuples: its provenance is the query's
        query_result = self.provenance_query(insert.query)
        refs: dict[TupleRef, None] = {}
        for lineage in query_result.lineages:
            for ref in lineage:
                refs.setdefault(ref, None)
        result.input_refs = list(refs)
        result.input_rows = [
            self.database.catalog.get_table(ref.table).get(ref.rowid)
            for ref in result.input_refs]
        return result

    def _reenact_where(self, table_name: str,
                       where: ast.Expression | None,
                       kind: str) -> ReenactmentResult:
        """Translate ``UPDATE/DELETE ... WHERE w`` into the reenactment
        query ``SELECT PROVENANCE * FROM table WHERE w``."""
        select = ast.Select(
            items=(ast.SelectItem(ast.Star()),),
            sources=(ast.TableRef(table_name),),
            where=where)
        query_result = self.provenance_query(select)
        result = ReenactmentResult(kind, table=table_name.lower())
        for row, lineage in zip(query_result.rows, query_result.lineages):
            for ref in lineage:  # singleton per base row
                result.input_refs.append(ref)
                result.input_rows.append(row)
        return result
