"""The Database façade: parse → plan → execute.

:class:`Database` owns a :class:`Catalog`, an optional on-disk data
directory, and a :class:`LogicalClock` used to stamp tuple versions.
``execute`` runs one statement and returns a :class:`StatementResult`
that carries, besides rows, the full write provenance of DML:

* ``written`` — the tuple versions the statement created,
* ``written_lineage`` — for each written version, the set of tuple
  versions it was derived from (the *old* version for UPDATE, the
  source-query lineage for INSERT ... SELECT),
* ``deleted`` — the tuple versions removed by DELETE.

Query lineage (Perm's Lineage) is produced when the statement is
``SELECT PROVENANCE ...`` or when ``provenance=True`` is passed.

Transactions are MVCC snapshots (:mod:`repro.db.mvcc`): BEGIN captures
the logical clock; statements read that snapshot merged with the
session's private write-set; COMMIT validates first-committer-wins
(raising :class:`repro.errors.WriteConflictError`, a transient error
the client retries as a whole transaction) and publishes the write-set
as one WAL batch; ROLLBACK just drops it. Each
:class:`~repro.db.mvcc.Session` carries its own transaction state, so
any number of connections — the server opens one session per wire
connection — interleave statements without observing each other's
uncommitted work.

Durability (when a data directory is given): every committed statement
or transaction is flushed to a write-ahead log (:mod:`repro.db.wal`)
*before* any table file is touched, and :meth:`Database.checkpoint`
rewrites table files atomically (temp → fsync → rename) before
resetting the log. Opening a database therefore recovers automatically:
table files are loaded, the WAL's committed records are replayed
idempotently on top, torn or uncommitted log tails are truncated, and
the logical clock resumes past every recovered tick. All file I/O runs
through an injectable :class:`repro.db.fileio.FileIO`, which is how the
fault-injection harness (:mod:`repro.faults`) simulates crashes at
every write, fsync, and rename.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.clockwork import LogicalClock
from repro.db import csvio
from repro.db import parallel as parmod
from repro.db.catalog import Catalog
from repro.db.executor import MaterializedSource
from repro.db.expressions import Evaluator, bound_parameters
from repro.db.mvcc import (
    ReadView,
    Session,
    TableOverlay,
    TransactionContext,
)
from repro.db.planner import PlannedQuery, plan_select
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.stats import TableStats, compute_table_stats
from repro.db.vector import BatchOperator
from repro.db.sql import ast
from repro.db.sql.params import bind_statement, max_parameter_index
from repro.db.sql.parser import parse_sql
from repro.db.subquery import expand_statement, has_subqueries
from repro.db.fileio import FileIO
from repro.db.storage import DataDirectory, HeapTable
from repro.db.types import (
    Column,
    Schema,
    SQLType,
    coerce_row,
    value_from_csv,
    value_to_csv,
)
from repro.db.wal import (
    WALRecovery,
    WriteAheadLog,
    schema_from_wire,
    schema_to_wire,
)
from repro.errors import (
    CatalogError,
    DatabaseError,
    ExecutionError,
    GroupCommitError,
    IntegrityError,
    SQLSyntaxError,
    StatementTimeout,
    TransactionError,
    WALCorruptionError,
    WriteConflictError,
)


@dataclass
class StatementResult:
    """The outcome of executing one SQL statement."""

    kind: str  # select | insert | update | delete | create | drop | copy | txn
    schema: Schema = field(default_factory=lambda: Schema([]))
    rows: list[tuple] = field(default_factory=list)
    lineages: list[frozenset] = field(default_factory=list)
    rowcount: int = 0
    written: list[TupleRef] = field(default_factory=list)
    written_lineage: dict[TupleRef, frozenset] = field(default_factory=dict)
    deleted: list[TupleRef] = field(default_factory=list)
    source_tables: list[str] = field(default_factory=list)
    # free-form measurements: EXPLAIN ANALYZE fills "analyze" with
    # per-operator counters, the server adds wire-side timing
    stats: dict[str, Any] = field(default_factory=dict)
    # engine-internal: True when the statement was a plan-cacheable
    # SELECT, whose source_tables list is complete — the only results
    # the server result cache may store. Never serialized to the wire.
    cacheable: bool = False

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names()


class PlanCache:
    """LRU cache of planned SELECT operator trees.

    Keyed by ``(normalized SQL text, provenance flag, catalog
    version, stats version, parallel worker setting)``. Including the
    catalog version makes every cached plan built against an older
    schema unreachable the moment any DDL runs — DDL handlers
    additionally :meth:`clear` the cache so stale entries do not
    linger until LRU eviction. The stats version does the same for the
    cost model: ANALYZE bumps it, so plans costed against superseded
    statistics are re-planned on the next execution instead of being
    served forever. The worker setting is part of the key because a
    plan is *shaped* by it: a plan costed (and built) under one worker
    must never be served once :meth:`Database.set_parallel_workers`
    changes the setting — the serial plan has no Gather operators and
    would silently ignore the new parallelism (and vice versa).

    Only plain SELECT statements without subqueries are cacheable:
    subquery expansion inlines executed results into the AST, which
    depend on table data, not just on the SQL text.

    ``hits`` counts statements served from the cache; ``misses``
    counts cacheable statements that had to be planned (recorded at
    :meth:`put` time, so DML and other non-cacheable statements do not
    inflate the miss counter).

    The cache is shared by every session of a database, so lookups,
    insertions (with their LRU ``move_to_end`` bookkeeping), eviction,
    and the counters all run under one lock — two sessions planning
    the same SQL concurrently must never corrupt the LRU order or lose
    counter increments.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ExecutionError("plan cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, PlannedQuery] = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def normalize(sql: str) -> str:
        """Collapse insignificant whitespace so trivially reformatted
        statements share a cache entry. Statements containing string
        literals are kept verbatim — whitespace inside quotes is
        significant and a lexer-free normalizer cannot tell it apart.
        """
        if "'" in sql:
            return sql.strip()
        return " ".join(sql.split())

    def get(self, key: tuple) -> Optional[PlannedQuery]:
        with self._lock:
            planned = self._entries.get(key)
            if planned is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return planned

    def put(self, key: tuple, planned: PlannedQuery) -> None:
        with self._lock:
            self.misses += 1
            self._entries[key] = planned
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._entries)}

    def keys(self) -> list[tuple]:
        """The cached keys in LRU order, oldest first (for tests)."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class IdempotencyLedger:
    """Dedupe ledger for token-stamped statements (exactly-once retry).

    Clients stamp mutating statements with a globally-unique token; the
    first execution records its wire-shaped result here under that
    token, and any retry of the same token returns the recorded result
    instead of re-executing. Entries for autocommit work ride the same
    WAL batch as the statement's writes (``{"op": "ledger", ...}``), so
    after a crash the recovered ledger agrees exactly with the
    recovered data: a write that survived answers its retry from the
    ledger, a write that was lost re-executes. Checkpoints persist the
    durable entries in the directory meta, since a checkpoint resets
    the WAL they were logged in.

    Bounded LRU: retries arrive within a client's retry window, so a
    few hundred entries of memory covers them; eviction of ancient
    tokens only risks re-executing a retry delayed past ``capacity``
    newer writes, which no real retry policy produces.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.stores = 0

    def get(self, token: str) -> Optional[dict[str, Any]]:
        entry = self._entries.get(token)
        if entry is not None:
            self.hits += 1
        return entry

    def record(self, token: str, payload: dict[str, Any],
               commit: bool = False, durable: bool = False) -> None:
        self._entries[token] = {
            "result": payload, "commit": commit, "durable": durable}
        self._entries.move_to_end(token)
        self.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def dump(self) -> list[list[Any]]:
        """Durable entries in insertion order (checkpoint meta form)."""
        return [[token, entry["result"], entry["commit"]]
                for token, entry in self._entries.items()
                if entry["durable"]]

    def load(self, dumped: Iterable[Iterable[Any]]) -> None:
        for token, payload, commit in dumped:
            self.record(str(token), payload, commit=bool(commit),
                        durable=True)

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "stores": self.stores,
                "size": len(self._entries)}

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class PreparedStatement:
    """A statement parsed once, executed many times with ``$n``
    parameter values (the engine half of the wire's prepare /
    bind-execute / deallocate cycle)."""

    sql: str
    statement: ast.Statement
    param_count: int
    cacheable: bool
    # normalized once at prepare time; plan-cache and result-cache
    # keys on the execution path reuse it instead of re-normalizing
    normalized_sql: str = ""


class Cursor:
    """An incrementally-drained SELECT, pinned to a snapshot.

    Opened inside a transaction, the cursor reads the transaction's
    snapshot (and write-set) and dies with it. Opened in autocommit, it
    registers its own snapshot with the MVCC state — exactly like a
    read-only transaction — so history pruning preserves every version
    the remaining rows need until the cursor is closed or exhausted.

    ``fetch`` resumes the plan's iterator under the pinned read view
    and the cursor's parameter bindings, so a cached (shared) plan
    streams snapshot-correct rows regardless of what other sessions
    commit between chunks.
    """

    def __init__(self, database: "Database", schema: Schema,
                 source_tables: list[str], session: Session,
                 planned: PlannedQuery | None = None,
                 params: tuple = (),
                 materialized: "StatementResult | None" = None) -> None:
        self.database = database
        self.schema = schema
        self.source_tables = source_tables
        self.session = session
        self.done = False
        self.rows_served = 0
        self._params = tuple(params)
        self._closed = False
        self._owns_txn_id: Optional[int] = None
        self._context: Optional[TransactionContext] = None
        self._view: Optional[ReadView] = None
        if materialized is not None:
            # non-streamable statements (subqueries, UNION) execute
            # eagerly; the cursor only chunks the materialized rows
            self._iterator: Iterator = iter(
                zip(materialized.rows, materialized.lineages))
        else:
            context = session.txn
            if context is None:
                # pin an autocommit snapshot: a private read-only
                # "transaction" that holds back history pruning
                txn_id = database._next_txn_id
                database._next_txn_id += 1
                context = TransactionContext(txn_id, database.clock.now)
                database.mvcc.begin(txn_id, context.snapshot)
                self._owns_txn_id = txn_id
            self._context = context
            self._view = ReadView(context.snapshot, context,
                                  database.mvcc)
            self._iterator = self._produce(planned.root)

    @property
    def defunct(self) -> bool:
        """True when the transaction that pinned this cursor's snapshot
        has ended — the server reaps such cursors."""
        return (self._owns_txn_id is None and self._context is not None
                and self.session.txn is not self._context)

    @staticmethod
    def _produce(root) -> Iterator[tuple[tuple, frozenset]]:
        if isinstance(root, BatchOperator):
            for batch in root.batches():
                rows = batch.rows()
                lineages = batch.gathered_lineages()
                if lineages is None:
                    lineages = [EMPTY_LINEAGE] * len(rows)
                yield from zip(rows, lineages)
        else:
            yield from root

    def fetch(self, max_rows: int) -> tuple[list[tuple], list[frozenset]]:
        """Pull up to ``max_rows`` more rows (with their lineages);
        sets :attr:`done` when the plan is exhausted."""
        if self._closed:
            raise ExecutionError("cursor is closed")
        if max_rows < 1:
            raise ExecutionError("fetch size must be positive")
        if self.done:
            return [], []
        if (self._owns_txn_id is None and self._context is not None
                and self.session.txn is not self._context):
            # the owning transaction committed or rolled back: the
            # snapshot (and any overlay rows) the cursor was reading
            # are gone
            self.close()
            raise ExecutionError(
                "cursor is no longer valid: its transaction ended")
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        if self._view is not None:
            state = self.database.mvcc
            previous = state.current
            state.current = self._view
            try:
                with bound_parameters(self._params):
                    self._pull(rows, lineages, max_rows)
            finally:
                state.current = previous
        else:
            self._pull(rows, lineages, max_rows)
        self.rows_served += len(rows)
        if self.done:
            self._release()
        return rows, lineages

    def _pull(self, rows: list, lineages: list, max_rows: int) -> None:
        while len(rows) < max_rows:
            try:
                values, lineage = next(self._iterator)
            except StopIteration:
                self.done = True
                return
            rows.append(values)
            lineages.append(lineage)

    def close(self) -> None:
        """Release the pinned snapshot; idempotent."""
        if not self._closed:
            self._closed = True
            self.done = True
            self._release()

    def _release(self) -> None:
        self._iterator = iter(())
        if self._owns_txn_id is not None:
            self.database.mvcc.end(self._owns_txn_id)
            self._owns_txn_id = None
            self.database._prune_mvcc()


class Database:
    """An embedded database instance.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id integer, name text)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'a')")
    >>> db.query("SELECT name FROM t WHERE id = 1")
    [('a',)]
    """

    def __init__(self, data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 autoflush: bool = False,
                 io: FileIO | None = None,
                 timer: Callable[[], float] = time.perf_counter,
                 plan_cache_size: int = 64) -> None:
        self.io = io if io is not None else FileIO()
        directory = (DataDirectory(data_directory, io=self.io)
                     if data_directory is not None else None)
        self.catalog = Catalog(directory)
        self.clock = clock if clock is not None else LogicalClock()
        self.autoflush = autoflush
        self.timer = timer
        self.plan_cache = PlanCache(plan_cache_size)
        # partition-parallel execution settings (see set_parallel_workers):
        # 1 worker means serial plans, exactly as before this knob existed
        self.parallel_workers = 1
        self.parallel_pool_factory: Optional[Callable[[], Any]] = None
        self.parallel_min_rows = parmod.DEFAULT_MIN_ROWS
        # the resident worker pool (PersistentForkPool) when workers>1
        # and no explicit pool factory was injected; torn down on
        # close/drain and recycled whenever engine state moves
        self.parallel_pool: Optional[parmod.PersistentForkPool] = None
        # bumped on every set_table_partitioning call; part of the
        # plan-cache key so a co-partitioned join plan can never be
        # served after the specs it was planned against changed
        self.partition_epoch = 0
        # MVCC state lives on the catalog so tables can consult it;
        # sessions are handed out here (one per server connection, plus
        # the default one used by the embedded single-connection API)
        self.mvcc = self.catalog.mvcc
        # the catalog-owned columnar scan cache (repro.db.scancache);
        # exposed here for the serving layer's counters and tests
        self.scan_cache = self.catalog.scan_cache
        self._next_session_id = 1
        self._next_txn_id = 1
        self.session = self.create_session("default")
        # cooperative statement deadline (see statement_deadline):
        # checked between row batches so runaway scans can be cancelled
        self._deadline: Optional[float] = None
        self._deadline_timer: Optional[Callable[[], float]] = None
        self._deadline_budget: Optional[float] = None
        # WAL batch state: redo records buffered since the last commit
        # marker, and which tables the batch touched/dropped
        self.wal: Optional[WriteAheadLog] = None
        self._wal_dirty = False
        self._touched_tables: set[str] = set()
        self._dropped_tables: set[str] = set()
        self.last_recovery: Optional[WALRecovery] = None
        # exactly-once retry support: results of token-stamped
        # statements, recoverable alongside the writes they describe
        self.dedupe_ledger = IdempotencyLedger()
        # poisoned after an aborted group commit: the in-memory heap
        # has applied writes the truncated WAL no longer promises, so
        # this instance must not serve statements or checkpoint —
        # reopen the data directory to recover
        self.failed = False
        if directory is not None:
            self.wal = WriteAheadLog(directory.wal_path, io=self.io)
            self.last_recovery = self.wal.open()
            # checkpointed ledger entries predate the WAL's records;
            # load them first so replayed entries win on collision —
            # same for checkpointed ANALYZE statistics, which any
            # replayed "analyze" record overrides
            meta = directory.load_meta()
            self.dedupe_ledger.load(meta.get("ledger", []))
            self.catalog.load_stats(meta.get("stats", {}))
            self.catalog.load_partitions(meta.get("partitions", {}))
            self._replay_recovered(self.last_recovery)
            self._restore_clock(directory, self.last_recovery)
            # recovery may have replayed DDL; plans cached before it
            # (none today — the cache is born empty — but guard the
            # invariant against future pre-warm refactors)
            self.plan_cache.clear()
            # same invariant for scan segments: a recovered engine must
            # never serve a pre-crash cache image
            self.catalog.scan_cache.invalidate_all()
        # file access hooks so a virtual OS can interpose COPY I/O
        self.read_file: Callable[[str], str] = (
            lambda path: Path(path).read_text())
        self.write_file: Callable[[str, str], None] = (
            lambda path, text: Path(path).write_text(text))

    # -- crash recovery ----------------------------------------------------------

    def _replay_recovered(self, recovery: WALRecovery) -> None:
        """Apply the WAL's committed redo records over the loaded
        table files. Records use absolute row states, so replay is
        idempotent even when a checkpoint already captured some of
        them."""
        for record in recovery.records:
            try:
                self._apply_wal_record(record)
            except DatabaseError as exc:
                raise WALCorruptionError(
                    f"committed WAL record {record!r} cannot be "
                    f"replayed: {exc}") from exc

    def _apply_wal_record(self, record: dict) -> None:
        operation = record["op"]
        if operation == "put":
            table = self.catalog.get_table(record["table"])
            values = tuple(
                value_from_csv(cell, sql_type)
                for cell, sql_type in zip(record["values"],
                                          table.schema.types()))
            table.put_row(record["rowid"], values, record["version"])
        elif operation == "delete":
            self.catalog.get_table(record["table"]).remove_row(
                record["rowid"])
        elif operation == "create_table":
            if not self.catalog.has_table(record["table"]):
                self.catalog.create_table(
                    record["table"], schema_from_wire(record["columns"]))
        elif operation == "drop_table":
            self.catalog.drop_table(record["table"], if_exists=True)
        elif operation == "create_index":
            self.catalog.get_table(record["table"]).create_index(
                record["name"], record["column"], if_not_exists=True)
        elif operation == "drop_index":
            if self.catalog.has_index(record["name"]):
                self.catalog.table_of_index(record["name"]).drop_index(
                    record["name"])
        elif operation == "analyze":
            if self.catalog.has_table(record["table"]):
                self.catalog.set_stats(
                    record["table"],
                    TableStats.from_dict(record["stats"]))
        elif operation == "partition":
            if self.catalog.has_table(record["table"]):
                table = self.catalog.get_table(record["table"])
                if record.get("column") is None:
                    table.clear_partitioning()
                else:
                    table.set_partitioning(record["column"],
                                           int(record["count"]))
        elif operation == "ledger":
            self.dedupe_ledger.record(
                record["token"], record["result"],
                commit=bool(record.get("commit", False)), durable=True)
        else:
            raise WALCorruptionError(
                f"unknown WAL operation {operation!r}")

    def _restore_clock(self, directory: DataDirectory,
                       recovery: WALRecovery) -> None:
        """Resume logical time strictly after every recovered tick."""
        target = max(int(directory.load_meta().get("clock", 0)),
                     recovery.last_tick)
        for table in self.catalog:
            if table.versions:
                target = max(target, max(table.versions.values()))
        if target > self.clock.now:
            self.clock.advance(target - self.clock.now)

    # -- WAL batch bookkeeping ---------------------------------------------------

    def _log_put(self, table: HeapTable, rowid: int) -> None:
        self._touched_tables.add(table.name)
        self.mvcc.note_write(table.name, self.clock.now)
        if self.wal is not None:
            self.wal.append({
                "op": "put", "table": table.name, "rowid": rowid,
                "version": table.versions[rowid],
                "values": [value_to_csv(value)
                           for value in table.rows[rowid]],
            })
            self._wal_dirty = True

    def _log_delete(self, table: HeapTable, rowid: int) -> None:
        self._touched_tables.add(table.name)
        self.mvcc.note_write(table.name, self.clock.now)
        if self.wal is not None:
            self.wal.append({"op": "delete", "table": table.name,
                             "rowid": rowid})
            self._wal_dirty = True

    def _log_ddl(self, record: dict) -> None:
        if self.wal is not None:
            self.wal.append(record)
            self._wal_dirty = True

    def _commit_wal_batch(self) -> None:
        """Durably commit the pending batch, then (with autoflush)
        mirror it into the table files — always WAL before data."""
        if self.wal is not None and self._wal_dirty:
            self.wal.commit(self.clock.now)
            self._wal_dirty = False
        if self.autoflush:
            for name in sorted(self._touched_tables):
                if self.catalog.has_table(name):
                    self.catalog.flush_table(name)
            if self._dropped_tables:
                self.catalog.sync_drops()
        self._touched_tables.clear()
        self._dropped_tables.clear()

    def _abort_wal_batch(self) -> None:
        if self.wal is not None:
            self.wal.abort()
        self._wal_dirty = False
        self._touched_tables.clear()
        self._dropped_tables.clear()

    # -- sessions ----------------------------------------------------------------

    def create_session(self, name: str = "session") -> Session:
        """Open an independent transaction scope (one per connection)."""
        session = Session(self._next_session_id, name)
        self._next_session_id += 1
        return session

    def abort_session(self, session: Session) -> None:
        """Roll back the session's open transaction, if any (used when
        a connection closes or the server shuts down)."""
        if session.txn is not None:
            self._abort_transaction(session)

    @contextmanager
    def use_session(self, session: Session) -> Iterator[Session]:
        """Make ``session`` the default for the duration of the block.

        The server wraps each connection's statement in this, so the
        whole execute path — including code that never learned about
        sessions — runs against the connection's transaction state.
        """
        previous = self.session
        self.session = session
        try:
            yield session
        finally:
            self.session = previous

    @contextmanager
    def _read_view(self, session: Session) -> Iterator[None]:
        """Make the session's snapshot the ambient read view for the
        duration of one statement. Tables consult it during scans, so
        cached plans — whose operators hold direct table references —
        are automatically snapshot-correct for whichever session runs
        them. No view is installed outside a transaction: autocommit
        statements read (and write) the committed heap directly."""
        state = self.mvcc
        previous = state.current
        context = session.txn
        state.current = (ReadView(context.snapshot, context, state)
                         if context is not None else None)
        try:
            yield
        finally:
            state.current = previous

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Share one WAL fsync across all transactions committed inside
        the window (each still appends its own batch + commit marker;
        see :class:`repro.db.wal.WriteAheadLog`)."""
        if self.wal is None:
            yield
            return
        self.wal.begin_group()
        try:
            yield
        finally:
            try:
                self.wal.end_group()
            except GroupCommitError:
                # the group's heap writes were already applied but the
                # truncated WAL no longer promises them: this instance
                # is no longer trustworthy, reopen from disk to recover
                self.failed = True
                raise

    @property
    def commit_count(self) -> int:
        """Commit markers written to the WAL (0 without a WAL)."""
        return self.wal.commit_count if self.wal is not None else 0

    @property
    def fsync_count(self) -> int:
        """WAL fsyncs issued (group commit shares one across a batch)."""
        return self.wal.fsync_count if self.wal is not None else 0

    # -- cooperative statement deadline ------------------------------------------

    @contextmanager
    def statement_deadline(self, deadline: float,
                           timer: Callable[[], float],
                           budget: float | None = None) -> Iterator[None]:
        """Cancel statement execution once ``timer()`` passes
        ``deadline``. The check runs between row batches (and every
        1024 rows on the tuple path), so a runaway scan raises
        :class:`StatementTimeout` mid-statement instead of only being
        noticed after it finishes."""
        previous = (self._deadline, self._deadline_timer,
                    self._deadline_budget)
        self._deadline = deadline
        self._deadline_timer = timer
        self._deadline_budget = budget
        try:
            yield
        finally:
            (self._deadline, self._deadline_timer,
             self._deadline_budget) = previous

    def _check_deadline(self) -> None:
        if self._deadline is None:
            return
        now = self._deadline_timer()
        if now > self._deadline:
            budget = self._deadline_budget
            detail = (f"the {budget}s budget" if budget is not None
                      else "its deadline")
            raise StatementTimeout(
                f"statement exceeded {detail} (cancelled mid-statement)")

    # -- public API --------------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False,
                session: Session | None = None,
                token: str | None = None) -> StatementResult:
        """Execute exactly one SQL statement.

        Repeated SELECT texts hit the plan cache and skip parse+plan
        entirely; see :class:`PlanCache` for the keying rules. With no
        explicit ``session`` the default (embedded) session is used.

        A ``token`` marks the statement for exactly-once retry: if this
        token already executed, the recorded result is returned without
        re-executing (see :class:`IdempotencyLedger`). Tokens are for
        mutating statements; plan-cached SELECTs ignore them.
        """
        session = session if session is not None else self.session
        self._ensure_usable()
        if token is not None:
            replayed = self._ledger_replay(token, session)
            if replayed is not None:
                return replayed
        key = (PlanCache.normalize(sql), bool(provenance),
               self.catalog.version, self.catalog.stats_version,
               self.partition_epoch, self.parallel_workers)
        planned = self.plan_cache.get(key)
        if planned is not None:
            with self._read_view(session):
                result = self._run_planned_select(planned)
            result.cacheable = True
            return result
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise SQLSyntaxError(
                f"execute() expects one statement, got {len(statements)}")
        statement = statements[0]
        if self._plan_cacheable(statement):
            track = provenance or statement.provenance
            # plan inside the session's read view: cardinality
            # estimates must see the transaction's own overlay (a bulk
            # insert into one join side steers this plan's build side)
            with self._read_view(session):
                planned = plan_select(statement, self.catalog, track,
                                      parallel=self._parallel_context())
                result = self._run_planned_select(planned)
            if session.txn is None:
                # overlay-costed plans stay private to the planning
                # statement; only snapshot-free plans enter the shared
                # cache
                self.plan_cache.put(key, planned)
            result.cacheable = True
            return result
        return self.execute_statement(statement, provenance, session,
                                      token=token)

    # -- prepared statements and cursors ----------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse (and classify) one statement for repeated execution
        with ``$n`` parameters."""
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise SQLSyntaxError(
                f"prepare() expects one statement, got {len(statements)}")
        statement = statements[0]
        return PreparedStatement(
            sql=sql, statement=statement,
            param_count=max_parameter_index(statement),
            cacheable=self._plan_cacheable(statement),
            normalized_sql=PlanCache.normalize(sql))

    def _check_param_count(self, prepared: PreparedStatement,
                           params: tuple) -> None:
        if len(params) != prepared.param_count:
            raise ExecutionError(
                f"prepared statement expects {prepared.param_count} "
                f"parameter(s), got {len(params)}")

    def _planned_for(self, prepared: PreparedStatement,
                     provenance: bool,
                     session: Session | None = None) -> PlannedQuery:
        """The (cached) plan for a cacheable prepared statement. Keys
        match the text path, so ``prepare`` + ``execute`` share one
        cache entry per template. Plans costed under an open
        transaction's overlay (``session`` given and in a transaction)
        are used but not cached."""
        key = (prepared.normalized_sql or PlanCache.normalize(prepared.sql),
               bool(provenance), self.catalog.version,
               self.catalog.stats_version, self.partition_epoch,
               self.parallel_workers)
        planned = self.plan_cache.get(key)
        if planned is None:
            track = provenance or prepared.statement.provenance
            planned = plan_select(prepared.statement, self.catalog, track,
                                  parallel=self._parallel_context())
            if session is None or session.txn is None:
                self.plan_cache.put(key, planned)
        return planned

    def execute_prepared(self, prepared: PreparedStatement,
                         params: Iterable[Any] = (),
                         provenance: bool = False,
                         session: Session | None = None,
                         token: str | None = None) -> StatementResult:
        """Bind ``params`` to a prepared statement and execute it.

        Cacheable SELECT templates skip parse *and* plan: the cached
        plan's compiled closures read the parameter values from the
        ambient binding installed for the duration of the statement.
        Everything else (DML, subqueries) substitutes literals into the
        stored AST and runs the ordinary execution path — still
        skipping the per-call parse.
        """
        session = session if session is not None else self.session
        self._ensure_usable()
        if token is not None:
            replayed = self._ledger_replay(token, session)
            if replayed is not None:
                return replayed
        params = tuple(params)
        self._check_param_count(prepared, params)
        if prepared.cacheable:
            with self._read_view(session), bound_parameters(params):
                planned = self._planned_for(prepared, provenance,
                                            session)
                result = self._run_planned_select(planned)
            result.cacheable = True
            return result
        statement = (bind_statement(prepared.statement, params)
                     if prepared.param_count else prepared.statement)
        return self.execute_statement(statement, provenance, session,
                                      token=token)

    def open_cursor(self, source: "str | PreparedStatement",
                    params: Iterable[Any] = (),
                    session: Session | None = None,
                    provenance: bool = False) -> Cursor:
        """Open a streamed result set for a SELECT.

        Plan-cacheable SELECTs stream incrementally from the operator
        tree under a pinned snapshot; other SELECT shapes (subqueries,
        UNION) materialize eagerly and the cursor merely chunks the
        rows. Non-SELECT statements are rejected.
        """
        session = session if session is not None else self.session
        self._ensure_usable()
        prepared = (source if isinstance(source, PreparedStatement)
                    else self.prepare(source))
        params = tuple(params)
        self._check_param_count(prepared, params)
        if prepared.cacheable:
            planned = self._planned_for(prepared, provenance)
            return Cursor(self, planned.schema,
                          list(planned.source_tables), session,
                          planned=planned, params=params)
        result = self.execute_prepared(prepared, params, provenance,
                                       session)
        if result.kind != "select":
            raise ExecutionError(
                "only SELECT statements can be streamed")
        return Cursor(self, result.schema, list(result.source_tables),
                      session, materialized=result)

    @staticmethod
    def _plan_cacheable(statement: ast.Statement) -> bool:
        """Plain SELECTs without subqueries may be cached; everything
        else (DML, DDL, UNION, EXPLAIN, subqueries) plans per call."""
        if not isinstance(statement, ast.Select):
            return False
        expressions: list[Optional[ast.Expression]] = [
            statement.where, statement.having]
        expressions.extend(item.expression for item in statement.items)
        expressions.extend(statement.group_by)
        expressions.extend(item.expression for item in statement.order_by)
        for source in statement.sources:
            while isinstance(source, ast.Join):
                expressions.append(source.condition)
                source = source.left
        return not any(has_subqueries(expression)
                       for expression in expressions)

    def execute_script(self, sql: str,
                       session: Session | None = None) -> list[StatementResult]:
        """Execute a multi-statement script, returning all results."""
        return [self.execute_statement(statement, False, session)
                for statement in parse_sql(sql)]

    def query(self, sql: str,
              session: Session | None = None) -> list[tuple]:
        """Shorthand: run a SELECT and return the rows."""
        result = self.execute(sql, session=session)
        if result.kind != "select":
            raise ExecutionError("query() requires a SELECT statement")
        return result.rows

    def execute_statement(self, statement: ast.Statement,
                          provenance: bool = False,
                          session: Session | None = None,
                          token: str | None = None) -> StatementResult:
        session = session if session is not None else self.session
        self._ensure_usable()
        if token is not None:
            replayed = self._ledger_replay(token, session)
            if replayed is not None:
                return replayed
        with self._read_view(session):
            extra_lineage: frozenset = EMPTY_LINEAGE
            if isinstance(statement, (ast.Select, ast.SetOp, ast.Update,
                                      ast.Delete, ast.Insert)):
                # DML always records write provenance, so its subqueries
                # must track lineage too; queries only when asked
                track = (provenance
                         or bool(getattr(statement, "provenance", False))
                         or isinstance(statement, (ast.Update, ast.Delete,
                                                   ast.Insert)))
                statement, extra_lineage = expand_statement(
                    statement, self._run_subquery, track)
            try:
                result = self._dispatch_statement(statement, provenance,
                                                  session)
            except Exception as exc:
                if (isinstance(exc, WriteConflictError)
                        and session.txn is not None):
                    # first committer won: the losing transaction is
                    # dead; roll it back so the client can BEGIN afresh
                    self._abort_transaction(session)
                if session.txn is None:
                    # a failed autocommit statement never commits:
                    # whatever it logged must not survive recovery
                    self._abort_wal_batch()
                raise
            if extra_lineage:
                result.lineages = [lineage | extra_lineage
                                   for lineage in result.lineages]
                result.written_lineage = {
                    ref: deps | extra_lineage
                    for ref, deps in result.written_lineage.items()}
        if token is not None:
            # record before the batch commits so the ledger entry is
            # atomic with the writes it deduplicates
            self._ledger_record(token, statement, result, session)
        if session.txn is None:
            # autocommit (or the COMMIT statement itself): make the
            # batch durable before any table file is rewritten
            self._commit_wal_batch()
        return result

    # -- exactly-once retry ledger -------------------------------------------------

    def _ensure_usable(self) -> None:
        if self.failed:
            raise GroupCommitError(
                "database instance failed after an aborted group "
                "commit; reopen the data directory to recover")

    def _ledger_replay(self, token: str,
                       session: Session) -> Optional[StatementResult]:
        """The recorded result of an already-executed token, or None.

        A ledger hit consumes no clock tick and touches no state —
        except when the replayed token was a COMMIT and the retrying
        client has (re)opened a transaction: that duplicate transaction
        is rolled back, since the work it would redo already committed.
        """
        entry = self.dedupe_ledger.get(token)
        if entry is None:
            return None
        if entry["commit"] and session.txn is not None:
            self._abort_transaction(session)
        from repro.db import protocol  # local import: protocol imports engine

        result = protocol.result_from_wire(entry["result"])
        result.stats = dict(result.stats)
        result.stats["replayed_token"] = token
        return result

    def _ledger_record(self, token: str, statement: ast.Statement,
                       result: StatementResult, session: Session) -> None:
        from repro.db import protocol  # local import: protocol imports engine

        payload = protocol.result_to_wire(result)
        # the server annotates result.stats in place after execution;
        # snapshot it so the recorded payload stays what was executed
        payload["stats"] = dict(payload.get("stats") or {})
        committing = isinstance(statement, ast.Commit)
        durable = (session.txn is None and self.wal is not None
                   and self._wal_dirty)
        if durable:
            self.wal.append({"op": "ledger", "token": token,
                             "result": payload, "commit": committing})
        self.dedupe_ledger.record(token, payload, commit=committing,
                                  durable=durable)

    def _run_subquery(self, select: ast.Select, track_lineage: bool):
        result = self._execute_select(select, track_lineage)
        return result.rows, result.lineages

    def _dispatch_statement(self, statement: ast.Statement,
                            provenance: bool,
                            session: Session) -> StatementResult:
        if isinstance(statement, ast.Select):
            return self._execute_select(
                statement, provenance or statement.provenance)
        if isinstance(statement, ast.SetOp):
            return self._execute_setop(statement, provenance)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, provenance, session)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement, session)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement, session)
        if isinstance(statement, (ast.CreateTable, ast.DropTable,
                                  ast.CreateIndex, ast.DropIndex,
                                  ast.Analyze)):
            if session.txn is not None:
                # schema changes are not versioned by the snapshot
                # machinery; forcing them to autocommit keeps every
                # open snapshot's view of the catalog coherent (and
                # ANALYZE, which scans the committed heap, follows the
                # same rule)
                raise TransactionError(
                    "DDL is not allowed inside a transaction; "
                    "COMMIT or ROLLBACK first")
            if isinstance(statement, ast.CreateTable):
                return self._execute_create(statement)
            if isinstance(statement, ast.DropTable):
                return self._execute_drop_table(statement)
            if isinstance(statement, ast.CreateIndex):
                return self._execute_create_index(statement)
            if isinstance(statement, ast.DropIndex):
                return self._execute_drop_index(statement)
            return self._execute_analyze(statement)
        if isinstance(statement, ast.CopyFrom):
            return self._execute_copy_from(statement, session)
        if isinstance(statement, ast.CopyTo):
            return self._execute_copy_to(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        if isinstance(statement, ast.Begin):
            return self._execute_begin(session)
        if isinstance(statement, ast.Commit):
            return self._execute_commit(session)
        if isinstance(statement, ast.Rollback):
            return self._execute_rollback(session)
        raise ExecutionError(
            f"unsupported statement type {type(statement).__name__}")

    def checkpoint(self) -> None:
        """Write a crash-consistent on-disk image.

        Every table file is rewritten atomically (temp → fsync →
        rename), dropped tables' files are removed, the logical clock
        is persisted, and only then is the WAL reset. A crash at any
        intermediate point leaves a directory that recovery repairs:
        the not-yet-reset WAL simply replays (idempotently) on top of
        whichever table files made it.
        """
        self._ensure_usable()
        if self.mvcc.has_active():
            raise TransactionError(
                "cannot checkpoint during an open transaction")
        self.catalog.flush()
        directory = self.catalog.data_directory
        if directory is not None:
            # the WAL reset below discards the logged ledger entries
            # and "analyze" records; persist both with the clock so
            # recovery still dedupes and the planner keeps its stats
            directory.save_meta({"clock": self.clock.now,
                                 "ledger": self.dedupe_ledger.dump(),
                                 "stats": self.catalog.dump_stats(),
                                 "partitions": self.catalog.dump_partitions()})
        if self.wal is not None:
            self.wal.reset()
        # resident pool workers inherited pre-checkpoint file state;
        # retire them so the next statement forks fresh ones
        if self.parallel_pool is not None:
            self.parallel_pool.recycle()

    def close(self) -> None:
        """Checkpoint and release (no open handles are held otherwise).

        A failed (poisoned) instance skips the checkpoint: its heap has
        diverged from the log and must not overwrite the durable state.
        The resident worker pool is torn down either way — worker
        processes must never outlive the engine.
        """
        self._teardown_parallel_pool()
        if self.failed:
            return
        self.checkpoint()

    def vacuum(self) -> None:
        """Force an MVCC history/commit-map prune (normally automatic
        after each commit; exposed for leak checks and tests)."""
        self._prune_mvcc()

    # -- partition-parallel execution ----------------------------------------------

    def set_parallel_workers(self, workers: int,
                             pool_factory: Callable[[], Any] | None = None,
                             min_rows: int | None = None) -> None:
        """Configure partition-parallel query execution.

        ``workers=1`` (the default) plans exactly as before — no
        Gather operators, no pools. More workers makes the planner
        wrap eligible scans and aggregations in partition-parallel
        Gathers whenever the estimated input clears ``min_rows``
        (default :data:`repro.db.parallel.DEFAULT_MIN_ROWS`).
        ``pool_factory`` overrides how worker pools are obtained — the
        test suites inject :class:`repro.db.parallel.InProcessPool`
        for deterministic, coverage-visible execution; production uses
        forked processes (:class:`repro.db.parallel.ForkPool`).

        The worker count is part of the plan-cache key, so plans built
        under the old setting become unreachable instead of being
        served with the wrong shape; changing ``min_rows`` clears the
        cache outright since the key does not carry it.
        """
        workers = max(1, int(workers))
        if min_rows is not None and min_rows != self.parallel_min_rows:
            self.plan_cache.clear()
            self.parallel_min_rows = int(min_rows)
        self._teardown_parallel_pool()
        self.parallel_workers = workers
        self.parallel_pool_factory = pool_factory
        if workers > 1 and pool_factory is None:
            # one resident pool per setting: workers spawn lazily at
            # the first parallel dispatch and are reused across
            # statements until DDL/checkpoint/repartition recycles
            # them or close()/drain tears the pool down
            self.parallel_pool = parmod.PersistentForkPool(
                workers, engine=self)

    def _teardown_parallel_pool(self) -> None:
        if self.parallel_pool is not None:
            self.parallel_pool.close()
            self.parallel_pool = None

    def parallel_pool_counters(self) -> Optional[dict]:
        """Resident-pool counters (forks/reuse/crashes/respawns and
        live worker pids) for the stats frames; None without a pool."""
        if self.parallel_pool is None:
            return None
        return self.parallel_pool.counters()

    def _parallel_context(self) -> Optional[parmod.ParallelContext]:
        if self.parallel_workers <= 1:
            return None
        pool_factory = self.parallel_pool_factory
        if pool_factory is None:
            # late-bound: cached plans hold their planning context, so
            # the factory must resolve the engine's *current* resident
            # pool at dispatch time (a drained/torn-down pool falls
            # back to fork-per-statement, which stays correct)
            def pool_factory():
                pool = self.parallel_pool
                if pool is not None:
                    return pool
                return parmod.default_pool_factory()
        return parmod.ParallelContext(
            self.parallel_workers, pool_factory,
            self.parallel_min_rows)

    def set_table_partitioning(self, table_name: str, column: str | None,
                               count: int = 0) -> None:
        """Hash-partition a table's heap on ``column`` into ``count``
        buckets (``column=None`` clears the partitioning).

        Partitioning is physical-plan metadata: it never changes the
        table's serialized bytes, only how parallel scans split rowids
        across workers. Like DDL it is autocommit-only, is WAL-logged
        (``{"op": "partition", ...}``) so it survives a crash, and is
        persisted in the checkpoint meta once the WAL resets.
        """
        self._ensure_usable()
        if self.mvcc.has_active():
            raise TransactionError(
                "cannot change partitioning during an open transaction")
        table = self.catalog.get_table(table_name)
        if column is None:
            table.clear_partitioning()
            record = {"op": "partition", "table": table.name,
                      "column": None, "count": 0}
        else:
            table.set_partitioning(column, count)
            spec = table.partition_spec
            record = {"op": "partition", "table": table.name,
                      "column": spec.column, "count": spec.count}
        # the partition epoch invalidates cached plans (a cached
        # co-partitioned join must not outlive the specs it was
        # planned against) and re-syncs resident pool workers
        self.partition_epoch += 1
        # partition-scan segments are keyed per rowid list; repartition
        # changes every list, so drop them rather than let signature
        # validation discover it one miss at a time
        self.scan_cache.invalidate_table(table.name)
        self._log_ddl(record)
        self._commit_wal_batch()

    # -- SELECT --------------------------------------------------------------------

    def _execute_select(self, select: ast.Select,
                        track_lineage: bool) -> StatementResult:
        planned = plan_select(select, self.catalog, track_lineage,
                              parallel=self._parallel_context())
        return self._run_planned_select(planned)

    def _materialize_root(self, root) -> tuple[list[tuple], list[frozenset]]:
        """Pull an operator tree to completion.

        Batch plans drain whole :class:`RowBatch`es — the result
        rows/lineages are identical to row iteration, without paying a
        generator round-trip per tuple. An installed statement
        deadline (:meth:`statement_deadline`) is checked between
        batches, which is what lets the server cancel runaway scans
        mid-statement."""
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        check = self._deadline is not None
        if isinstance(root, BatchOperator):
            for batch in root.batches():
                if check:
                    self._check_deadline()
                rows.extend(batch.rows())
                gathered = batch.gathered_lineages()
                if gathered is None:
                    lineages.extend([EMPTY_LINEAGE] * len(batch))
                else:
                    lineages.extend(gathered)
        else:
            pending = 0
            for values, lineage in root:
                rows.append(values)
                lineages.append(lineage)
                if check:
                    pending += 1
                    if pending >= 1024:
                        pending = 0
                        self._check_deadline()
        return rows, lineages

    def _run_planned_select(self, planned: PlannedQuery) -> StatementResult:
        """Pull a planned operator tree to completion. Plans are
        re-iterable (scans read current table state on each run), which
        is what makes serving them from the cache sound."""
        rows, lineages = self._materialize_root(planned.root)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=list(planned.source_tables))

    def _execute_setop(self, setop: ast.SetOp,
                       track_lineage: bool) -> StatementResult:
        from repro.db.planner import plan_setop

        planned = plan_setop(setop, self.catalog, track_lineage,
                             parallel=self._parallel_context())
        rows, lineages = self._materialize_root(planned.root)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=planned.source_tables)

    def _execute_explain(self, explain: ast.Explain) -> StatementResult:
        from repro.db.executor import instrument_plan
        from repro.db.planner import analyze_stats, explain_plan

        # always planned fresh, never from the cache: ANALYZE rewires
        # the tree in place with Instrumented wrappers. ANALYZE also
        # plans unfused so each Scan/Filter/Project keeps its own node
        # (and measurement) in the tree.
        planned = plan_select(explain.query, self.catalog, False,
                              fuse=not explain.analyze,
                              parallel=self._parallel_context())
        root = planned.root
        stats: dict[str, Any] = {}
        if explain.analyze:
            root = instrument_plan(root, self.timer)
            for _ in root:  # run the query, discarding its output
                pass
            operators = analyze_stats(root)
            stats["analyze"] = {
                "operators": operators,
                "rows": operators[0]["rows"] if operators else 0,
                "total_seconds": (operators[0]["seconds"]
                                  if operators else 0.0),
            }
            pool_counters = self.parallel_pool_counters()
            if pool_counters is not None:
                stats["analyze"]["parallel_pool"] = pool_counters
            stats["analyze"]["scan_cache"] = self.scan_cache.counters()
        lines = explain_plan(root)
        return StatementResult(
            kind="explain",
            schema=Schema([Column("plan", SQLType.TEXT)]),
            rows=[(line,) for line in lines],
            lineages=[EMPTY_LINEAGE] * len(lines),
            rowcount=len(lines),
            source_tables=planned.source_tables,
            stats=stats)

    # -- INSERT --------------------------------------------------------------------

    def _execute_insert(self, insert: ast.Insert, provenance: bool,
                        session: Session) -> StatementResult:
        table = self.catalog.get_table(insert.table)
        result = StatementResult(kind="insert")
        if insert.query is not None:
            planned = plan_select(insert.query, self.catalog, provenance)
            source_rows = [(values, lineage)
                           for values, lineage in planned.root]
            result.source_tables = planned.source_tables
        else:
            evaluator = Evaluator(Schema([]))
            source_rows = []
            for expression_row in insert.rows:
                values = tuple(evaluator.evaluate(expression, ())
                               for expression in expression_row)
                source_rows.append((values, EMPTY_LINEAGE))
        positions = self._column_positions(table, insert.columns)
        tick = self.clock.tick()
        context = session.txn
        for values, lineage in source_rows:
            full_values = self._spread_values(table, positions, values)
            if context is None:
                rowid = table.insert(full_values, tick)
                self._log_put(table, rowid)
            else:
                rowid = self._overlay_insert(context, table,
                                             full_values, tick)
            ref = TupleRef(table.name, rowid, tick)
            result.written.append(ref)
            result.written_lineage[ref] = lineage
        result.rowcount = len(source_rows)
        return result

    def _column_positions(self, table: HeapTable,
                          columns: tuple[str, ...]) -> list[int] | None:
        if not columns:
            return None
        return [table.schema.index_of(name) for name in columns]

    def _spread_values(self, table: HeapTable,
                       positions: list[int] | None,
                       values: tuple) -> tuple:
        if positions is None:
            if len(values) != len(table.schema):
                raise ExecutionError(
                    f"INSERT has {len(values)} values for "
                    f"{len(table.schema)} columns")
            return values
        if len(values) != len(positions):
            raise ExecutionError("INSERT column/value count mismatch")
        full: list[Any] = [None] * len(table.schema)
        for position, value in zip(positions, values):
            full[position] = value
        return tuple(full)

    # -- UPDATE / DELETE --------------------------------------------------------------

    def _matching_rows(
            self, table: HeapTable, where: Optional[ast.Expression]
    ) -> list[tuple[int, tuple, int]]:
        """``(rowid, values, version)`` of the rows a DML statement
        targets — read through the ambient view, so inside a
        transaction this is the snapshot merged with the write-set."""
        evaluator = Evaluator(table.schema.qualified(table.name))
        matched = []
        for rowid, values, version in table.scan_versions():
            if where is None or evaluator.matches(where, values):
                matched.append((rowid, values, version))
        return matched

    def _execute_update(self, update: ast.Update,
                        session: Session) -> StatementResult:
        table = self.catalog.get_table(update.table)
        evaluator = Evaluator(table.schema.qualified(table.name))
        assignment_positions = [
            (table.schema.index_of(name), expression)
            for name, expression in update.assignments]
        matched = self._matching_rows(table, update.where)
        result = StatementResult(kind="update",
                                 source_tables=[table.name])
        if not matched:
            return result
        tick = self.clock.tick()
        context = session.txn
        for rowid, old_values, old_version in matched:
            new_values = list(old_values)
            for position, expression in assignment_positions:
                new_values[position] = evaluator.evaluate(
                    expression, old_values)
            if context is None:
                table.update(rowid, tuple(new_values), tick)
                self._log_put(table, rowid)
            else:
                self._overlay_update(context, table, rowid, old_version,
                                     tuple(new_values), tick)
            old_ref = TupleRef(table.name, rowid, old_version)
            new_ref = TupleRef(table.name, rowid, tick)
            result.written.append(new_ref)
            result.written_lineage[new_ref] = frozenset((old_ref,))
        result.rowcount = len(matched)
        return result

    def _execute_delete(self, delete: ast.Delete,
                        session: Session) -> StatementResult:
        table = self.catalog.get_table(delete.table)
        matched = self._matching_rows(table, delete.where)
        result = StatementResult(kind="delete",
                                 source_tables=[table.name])
        if not matched:
            return result
        tick = self.clock.tick()
        context = session.txn
        for rowid, old_values, old_version in matched:
            if context is None:
                table.delete(rowid, tick)
                self._log_delete(table, rowid)
            else:
                self._overlay_delete(context, table, rowid,
                                     old_version, tick)
            result.deleted.append(TupleRef(table.name, rowid, old_version))
        result.rowcount = len(matched)
        return result

    # -- transactional write-set helpers ------------------------------------------

    def _overlay_insert(self, context: TransactionContext,
                        table: HeapTable, values: tuple,
                        tick: int) -> int:
        """Buffer an INSERT in the transaction's private write-set.

        The rowid is reserved from the shared counter immediately so
        concurrent transactions never collide (aborts leave gaps,
        which rowids explicitly permit).
        """
        row = coerce_row(values, table.schema)
        self._check_overlay_pk(context, table, None, row)
        rowid = table.next_rowid
        table.next_rowid += 1
        overlay = context.overlay_for(table.name, create=True)
        overlay.upserts[rowid] = (row, tick)
        overlay.base_versions.setdefault(rowid, None)
        return rowid

    def _overlay_update(self, context: TransactionContext,
                        table: HeapTable, rowid: int, seen_version: int,
                        values: tuple, tick: int) -> None:
        row = coerce_row(values, table.schema)
        overlay = context.overlay_for(table.name, create=True)
        if rowid not in overlay.upserts:
            # first touch of a committed row: it must still be exactly
            # the version our snapshot read, else somebody committed
            # in between and the first committer has already won
            if table.versions.get(rowid) != seen_version:
                raise WriteConflictError(
                    f"row {rowid} of table {table.name!r} was modified "
                    f"by a concurrent transaction")
            overlay.base_versions.setdefault(rowid, seen_version)
        self._check_overlay_pk(context, table, rowid, row)
        overlay.upserts[rowid] = (row, tick)

    def _overlay_delete(self, context: TransactionContext,
                        table: HeapTable, rowid: int, seen_version: int,
                        tick: int) -> None:
        overlay = context.overlay_for(table.name, create=True)
        if rowid in overlay.upserts:
            del overlay.upserts[rowid]
            if overlay.base_versions.get(rowid) is None:
                # born and deleted inside this transaction: no trace
                overlay.base_versions.pop(rowid, None)
            else:
                overlay.deletes[rowid] = tick
            return
        if table.versions.get(rowid) != seen_version:
            raise WriteConflictError(
                f"row {rowid} of table {table.name!r} was modified "
                f"by a concurrent transaction")
        overlay.base_versions.setdefault(rowid, seen_version)
        overlay.deletes[rowid] = tick

    def _check_overlay_pk(self, context: TransactionContext,
                          table: HeapTable, rowid: Optional[int],
                          row: tuple) -> None:
        """Primary-key admission for a buffered write: duplicates
        visible at the snapshot (or inside the write-set) are integrity
        errors; keys taken by not-yet-visible concurrent commits are
        write conflicts (retrying with a fresh snapshot reports them
        properly)."""
        key = table.pk_key(row)
        if key is None:
            return
        overlay = context.overlay_for(table.name, create=True)
        for other, (other_row, _tick) in overlay.upserts.items():
            if other != rowid and table.pk_key(other_row) == key:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {table.name}")
        holder = table.pk_holder(key)
        if holder is None or holder == rowid:
            return
        if holder in overlay.deletes or holder in overlay.upserts:
            # we delete that row, or move its key away, in this txn
            return
        view = table.active_view()
        found = table.visible_version(holder, view) if view else None
        if found is not None and table.pk_key(found[0]) == key:
            raise IntegrityError(
                f"duplicate primary key {key!r} in table {table.name}")
        raise WriteConflictError(
            f"primary key {key!r} in table {table.name!r} was taken "
            f"by a concurrent transaction")

    # -- DDL / COPY --------------------------------------------------------------------

    def _execute_create(self, create: ast.CreateTable) -> StatementResult:
        columns = [
            Column(
                name=definition.name.lower(),
                sql_type=SQLType.from_name(definition.type_name),
                not_null=definition.not_null or definition.primary_key,
                primary_key=definition.primary_key,
            )
            for definition in create.columns
        ]
        existed = self.catalog.has_table(create.table)
        table = self.catalog.create_table(
            create.table, Schema(columns), create.if_not_exists)
        if not existed:
            self.plan_cache.clear()
            self._touched_tables.add(table.name)
            self._log_ddl({"op": "create_table", "table": table.name,
                           "columns": schema_to_wire(table.schema)})
        return StatementResult(kind="create")

    def _execute_drop_table(self, drop: ast.DropTable) -> StatementResult:
        existed = self.catalog.has_table(drop.table)
        self.catalog.drop_table(drop.table, drop.if_exists)
        if existed:
            self.plan_cache.clear()
            key = drop.table.lower()
            self._dropped_tables.add(key)
            self._touched_tables.discard(key)
            self._log_ddl({"op": "drop_table", "table": key})
        return StatementResult(kind="drop")

    def _execute_create_index(self,
                              create: ast.CreateIndex) -> StatementResult:
        if self.catalog.has_index(create.name):
            if create.if_not_exists:
                return StatementResult(kind="create")
            raise CatalogError(f"index {create.name!r} already exists")
        table = self.catalog.get_table(create.table)
        index = table.create_index(create.name, create.column,
                                   create.if_not_exists)
        self.catalog.bump_version()
        self.plan_cache.clear()
        # index DDL changes the cost landscape: drop cached segments so
        # the planner's cached-scan discount restarts from a cold cache
        self.scan_cache.invalidate_table(table.name)
        self._touched_tables.add(table.name)
        self._log_ddl({"op": "create_index", "table": table.name,
                       "name": index.name, "column": index.column})
        return StatementResult(kind="create",
                               source_tables=[table.name])

    def _execute_drop_index(self, drop: ast.DropIndex) -> StatementResult:
        if not self.catalog.has_index(drop.name):
            if drop.if_exists:
                return StatementResult(kind="drop")
            raise CatalogError(f"index {drop.name!r} does not exist")
        table = self.catalog.table_of_index(drop.name)
        table.drop_index(drop.name)
        self.catalog.bump_version()
        self.plan_cache.clear()
        self.scan_cache.invalidate_table(table.name)
        self._touched_tables.add(table.name)
        self._log_ddl({"op": "drop_index", "name": drop.name.lower()})
        return StatementResult(kind="drop", source_tables=[table.name])

    def _execute_analyze(self, analyze: ast.Analyze) -> StatementResult:
        """Collect planner statistics for one table (or all of them).

        Runs like DDL: autocommit only, scanning the committed heap.
        The new statistics are WAL-logged (an ``"analyze"`` record per
        table) so they survive a crash, and the stats-version bump
        ages every cached plan out of the plan cache; the explicit
        clear below just reclaims the memory immediately.
        """
        names = ([analyze.table.lower()] if analyze.table is not None
                 else self.catalog.table_names())
        summary: dict[str, Any] = {}
        for name in names:
            table = self.catalog.get_table(name)
            table_stats = compute_table_stats(table)
            self.catalog.set_stats(table.name, table_stats)
            self._log_ddl({"op": "analyze", "table": table.name,
                           "stats": table_stats.to_dict()})
            summary[table.name] = {
                "row_count": table_stats.row_count,
                "columns": len(table_stats.columns),
            }
        self.plan_cache.clear()
        # statistics moved: strand cached segments so subsequent plans
        # are costed against a cold cache, not yesterday's residency
        self.scan_cache.invalidate_all()
        return StatementResult(kind="analyze", rowcount=len(names),
                               source_tables=list(names),
                               stats={"analyzed": summary})

    def _execute_copy_from(self, copy: ast.CopyFrom,
                           session: Session) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        text = self.read_file(copy.path)
        rows = csvio.parse_rows(text, table.schema,
                                header=copy.header,
                                delimiter=copy.delimiter)
        tick = self.clock.tick()
        context = session.txn
        result = StatementResult(kind="copy", source_tables=[table.name])
        for values in rows:
            if context is None:
                rowid = table.insert(values, tick)
                self._log_put(table, rowid)
            else:
                rowid = self._overlay_insert(context, table,
                                             tuple(values), tick)
            result.written.append(TupleRef(table.name, rowid, tick))
        result.rowcount = len(result.written)
        return result

    def _execute_copy_to(self, copy: ast.CopyTo) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        exported = [values for _rowid, values in table.scan()]
        text = csvio.format_rows(exported, table.schema,
                                 header=copy.header,
                                 delimiter=copy.delimiter)
        self.write_file(copy.path, text)
        return StatementResult(kind="copy", rowcount=len(exported),
                               source_tables=[table.name])

    # -- transactions --------------------------------------------------------------------

    def _execute_begin(self, session: Session) -> StatementResult:
        if session.txn is not None:
            raise TransactionError("transaction already in progress")
        context = TransactionContext(self._next_txn_id, self.clock.now)
        self._next_txn_id += 1
        session.txn = context
        self.mvcc.begin(context.txn_id, context.snapshot)
        return StatementResult(kind="txn")

    def _execute_commit(self, session: Session) -> StatementResult:
        """Validate and publish the transaction's write-set.

        First-committer-wins validation runs before a single shared
        structure is touched; on conflict the raised
        :class:`WriteConflictError` makes ``execute_statement`` abort
        the transaction, so a failed COMMIT leaves no partial state.
        The apply phase detaches every overwritten committed row (the
        pre-images join the history chains for still-open snapshots),
        then installs the write-set and logs it as one WAL batch —
        committed atomically by the autocommit epilogue's single
        commit-marker + fsync. Finally the provisional statement ticks
        are mapped to one fresh commit tick, which is the instant the
        writes become visible to later snapshots.
        """
        context = session.txn
        if context is None:
            raise TransactionError("no transaction in progress")
        self._check_conflicts(context)
        writes = {name: overlay
                  for name, overlay in context.overlays.items()
                  if not overlay.empty}
        session.txn = None  # the epilogue now commits the WAL batch
        if writes:
            commit_tick = self.clock.tick()
            provisional: set[int] = set()
            for name in sorted(writes):
                overlay = writes[name]
                table = self.catalog.get_table(name)
                # detach phase: pre-images of updated rows move into
                # the history chains (ending at the statement's tick)
                # and free their PK/index slots, so the install phase
                # cannot trip over transient in-transaction PK moves
                for rowid in sorted(overlay.upserts):
                    if rowid in table.rows:
                        table.delete(rowid, overlay.upserts[rowid][1])
                for rowid in sorted(overlay.deletes):
                    tick = overlay.deletes[rowid]
                    table.delete(rowid, tick)
                    self._log_delete(table, rowid)
                    provisional.add(tick)
                for rowid in sorted(overlay.upserts):
                    row, tick = overlay.upserts[rowid]
                    table.put_row(rowid, row, tick)
                    self._log_put(table, rowid)
                    provisional.add(tick)
            self.mvcc.register_commit(provisional, commit_tick)
        self.mvcc.end(context.txn_id)
        self._prune_mvcc()
        return StatementResult(kind="txn")

    def _execute_rollback(self, session: Session) -> StatementResult:
        if session.txn is None:
            raise TransactionError("no transaction in progress")
        # the write-set was private: dropping it *is* the rollback —
        # no shared structure (heap, indexes, WAL) ever saw it
        self._abort_transaction(session)
        return StatementResult(kind="txn")

    def _abort_transaction(self, session: Session) -> None:
        context = session.txn
        session.txn = None
        if context is not None:
            self.mvcc.end(context.txn_id)
            self._prune_mvcc()

    def _check_conflicts(self, context: TransactionContext) -> None:
        """First-committer-wins validation at COMMIT.

        Re-checks every base version recorded at write time (eager
        checks cannot see commits that happen *after* the write), and
        re-validates primary keys against the committed state so the
        apply phase cannot fail halfway."""
        for name in sorted(context.overlays):
            overlay = context.overlays[name]
            if overlay.empty:
                continue
            if not self.catalog.has_table(name):
                raise WriteConflictError(
                    f"table {name!r} was dropped while the "
                    f"transaction was open")
            table = self.catalog.get_table(name)
            for rowid, base in sorted(overlay.base_versions.items()):
                if base is None:
                    continue
                if table.versions.get(rowid) != base:
                    raise WriteConflictError(
                        f"row {rowid} of table {name!r} was modified "
                        f"by a concurrent transaction")
            seen_keys: dict[tuple, int] = {}
            for rowid in sorted(overlay.upserts):
                key = table.pk_key(overlay.upserts[rowid][0])
                if key is None:
                    continue
                if key in seen_keys:
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table {name}")
                seen_keys[key] = rowid
                holder = table.pk_holder(key)
                if (holder is None or holder == rowid
                        or holder in overlay.deletes
                        or holder in overlay.upserts):
                    continue
                raise WriteConflictError(
                    f"primary key {key!r} in table {name!r} was taken "
                    f"by a concurrent transaction")

    def _prune_mvcc(self) -> None:
        """Garbage-collect history chains and commit-map entries no
        remaining snapshot can observe (everything, when idle)."""
        minimum = self.mvcc.min_active_snapshot()
        for table in self.catalog:
            table.prune_history(minimum, self.mvcc.commit_stamp)
        self.mvcc.prune()
