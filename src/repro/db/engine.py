"""The Database façade: parse → plan → execute.

:class:`Database` owns a :class:`Catalog`, an optional on-disk data
directory, and a :class:`LogicalClock` used to stamp tuple versions.
``execute`` runs one statement and returns a :class:`StatementResult`
that carries, besides rows, the full write provenance of DML:

* ``written`` — the tuple versions the statement created,
* ``written_lineage`` — for each written version, the set of tuple
  versions it was derived from (the *old* version for UPDATE, the
  source-query lineage for INSERT ... SELECT),
* ``deleted`` — the tuple versions removed by DELETE.

Query lineage (Perm's Lineage) is produced when the statement is
``SELECT PROVENANCE ...`` or when ``provenance=True`` is passed.

Transactions use an undo log: BEGIN starts recording inverse
operations; ROLLBACK replays them in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.clockwork import LogicalClock
from repro.db import csvio
from repro.db.catalog import Catalog
from repro.db.executor import MaterializedSource
from repro.db.expressions import Evaluator
from repro.db.planner import PlannedQuery, plan_select
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.sql import ast
from repro.db.sql.parser import parse_sql
from repro.db.subquery import expand_statement
from repro.db.storage import DataDirectory, HeapTable
from repro.db.types import Column, Schema, SQLType
from repro.errors import (
    CatalogError,
    ExecutionError,
    SQLSyntaxError,
    TransactionError,
)


@dataclass
class StatementResult:
    """The outcome of executing one SQL statement."""

    kind: str  # select | insert | update | delete | create | drop | copy | txn
    schema: Schema = field(default_factory=lambda: Schema([]))
    rows: list[tuple] = field(default_factory=list)
    lineages: list[frozenset] = field(default_factory=list)
    rowcount: int = 0
    written: list[TupleRef] = field(default_factory=list)
    written_lineage: dict[TupleRef, frozenset] = field(default_factory=dict)
    deleted: list[TupleRef] = field(default_factory=list)
    source_tables: list[str] = field(default_factory=list)

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names()


class _UndoLog:
    """Inverse operations recorded during an open transaction."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []

    def record_insert(self, table: str, rowid: int) -> None:
        self.entries.append(("insert", table, rowid))

    def record_update(self, table: str, rowid: int,
                      old_values: tuple, old_version: int) -> None:
        self.entries.append(("update", table, rowid, old_values, old_version))

    def record_delete(self, table: str, rowid: int,
                      old_values: tuple, old_version: int) -> None:
        self.entries.append(("delete", table, rowid, old_values, old_version))


class Database:
    """An embedded database instance.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id integer, name text)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'a')")
    >>> db.query("SELECT name FROM t WHERE id = 1")
    [('a',)]
    """

    def __init__(self, data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 autoflush: bool = False) -> None:
        directory = (DataDirectory(data_directory)
                     if data_directory is not None else None)
        self.catalog = Catalog(directory)
        self.clock = clock if clock is not None else LogicalClock()
        self.autoflush = autoflush
        self._undo: Optional[_UndoLog] = None
        # file access hooks so a virtual OS can interpose COPY I/O
        self.read_file: Callable[[str], str] = (
            lambda path: Path(path).read_text())
        self.write_file: Callable[[str, str], None] = (
            lambda path, text: Path(path).write_text(text))

    # -- public API --------------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False) -> StatementResult:
        """Execute exactly one SQL statement."""
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise SQLSyntaxError(
                f"execute() expects one statement, got {len(statements)}")
        return self.execute_statement(statements[0], provenance)

    def execute_script(self, sql: str) -> list[StatementResult]:
        """Execute a multi-statement script, returning all results."""
        return [self.execute_statement(statement, False)
                for statement in parse_sql(sql)]

    def query(self, sql: str) -> list[tuple]:
        """Shorthand: run a SELECT and return the rows."""
        result = self.execute(sql)
        if result.kind != "select":
            raise ExecutionError("query() requires a SELECT statement")
        return result.rows

    def execute_statement(self, statement: ast.Statement,
                          provenance: bool = False) -> StatementResult:
        extra_lineage: frozenset = EMPTY_LINEAGE
        if isinstance(statement, (ast.Select, ast.SetOp, ast.Update,
                                  ast.Delete, ast.Insert)):
            # DML always records write provenance, so its subqueries
            # must track lineage too; queries only when asked
            track = (provenance
                     or bool(getattr(statement, "provenance", False))
                     or isinstance(statement, (ast.Update, ast.Delete,
                                               ast.Insert)))
            statement, extra_lineage = expand_statement(
                statement, self._run_subquery, track)
        result = self._dispatch_statement(statement, provenance)
        if extra_lineage:
            result.lineages = [lineage | extra_lineage
                               for lineage in result.lineages]
            result.written_lineage = {
                ref: deps | extra_lineage
                for ref, deps in result.written_lineage.items()}
        return result

    def _run_subquery(self, select: ast.Select, track_lineage: bool):
        result = self._execute_select(select, track_lineage)
        return result.rows, result.lineages

    def _dispatch_statement(self, statement: ast.Statement,
                            provenance: bool) -> StatementResult:
        if isinstance(statement, ast.Select):
            return self._execute_select(
                statement, provenance or statement.provenance)
        if isinstance(statement, ast.SetOp):
            return self._execute_setop(statement, provenance)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, provenance)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTable):
            self.catalog.drop_table(statement.table, statement.if_exists)
            return StatementResult(kind="drop")
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.CopyFrom):
            return self._execute_copy_from(statement)
        if isinstance(statement, ast.CopyTo):
            return self._execute_copy_to(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        if isinstance(statement, ast.Begin):
            return self._execute_begin()
        if isinstance(statement, ast.Commit):
            return self._execute_commit()
        if isinstance(statement, ast.Rollback):
            return self._execute_rollback()
        raise ExecutionError(
            f"unsupported statement type {type(statement).__name__}")

    def checkpoint(self) -> None:
        """Flush all tables to the data directory."""
        self.catalog.flush()

    def close(self) -> None:
        """Checkpoint and release (no open handles are held otherwise)."""
        self.checkpoint()

    # -- SELECT --------------------------------------------------------------------

    def _execute_select(self, select: ast.Select,
                        track_lineage: bool) -> StatementResult:
        planned = plan_select(select, self.catalog, track_lineage)
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        for values, lineage in planned.root:
            rows.append(values)
            lineages.append(lineage)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=planned.source_tables)

    def _execute_setop(self, setop: ast.SetOp,
                       track_lineage: bool) -> StatementResult:
        from repro.db.planner import plan_setop

        planned = plan_setop(setop, self.catalog, track_lineage)
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        for values, lineage in planned.root:
            rows.append(values)
            lineages.append(lineage)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=planned.source_tables)

    def _execute_explain(self, explain: ast.Explain) -> StatementResult:
        from repro.db.planner import explain_plan

        planned = plan_select(explain.query, self.catalog, False)
        lines = explain_plan(planned.root)
        return StatementResult(
            kind="explain",
            schema=Schema([Column("plan", SQLType.TEXT)]),
            rows=[(line,) for line in lines],
            lineages=[EMPTY_LINEAGE] * len(lines),
            rowcount=len(lines),
            source_tables=planned.source_tables)

    # -- INSERT --------------------------------------------------------------------

    def _execute_insert(self, insert: ast.Insert,
                        provenance: bool) -> StatementResult:
        table = self.catalog.get_table(insert.table)
        result = StatementResult(kind="insert")
        if insert.query is not None:
            planned = plan_select(insert.query, self.catalog, provenance)
            source_rows = [(values, lineage)
                           for values, lineage in planned.root]
            result.source_tables = planned.source_tables
        else:
            evaluator = Evaluator(Schema([]))
            source_rows = []
            for expression_row in insert.rows:
                values = tuple(evaluator.evaluate(expression, ())
                               for expression in expression_row)
                source_rows.append((values, EMPTY_LINEAGE))
        positions = self._column_positions(table, insert.columns)
        tick = self.clock.tick()
        for values, lineage in source_rows:
            full_values = self._spread_values(table, positions, values)
            rowid = table.insert(full_values, tick)
            if self._undo is not None:
                self._undo.record_insert(table.name, rowid)
            ref = TupleRef(table.name, rowid, tick)
            result.written.append(ref)
            result.written_lineage[ref] = lineage
        result.rowcount = len(source_rows)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return result

    def _column_positions(self, table: HeapTable,
                          columns: tuple[str, ...]) -> list[int] | None:
        if not columns:
            return None
        return [table.schema.index_of(name) for name in columns]

    def _spread_values(self, table: HeapTable,
                       positions: list[int] | None,
                       values: tuple) -> tuple:
        if positions is None:
            if len(values) != len(table.schema):
                raise ExecutionError(
                    f"INSERT has {len(values)} values for "
                    f"{len(table.schema)} columns")
            return values
        if len(values) != len(positions):
            raise ExecutionError("INSERT column/value count mismatch")
        full: list[Any] = [None] * len(table.schema)
        for position, value in zip(positions, values):
            full[position] = value
        return tuple(full)

    # -- UPDATE / DELETE --------------------------------------------------------------

    def _matching_rows(self, table: HeapTable,
                       where: Optional[ast.Expression]) -> list[tuple[int, tuple]]:
        evaluator = Evaluator(table.schema.qualified(table.name))
        matched = []
        for rowid, values in table.scan():
            if where is None or evaluator.matches(where, values):
                matched.append((rowid, values))
        return matched

    def _execute_update(self, update: ast.Update) -> StatementResult:
        table = self.catalog.get_table(update.table)
        evaluator = Evaluator(table.schema.qualified(table.name))
        assignment_positions = [
            (table.schema.index_of(name), expression)
            for name, expression in update.assignments]
        matched = self._matching_rows(table, update.where)
        result = StatementResult(kind="update",
                                 source_tables=[table.name])
        if not matched:
            return result
        tick = self.clock.tick()
        for rowid, old_values in matched:
            old_version = table.version_of(rowid)
            new_values = list(old_values)
            for position, expression in assignment_positions:
                new_values[position] = evaluator.evaluate(
                    expression, old_values)
            table.update(rowid, tuple(new_values), tick)
            if self._undo is not None:
                self._undo.record_update(
                    table.name, rowid, old_values, old_version)
            old_ref = TupleRef(table.name, rowid, old_version)
            new_ref = TupleRef(table.name, rowid, tick)
            result.written.append(new_ref)
            result.written_lineage[new_ref] = frozenset((old_ref,))
        result.rowcount = len(matched)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return result

    def _execute_delete(self, delete: ast.Delete) -> StatementResult:
        table = self.catalog.get_table(delete.table)
        matched = self._matching_rows(table, delete.where)
        result = StatementResult(kind="delete",
                                 source_tables=[table.name])
        for rowid, old_values in matched:
            old_version = table.version_of(rowid)
            table.delete(rowid)
            if self._undo is not None:
                self._undo.record_delete(
                    table.name, rowid, old_values, old_version)
            result.deleted.append(TupleRef(table.name, rowid, old_version))
        result.rowcount = len(matched)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return result

    # -- DDL / COPY --------------------------------------------------------------------

    def _execute_create(self, create: ast.CreateTable) -> StatementResult:
        columns = [
            Column(
                name=definition.name.lower(),
                sql_type=SQLType.from_name(definition.type_name),
                not_null=definition.not_null or definition.primary_key,
                primary_key=definition.primary_key,
            )
            for definition in create.columns
        ]
        self.catalog.create_table(
            create.table, Schema(columns), create.if_not_exists)
        if self.autoflush:
            self.catalog.flush_table(create.table)
        return StatementResult(kind="create")

    def _execute_create_index(self,
                              create: ast.CreateIndex) -> StatementResult:
        if self.catalog.has_index(create.name):
            if create.if_not_exists:
                return StatementResult(kind="create")
            raise CatalogError(f"index {create.name!r} already exists")
        table = self.catalog.get_table(create.table)
        table.create_index(create.name, create.column,
                           create.if_not_exists)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return StatementResult(kind="create",
                               source_tables=[table.name])

    def _execute_drop_index(self, drop: ast.DropIndex) -> StatementResult:
        if not self.catalog.has_index(drop.name):
            if drop.if_exists:
                return StatementResult(kind="drop")
            raise CatalogError(f"index {drop.name!r} does not exist")
        table = self.catalog.table_of_index(drop.name)
        table.drop_index(drop.name)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return StatementResult(kind="drop", source_tables=[table.name])

    def _execute_copy_from(self, copy: ast.CopyFrom) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        text = self.read_file(copy.path)
        rows = csvio.parse_rows(text, table.schema,
                                header=copy.header,
                                delimiter=copy.delimiter)
        tick = self.clock.tick()
        result = StatementResult(kind="copy", source_tables=[table.name])
        for values in rows:
            rowid = table.insert(values, tick)
            if self._undo is not None:
                self._undo.record_insert(table.name, rowid)
            result.written.append(TupleRef(table.name, rowid, tick))
        result.rowcount = len(result.written)
        if self.autoflush:
            self.catalog.flush_table(table.name)
        return result

    def _execute_copy_to(self, copy: ast.CopyTo) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        text = csvio.format_rows(
            (values for _rowid, values in table.scan()),
            table.schema, header=copy.header, delimiter=copy.delimiter)
        self.write_file(copy.path, text)
        return StatementResult(kind="copy", rowcount=table.row_count,
                               source_tables=[table.name])

    # -- transactions --------------------------------------------------------------------

    def _execute_begin(self) -> StatementResult:
        if self._undo is not None:
            raise TransactionError("transaction already in progress")
        self._undo = _UndoLog()
        return StatementResult(kind="txn")

    def _execute_commit(self) -> StatementResult:
        if self._undo is None:
            raise TransactionError("no transaction in progress")
        self._undo = None
        if self.autoflush:
            self.catalog.flush()
        return StatementResult(kind="txn")

    def _execute_rollback(self) -> StatementResult:
        if self._undo is None:
            raise TransactionError("no transaction in progress")
        undo = self._undo
        self._undo = None  # undo operations must not re-record
        for entry in reversed(undo.entries):
            operation = entry[0]
            table = self.catalog.get_table(entry[1])
            if operation == "insert":
                table.delete(entry[2])
            elif operation == "update":
                _, _, rowid, old_values, old_version = entry
                table.update(rowid, old_values, old_version)
                table.versions[rowid] = old_version
            elif operation == "delete":
                _, _, rowid, old_values, old_version = entry
                restored = table.insert(old_values, old_version)
                # restore original rowid identity
                if restored != rowid:
                    values = table.rows.pop(restored)
                    version = table.versions.pop(restored)
                    table.rows[rowid] = values
                    table.versions[rowid] = version
                    if table._pk_positions:
                        key = tuple(values[i] for i in table._pk_positions)
                        table._pk_index[key] = rowid
        return StatementResult(kind="txn")
