"""The Database façade: parse → plan → execute.

:class:`Database` owns a :class:`Catalog`, an optional on-disk data
directory, and a :class:`LogicalClock` used to stamp tuple versions.
``execute`` runs one statement and returns a :class:`StatementResult`
that carries, besides rows, the full write provenance of DML:

* ``written`` — the tuple versions the statement created,
* ``written_lineage`` — for each written version, the set of tuple
  versions it was derived from (the *old* version for UPDATE, the
  source-query lineage for INSERT ... SELECT),
* ``deleted`` — the tuple versions removed by DELETE.

Query lineage (Perm's Lineage) is produced when the statement is
``SELECT PROVENANCE ...`` or when ``provenance=True`` is passed.

Transactions use an undo log: BEGIN starts recording inverse
operations; ROLLBACK replays them in reverse.

Durability (when a data directory is given): every committed statement
or transaction is flushed to a write-ahead log (:mod:`repro.db.wal`)
*before* any table file is touched, and :meth:`Database.checkpoint`
rewrites table files atomically (temp → fsync → rename) before
resetting the log. Opening a database therefore recovers automatically:
table files are loaded, the WAL's committed records are replayed
idempotently on top, torn or uncommitted log tails are truncated, and
the logical clock resumes past every recovered tick. All file I/O runs
through an injectable :class:`repro.db.fileio.FileIO`, which is how the
fault-injection harness (:mod:`repro.faults`) simulates crashes at
every write, fsync, and rename.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.clockwork import LogicalClock
from repro.db import csvio
from repro.db.catalog import Catalog
from repro.db.executor import MaterializedSource
from repro.db.expressions import Evaluator
from repro.db.planner import PlannedQuery, plan_select
from repro.db.provtypes import EMPTY_LINEAGE, TupleRef
from repro.db.sql import ast
from repro.db.sql.parser import parse_sql
from repro.db.subquery import expand_statement, has_subqueries
from repro.db.fileio import FileIO
from repro.db.storage import DataDirectory, HeapTable
from repro.db.types import (
    Column,
    Schema,
    SQLType,
    value_from_csv,
    value_to_csv,
)
from repro.db.wal import (
    WALRecovery,
    WriteAheadLog,
    schema_from_wire,
    schema_to_wire,
)
from repro.errors import (
    CatalogError,
    DatabaseError,
    ExecutionError,
    SQLSyntaxError,
    TransactionError,
    WALCorruptionError,
)


@dataclass
class StatementResult:
    """The outcome of executing one SQL statement."""

    kind: str  # select | insert | update | delete | create | drop | copy | txn
    schema: Schema = field(default_factory=lambda: Schema([]))
    rows: list[tuple] = field(default_factory=list)
    lineages: list[frozenset] = field(default_factory=list)
    rowcount: int = 0
    written: list[TupleRef] = field(default_factory=list)
    written_lineage: dict[TupleRef, frozenset] = field(default_factory=dict)
    deleted: list[TupleRef] = field(default_factory=list)
    source_tables: list[str] = field(default_factory=list)
    # free-form measurements: EXPLAIN ANALYZE fills "analyze" with
    # per-operator counters, the server adds wire-side timing
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names()


class _UndoLog:
    """Inverse operations recorded during an open transaction."""

    def __init__(self) -> None:
        self.entries: list[tuple] = []

    def record_insert(self, table: str, rowid: int) -> None:
        self.entries.append(("insert", table, rowid))

    def record_update(self, table: str, rowid: int,
                      old_values: tuple, old_version: int) -> None:
        self.entries.append(("update", table, rowid, old_values, old_version))

    def record_delete(self, table: str, rowid: int,
                      old_values: tuple, old_version: int) -> None:
        self.entries.append(("delete", table, rowid, old_values, old_version))


class PlanCache:
    """LRU cache of planned SELECT operator trees.

    Keyed by ``(normalized SQL text, provenance flag, catalog
    version)``. Including the catalog version makes every cached plan
    built against an older schema unreachable the moment any DDL runs
    — DDL handlers additionally :meth:`clear` the cache so stale
    entries do not linger until LRU eviction.

    Only plain SELECT statements without subqueries are cacheable:
    subquery expansion inlines executed results into the AST, which
    depend on table data, not just on the SQL text.

    ``hits`` counts statements served from the cache; ``misses``
    counts cacheable statements that had to be planned (recorded at
    :meth:`put` time, so DML and other non-cacheable statements do not
    inflate the miss counter).
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ExecutionError("plan cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[tuple, PlannedQuery] = OrderedDict()

    @staticmethod
    def normalize(sql: str) -> str:
        """Collapse insignificant whitespace so trivially reformatted
        statements share a cache entry. Statements containing string
        literals are kept verbatim — whitespace inside quotes is
        significant and a lexer-free normalizer cannot tell it apart.
        """
        if "'" in sql:
            return sql.strip()
        return " ".join(sql.split())

    def get(self, key: tuple) -> Optional[PlannedQuery]:
        planned = self._entries.get(key)
        if planned is None:
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return planned

    def put(self, key: tuple, planned: PlannedQuery) -> None:
        self.misses += 1
        self._entries[key] = planned
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries)}

    def __len__(self) -> int:
        return len(self._entries)


class Database:
    """An embedded database instance.

    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id integer, name text)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'a')")
    >>> db.query("SELECT name FROM t WHERE id = 1")
    [('a',)]
    """

    def __init__(self, data_directory: str | Path | None = None,
                 clock: LogicalClock | None = None,
                 autoflush: bool = False,
                 io: FileIO | None = None,
                 timer: Callable[[], float] = time.perf_counter,
                 plan_cache_size: int = 64) -> None:
        self.io = io if io is not None else FileIO()
        directory = (DataDirectory(data_directory, io=self.io)
                     if data_directory is not None else None)
        self.catalog = Catalog(directory)
        self.clock = clock if clock is not None else LogicalClock()
        self.autoflush = autoflush
        self.timer = timer
        self.plan_cache = PlanCache(plan_cache_size)
        self._undo: Optional[_UndoLog] = None
        # WAL batch state: redo records buffered since the last commit
        # marker, and which tables the batch touched/dropped
        self.wal: Optional[WriteAheadLog] = None
        self._wal_dirty = False
        self._touched_tables: set[str] = set()
        self._dropped_tables: set[str] = set()
        self.last_recovery: Optional[WALRecovery] = None
        if directory is not None:
            self.wal = WriteAheadLog(directory.wal_path, io=self.io)
            self.last_recovery = self.wal.open()
            self._replay_recovered(self.last_recovery)
            self._restore_clock(directory, self.last_recovery)
            # recovery may have replayed DDL; plans cached before it
            # (none today — the cache is born empty — but guard the
            # invariant against future pre-warm refactors)
            self.plan_cache.clear()
        # file access hooks so a virtual OS can interpose COPY I/O
        self.read_file: Callable[[str], str] = (
            lambda path: Path(path).read_text())
        self.write_file: Callable[[str, str], None] = (
            lambda path, text: Path(path).write_text(text))

    # -- crash recovery ----------------------------------------------------------

    def _replay_recovered(self, recovery: WALRecovery) -> None:
        """Apply the WAL's committed redo records over the loaded
        table files. Records use absolute row states, so replay is
        idempotent even when a checkpoint already captured some of
        them."""
        for record in recovery.records:
            try:
                self._apply_wal_record(record)
            except DatabaseError as exc:
                raise WALCorruptionError(
                    f"committed WAL record {record!r} cannot be "
                    f"replayed: {exc}") from exc

    def _apply_wal_record(self, record: dict) -> None:
        operation = record["op"]
        if operation == "put":
            table = self.catalog.get_table(record["table"])
            values = tuple(
                value_from_csv(cell, sql_type)
                for cell, sql_type in zip(record["values"],
                                          table.schema.types()))
            table.put_row(record["rowid"], values, record["version"])
        elif operation == "delete":
            self.catalog.get_table(record["table"]).remove_row(
                record["rowid"])
        elif operation == "create_table":
            if not self.catalog.has_table(record["table"]):
                self.catalog.create_table(
                    record["table"], schema_from_wire(record["columns"]))
        elif operation == "drop_table":
            self.catalog.drop_table(record["table"], if_exists=True)
        elif operation == "create_index":
            self.catalog.get_table(record["table"]).create_index(
                record["name"], record["column"], if_not_exists=True)
        elif operation == "drop_index":
            if self.catalog.has_index(record["name"]):
                self.catalog.table_of_index(record["name"]).drop_index(
                    record["name"])
        else:
            raise WALCorruptionError(
                f"unknown WAL operation {operation!r}")

    def _restore_clock(self, directory: DataDirectory,
                       recovery: WALRecovery) -> None:
        """Resume logical time strictly after every recovered tick."""
        target = max(int(directory.load_meta().get("clock", 0)),
                     recovery.last_tick)
        for table in self.catalog:
            if table.versions:
                target = max(target, max(table.versions.values()))
        if target > self.clock.now:
            self.clock.advance(target - self.clock.now)

    # -- WAL batch bookkeeping ---------------------------------------------------

    def _log_put(self, table: HeapTable, rowid: int) -> None:
        self._touched_tables.add(table.name)
        if self.wal is not None:
            self.wal.append({
                "op": "put", "table": table.name, "rowid": rowid,
                "version": table.versions[rowid],
                "values": [value_to_csv(value)
                           for value in table.rows[rowid]],
            })
            self._wal_dirty = True

    def _log_delete(self, table: HeapTable, rowid: int) -> None:
        self._touched_tables.add(table.name)
        if self.wal is not None:
            self.wal.append({"op": "delete", "table": table.name,
                             "rowid": rowid})
            self._wal_dirty = True

    def _log_ddl(self, record: dict) -> None:
        if self.wal is not None:
            self.wal.append(record)
            self._wal_dirty = True

    def _commit_wal_batch(self) -> None:
        """Durably commit the pending batch, then (with autoflush)
        mirror it into the table files — always WAL before data."""
        if self.wal is not None and self._wal_dirty:
            self.wal.commit(self.clock.now)
            self._wal_dirty = False
        if self.autoflush:
            for name in sorted(self._touched_tables):
                if self.catalog.has_table(name):
                    self.catalog.flush_table(name)
            if self._dropped_tables:
                self.catalog.sync_drops()
        self._touched_tables.clear()
        self._dropped_tables.clear()

    def _abort_wal_batch(self) -> None:
        if self.wal is not None:
            self.wal.abort()
        self._wal_dirty = False
        self._touched_tables.clear()
        self._dropped_tables.clear()

    # -- public API --------------------------------------------------------------

    def execute(self, sql: str, provenance: bool = False) -> StatementResult:
        """Execute exactly one SQL statement.

        Repeated SELECT texts hit the plan cache and skip parse+plan
        entirely; see :class:`PlanCache` for the keying rules.
        """
        key = (PlanCache.normalize(sql), bool(provenance),
               self.catalog.version)
        planned = self.plan_cache.get(key)
        if planned is not None:
            return self._run_planned_select(planned)
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise SQLSyntaxError(
                f"execute() expects one statement, got {len(statements)}")
        statement = statements[0]
        if self._plan_cacheable(statement):
            track = provenance or statement.provenance
            planned = plan_select(statement, self.catalog, track)
            self.plan_cache.put(key, planned)
            return self._run_planned_select(planned)
        return self.execute_statement(statement, provenance)

    @staticmethod
    def _plan_cacheable(statement: ast.Statement) -> bool:
        """Plain SELECTs without subqueries may be cached; everything
        else (DML, DDL, UNION, EXPLAIN, subqueries) plans per call."""
        if not isinstance(statement, ast.Select):
            return False
        expressions: list[Optional[ast.Expression]] = [
            statement.where, statement.having]
        expressions.extend(item.expression for item in statement.items)
        expressions.extend(statement.group_by)
        expressions.extend(item.expression for item in statement.order_by)
        for source in statement.sources:
            while isinstance(source, ast.Join):
                expressions.append(source.condition)
                source = source.left
        return not any(has_subqueries(expression)
                       for expression in expressions)

    def execute_script(self, sql: str) -> list[StatementResult]:
        """Execute a multi-statement script, returning all results."""
        return [self.execute_statement(statement, False)
                for statement in parse_sql(sql)]

    def query(self, sql: str) -> list[tuple]:
        """Shorthand: run a SELECT and return the rows."""
        result = self.execute(sql)
        if result.kind != "select":
            raise ExecutionError("query() requires a SELECT statement")
        return result.rows

    def execute_statement(self, statement: ast.Statement,
                          provenance: bool = False) -> StatementResult:
        extra_lineage: frozenset = EMPTY_LINEAGE
        if isinstance(statement, (ast.Select, ast.SetOp, ast.Update,
                                  ast.Delete, ast.Insert)):
            # DML always records write provenance, so its subqueries
            # must track lineage too; queries only when asked
            track = (provenance
                     or bool(getattr(statement, "provenance", False))
                     or isinstance(statement, (ast.Update, ast.Delete,
                                               ast.Insert)))
            statement, extra_lineage = expand_statement(
                statement, self._run_subquery, track)
        try:
            result = self._dispatch_statement(statement, provenance)
        except Exception:
            if self._undo is None:
                # a failed autocommit statement never commits: whatever
                # it logged must not survive recovery
                self._abort_wal_batch()
            raise
        if extra_lineage:
            result.lineages = [lineage | extra_lineage
                               for lineage in result.lineages]
            result.written_lineage = {
                ref: deps | extra_lineage
                for ref, deps in result.written_lineage.items()}
        if self._undo is None:
            # autocommit (or the COMMIT statement itself): make the
            # batch durable before any table file is rewritten
            self._commit_wal_batch()
        return result

    def _run_subquery(self, select: ast.Select, track_lineage: bool):
        result = self._execute_select(select, track_lineage)
        return result.rows, result.lineages

    def _dispatch_statement(self, statement: ast.Statement,
                            provenance: bool) -> StatementResult:
        if isinstance(statement, ast.Select):
            return self._execute_select(
                statement, provenance or statement.provenance)
        if isinstance(statement, ast.SetOp):
            return self._execute_setop(statement, provenance)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, provenance)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.CopyFrom):
            return self._execute_copy_from(statement)
        if isinstance(statement, ast.CopyTo):
            return self._execute_copy_to(statement)
        if isinstance(statement, ast.Explain):
            return self._execute_explain(statement)
        if isinstance(statement, ast.Begin):
            return self._execute_begin()
        if isinstance(statement, ast.Commit):
            return self._execute_commit()
        if isinstance(statement, ast.Rollback):
            return self._execute_rollback()
        raise ExecutionError(
            f"unsupported statement type {type(statement).__name__}")

    def checkpoint(self) -> None:
        """Write a crash-consistent on-disk image.

        Every table file is rewritten atomically (temp → fsync →
        rename), dropped tables' files are removed, the logical clock
        is persisted, and only then is the WAL reset. A crash at any
        intermediate point leaves a directory that recovery repairs:
        the not-yet-reset WAL simply replays (idempotently) on top of
        whichever table files made it.
        """
        if self._undo is not None:
            raise TransactionError(
                "cannot checkpoint during an open transaction")
        self.catalog.flush()
        directory = self.catalog.data_directory
        if directory is not None:
            directory.save_meta({"clock": self.clock.now})
        if self.wal is not None:
            self.wal.reset()

    def close(self) -> None:
        """Checkpoint and release (no open handles are held otherwise)."""
        self.checkpoint()

    # -- SELECT --------------------------------------------------------------------

    def _execute_select(self, select: ast.Select,
                        track_lineage: bool) -> StatementResult:
        planned = plan_select(select, self.catalog, track_lineage)
        return self._run_planned_select(planned)

    def _run_planned_select(self, planned: PlannedQuery) -> StatementResult:
        """Pull a planned operator tree to completion. Plans are
        re-iterable (scans read current table state on each run), which
        is what makes serving them from the cache sound."""
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        for values, lineage in planned.root:
            rows.append(values)
            lineages.append(lineage)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=list(planned.source_tables))

    def _execute_setop(self, setop: ast.SetOp,
                       track_lineage: bool) -> StatementResult:
        from repro.db.planner import plan_setop

        planned = plan_setop(setop, self.catalog, track_lineage)
        rows: list[tuple] = []
        lineages: list[frozenset] = []
        for values, lineage in planned.root:
            rows.append(values)
            lineages.append(lineage)
        return StatementResult(
            kind="select", schema=planned.schema, rows=rows,
            lineages=lineages, rowcount=len(rows),
            source_tables=planned.source_tables)

    def _execute_explain(self, explain: ast.Explain) -> StatementResult:
        from repro.db.executor import instrument_plan
        from repro.db.planner import analyze_stats, explain_plan

        # always planned fresh, never from the cache: ANALYZE rewires
        # the tree in place with Instrumented wrappers
        planned = plan_select(explain.query, self.catalog, False)
        root = planned.root
        stats: dict[str, Any] = {}
        if explain.analyze:
            root = instrument_plan(root, self.timer)
            for _ in root:  # run the query, discarding its output
                pass
            operators = analyze_stats(root)
            stats["analyze"] = {
                "operators": operators,
                "rows": operators[0]["rows"] if operators else 0,
                "total_seconds": (operators[0]["seconds"]
                                  if operators else 0.0),
            }
        lines = explain_plan(root)
        return StatementResult(
            kind="explain",
            schema=Schema([Column("plan", SQLType.TEXT)]),
            rows=[(line,) for line in lines],
            lineages=[EMPTY_LINEAGE] * len(lines),
            rowcount=len(lines),
            source_tables=planned.source_tables,
            stats=stats)

    # -- INSERT --------------------------------------------------------------------

    def _execute_insert(self, insert: ast.Insert,
                        provenance: bool) -> StatementResult:
        table = self.catalog.get_table(insert.table)
        result = StatementResult(kind="insert")
        if insert.query is not None:
            planned = plan_select(insert.query, self.catalog, provenance)
            source_rows = [(values, lineage)
                           for values, lineage in planned.root]
            result.source_tables = planned.source_tables
        else:
            evaluator = Evaluator(Schema([]))
            source_rows = []
            for expression_row in insert.rows:
                values = tuple(evaluator.evaluate(expression, ())
                               for expression in expression_row)
                source_rows.append((values, EMPTY_LINEAGE))
        positions = self._column_positions(table, insert.columns)
        tick = self.clock.tick()
        for values, lineage in source_rows:
            full_values = self._spread_values(table, positions, values)
            rowid = table.insert(full_values, tick)
            self._log_put(table, rowid)
            if self._undo is not None:
                self._undo.record_insert(table.name, rowid)
            ref = TupleRef(table.name, rowid, tick)
            result.written.append(ref)
            result.written_lineage[ref] = lineage
        result.rowcount = len(source_rows)
        return result

    def _column_positions(self, table: HeapTable,
                          columns: tuple[str, ...]) -> list[int] | None:
        if not columns:
            return None
        return [table.schema.index_of(name) for name in columns]

    def _spread_values(self, table: HeapTable,
                       positions: list[int] | None,
                       values: tuple) -> tuple:
        if positions is None:
            if len(values) != len(table.schema):
                raise ExecutionError(
                    f"INSERT has {len(values)} values for "
                    f"{len(table.schema)} columns")
            return values
        if len(values) != len(positions):
            raise ExecutionError("INSERT column/value count mismatch")
        full: list[Any] = [None] * len(table.schema)
        for position, value in zip(positions, values):
            full[position] = value
        return tuple(full)

    # -- UPDATE / DELETE --------------------------------------------------------------

    def _matching_rows(self, table: HeapTable,
                       where: Optional[ast.Expression]) -> list[tuple[int, tuple]]:
        evaluator = Evaluator(table.schema.qualified(table.name))
        matched = []
        for rowid, values in table.scan():
            if where is None or evaluator.matches(where, values):
                matched.append((rowid, values))
        return matched

    def _execute_update(self, update: ast.Update) -> StatementResult:
        table = self.catalog.get_table(update.table)
        evaluator = Evaluator(table.schema.qualified(table.name))
        assignment_positions = [
            (table.schema.index_of(name), expression)
            for name, expression in update.assignments]
        matched = self._matching_rows(table, update.where)
        result = StatementResult(kind="update",
                                 source_tables=[table.name])
        if not matched:
            return result
        tick = self.clock.tick()
        for rowid, old_values in matched:
            old_version = table.version_of(rowid)
            new_values = list(old_values)
            for position, expression in assignment_positions:
                new_values[position] = evaluator.evaluate(
                    expression, old_values)
            table.update(rowid, tuple(new_values), tick)
            self._log_put(table, rowid)
            if self._undo is not None:
                self._undo.record_update(
                    table.name, rowid, old_values, old_version)
            old_ref = TupleRef(table.name, rowid, old_version)
            new_ref = TupleRef(table.name, rowid, tick)
            result.written.append(new_ref)
            result.written_lineage[new_ref] = frozenset((old_ref,))
        result.rowcount = len(matched)
        return result

    def _execute_delete(self, delete: ast.Delete) -> StatementResult:
        table = self.catalog.get_table(delete.table)
        matched = self._matching_rows(table, delete.where)
        result = StatementResult(kind="delete",
                                 source_tables=[table.name])
        for rowid, old_values in matched:
            old_version = table.version_of(rowid)
            table.delete(rowid)
            self._log_delete(table, rowid)
            if self._undo is not None:
                self._undo.record_delete(
                    table.name, rowid, old_values, old_version)
            result.deleted.append(TupleRef(table.name, rowid, old_version))
        result.rowcount = len(matched)
        return result

    # -- DDL / COPY --------------------------------------------------------------------

    def _execute_create(self, create: ast.CreateTable) -> StatementResult:
        columns = [
            Column(
                name=definition.name.lower(),
                sql_type=SQLType.from_name(definition.type_name),
                not_null=definition.not_null or definition.primary_key,
                primary_key=definition.primary_key,
            )
            for definition in create.columns
        ]
        existed = self.catalog.has_table(create.table)
        table = self.catalog.create_table(
            create.table, Schema(columns), create.if_not_exists)
        if not existed:
            self.plan_cache.clear()
            self._touched_tables.add(table.name)
            self._log_ddl({"op": "create_table", "table": table.name,
                           "columns": schema_to_wire(table.schema)})
        return StatementResult(kind="create")

    def _execute_drop_table(self, drop: ast.DropTable) -> StatementResult:
        existed = self.catalog.has_table(drop.table)
        self.catalog.drop_table(drop.table, drop.if_exists)
        if existed:
            self.plan_cache.clear()
            key = drop.table.lower()
            self._dropped_tables.add(key)
            self._touched_tables.discard(key)
            self._log_ddl({"op": "drop_table", "table": key})
        return StatementResult(kind="drop")

    def _execute_create_index(self,
                              create: ast.CreateIndex) -> StatementResult:
        if self.catalog.has_index(create.name):
            if create.if_not_exists:
                return StatementResult(kind="create")
            raise CatalogError(f"index {create.name!r} already exists")
        table = self.catalog.get_table(create.table)
        index = table.create_index(create.name, create.column,
                                   create.if_not_exists)
        self.catalog.bump_version()
        self.plan_cache.clear()
        self._touched_tables.add(table.name)
        self._log_ddl({"op": "create_index", "table": table.name,
                       "name": index.name, "column": index.column})
        return StatementResult(kind="create",
                               source_tables=[table.name])

    def _execute_drop_index(self, drop: ast.DropIndex) -> StatementResult:
        if not self.catalog.has_index(drop.name):
            if drop.if_exists:
                return StatementResult(kind="drop")
            raise CatalogError(f"index {drop.name!r} does not exist")
        table = self.catalog.table_of_index(drop.name)
        table.drop_index(drop.name)
        self.catalog.bump_version()
        self.plan_cache.clear()
        self._touched_tables.add(table.name)
        self._log_ddl({"op": "drop_index", "name": drop.name.lower()})
        return StatementResult(kind="drop", source_tables=[table.name])

    def _execute_copy_from(self, copy: ast.CopyFrom) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        text = self.read_file(copy.path)
        rows = csvio.parse_rows(text, table.schema,
                                header=copy.header,
                                delimiter=copy.delimiter)
        tick = self.clock.tick()
        result = StatementResult(kind="copy", source_tables=[table.name])
        for values in rows:
            rowid = table.insert(values, tick)
            self._log_put(table, rowid)
            if self._undo is not None:
                self._undo.record_insert(table.name, rowid)
            result.written.append(TupleRef(table.name, rowid, tick))
        result.rowcount = len(result.written)
        return result

    def _execute_copy_to(self, copy: ast.CopyTo) -> StatementResult:
        table = self.catalog.get_table(copy.table)
        text = csvio.format_rows(
            (values for _rowid, values in table.scan()),
            table.schema, header=copy.header, delimiter=copy.delimiter)
        self.write_file(copy.path, text)
        return StatementResult(kind="copy", rowcount=table.row_count,
                               source_tables=[table.name])

    # -- transactions --------------------------------------------------------------------

    def _execute_begin(self) -> StatementResult:
        if self._undo is not None:
            raise TransactionError("transaction already in progress")
        self._undo = _UndoLog()
        return StatementResult(kind="txn")

    def _execute_commit(self) -> StatementResult:
        if self._undo is None:
            raise TransactionError("no transaction in progress")
        # clearing _undo lets execute_statement's autocommit epilogue
        # write the commit marker and (with autoflush) the table files
        self._undo = None
        return StatementResult(kind="txn")

    def _execute_rollback(self) -> StatementResult:
        if self._undo is None:
            raise TransactionError("no transaction in progress")
        undo = self._undo
        self._undo = None  # undo operations must not re-record
        # nothing of the batch has reached the log, so aborting simply
        # drops the buffered records
        self._abort_wal_batch()
        for entry in reversed(undo.entries):
            operation = entry[0]
            table = self.catalog.get_table(entry[1])
            if operation == "insert":
                table.delete(entry[2])
            elif operation == "update":
                _, _, rowid, old_values, old_version = entry
                table.update(rowid, old_values, old_version)
                table.versions[rowid] = old_version
            elif operation == "delete":
                _, _, rowid, old_values, old_version = entry
                restored = table.insert(old_values, old_version)
                # restore original rowid identity
                if restored != rowid:
                    values = table.rows.pop(restored)
                    version = table.versions.pop(restored)
                    table.rows[rowid] = values
                    table.versions[rowid] = version
                    if table._pk_positions:
                        key = tuple(values[i] for i in table._pk_positions)
                        table._pk_index[key] = rowid
                    # secondary indexes must follow the identity move,
                    # or later IndexScans dereference a dead rowid
                    for index in table.indexes.values():
                        index.remove(restored, values[index.position])
                        index.add(rowid, values[index.position])
        return StatementResult(kind="txn")
