"""Multi-version concurrency control: sessions, snapshots, write-sets.

The engine gives each :class:`Session` snapshot isolation without ever
letting uncommitted data touch the shared heap or the WAL:

* **Snapshots.** BEGIN captures the logical clock (``snapshot``). A
  reader sees exactly the row versions committed at or before that
  tick; versions committed later — and other sessions' uncommitted
  writes — are invisible.
* **Private write-sets.** A transaction's own INSERT/UPDATE/DELETE land
  in a per-table :class:`TableOverlay` (read-your-own-writes comes from
  merging the overlay over the snapshot during scans). ROLLBACK just
  drops the overlay; nothing was ever shared, so there is nothing to
  undo.
* **Stable stamps + a commit map.** Row versions are stamped with the
  *statement's* logical tick and are never restamped at commit. Commit
  instead registers ``provisional tick → commit tick`` in a global
  ``commit map``, and visibility asks ``commit_stamp(v) <= snapshot``.
  This keeps every :class:`repro.db.provtypes.TupleRef` recorded
  mid-transaction (write provenance, monitor lineage) valid after
  commit, while still hiding a transaction's work from snapshots taken
  before its commit tick.
* **First committer wins.** Writes record the committed version they
  were based on (:attr:`TableOverlay.base_versions`); writing a row
  whose committed version has moved past the snapshot raises
  :class:`repro.errors.WriteConflictError` — eagerly at write time when
  detectable, and again at COMMIT. The losing transaction is rolled
  back; the client retries the whole transaction with a fresh snapshot.

:class:`MVCCState` is owned by the catalog and shared by every table of
one database; :class:`ReadView` is the per-statement handle tables
consult while scanning (see :meth:`repro.db.storage.HeapTable.scan`).

The engine is single-threaded per statement (the server interleaves
whole statements, never rows), so these structures need no locking —
determinism, not parallelism, is the point: the interleaving scheduler
(:mod:`repro.db.scheduler`) relies on statement-level interleavings
being exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class TableOverlay:
    """One transaction's private write-set for one table.

    ``upserts`` maps rowid → ``(values, provisional version)`` for rows
    the transaction inserted or updated; ``deletes`` maps rowid → the
    tick of the DELETE statement (the version at which the removal
    becomes visible once committed). The two are kept disjoint.

    ``base_versions`` remembers, per touched rowid, the *committed*
    version the transaction based its write on — ``None`` for rows born
    inside the transaction. COMMIT re-checks these against the shared
    heap: any drift means another transaction committed first.
    """

    def __init__(self) -> None:
        self.upserts: dict[int, tuple[tuple, int]] = {}
        self.deletes: dict[int, int] = {}
        self.base_versions: dict[int, Optional[int]] = {}

    @property
    def empty(self) -> bool:
        return not self.upserts and not self.deletes


class TransactionContext:
    """The state of one open transaction."""

    def __init__(self, txn_id: int, snapshot: int) -> None:
        self.txn_id = txn_id
        self.snapshot = snapshot
        self.overlays: dict[str, TableOverlay] = {}

    def overlay_for(self, table_name: str,
                    create: bool = False) -> Optional[TableOverlay]:
        overlay = self.overlays.get(table_name)
        if overlay is None and create:
            overlay = TableOverlay()
            self.overlays[table_name] = overlay
        return overlay


@dataclass
class Session:
    """One logical connection's transaction state.

    The server opens one per wire connection; :class:`Database` keeps a
    default session so embedded (single-connection) use is unchanged.
    """

    session_id: int
    name: str
    txn: Optional[TransactionContext] = None

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None


class ReadView:
    """The visibility context of one executing statement.

    A statement inside a transaction sees (a) its own overlay and (b)
    every version whose commit stamp is at or before its snapshot.
    Outside a transaction there is no active view and scans read the
    committed heap directly.
    """

    __slots__ = ("snapshot", "context", "state")

    def __init__(self, snapshot: int, context: Optional[TransactionContext],
                 state: "MVCCState") -> None:
        self.snapshot = snapshot
        self.context = context
        self.state = state

    def sees(self, version: int) -> bool:
        """Is a row version (by its begin/end stamp) visible here?"""
        return self.state.commit_stamp(version) <= self.snapshot

    def overlay_for(self, table_name: str) -> Optional[TableOverlay]:
        if self.context is None:
            return None
        return self.context.overlay_for(table_name)


class MVCCState:
    """Database-wide MVCC bookkeeping, shared by all tables.

    ``current`` is the ambient :class:`ReadView` of the statement being
    executed (``None`` between statements and for autocommit reads of
    sessions with no open transaction). Tables consult it during scans,
    which is what makes *cached plans* — whose operators hold direct
    table references — automatically snapshot-correct per session.
    """

    def __init__(self) -> None:
        self.current: Optional[ReadView] = None
        self._active: dict[int, int] = {}  # txn_id -> snapshot tick
        self._commit_map: dict[int, int] = {}  # provisional -> commit tick
        # highest committed write tick per table; the serving layer's
        # result cache keys on these, so invalidation falls out of the
        # same bookkeeping that stamps versions
        self.table_watermarks: dict[str, int] = {}
        # called with the table name on every watermark move — the
        # columnar scan cache registers here so committed writes strand
        # its segments the instant the watermark that keys them moves
        self.write_listeners: list = []

    # -- per-table commit watermarks ------------------------------------------

    def note_write(self, table: str, tick: int) -> None:
        """Record a committed write to ``table`` at ``tick``."""
        current = self.table_watermarks.get(table, 0)
        if tick > current:
            self.table_watermarks[table] = tick
            for listener in self.write_listeners:
                listener(table)

    def watermark(self, table: str) -> int:
        """Commit tick of the latest write to ``table`` (0 if never
        written)."""
        return self.table_watermarks.get(table, 0)

    # -- transaction registry -------------------------------------------------

    def begin(self, txn_id: int, snapshot: int) -> None:
        self._active[txn_id] = snapshot

    def end(self, txn_id: int) -> None:
        self._active.pop(txn_id, None)

    def has_active(self) -> bool:
        return bool(self._active)

    def active_count(self) -> int:
        return len(self._active)

    def active_ids(self) -> list[int]:
        """Transaction ids still holding snapshots, oldest first.

        The chaos harness's leak checker uses this to name exactly
        which transactions were left pinning MVCC history after every
        connection was reaped."""
        return sorted(self._active)

    def min_active_snapshot(self) -> Optional[int]:
        if not self._active:
            return None
        return min(self._active.values())

    # -- commit stamps --------------------------------------------------------

    def commit_stamp(self, version: int) -> int:
        """The tick at which a version became committed.

        Autocommitted versions commit at their own statement tick, so
        the map only holds entries for explicitly-committed
        transactions' writes (and only until pruned).
        """
        return self._commit_map.get(version, version)

    def register_commit(self, provisional_ticks, commit_tick: int) -> None:
        for tick in provisional_ticks:
            self._commit_map[tick] = commit_tick

    def prune(self) -> None:
        """Drop commit-map entries no active snapshot can distinguish.

        An entry ``v → c`` only matters to snapshots taken before
        ``c``; once every active snapshot is at or past ``c`` (or no
        transaction is active at all) the identity mapping gives the
        same answer.
        """
        minimum = self.min_active_snapshot()
        if minimum is None:
            self._commit_map.clear()
            return
        for version in [v for v, c in self._commit_map.items()
                        if c <= minimum]:
            del self._commit_map[version]

    def commit_map_size(self) -> int:
        return len(self._commit_map)
