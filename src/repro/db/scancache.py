"""Columnar scan cache: watermark-versioned segments for the batch read path.

Every batch scan used to pay the same tax per execution: walk the heap
in rowid order, slice it into :data:`~repro.db.vector.BATCH_SIZE`
chunks, and transpose each chunk's row tuples into column vectors —
even when the table had not changed since the previous statement. The
cache here materializes that work once per table state into an
immutable :class:`Segment` and replays the *same* prebuilt
:class:`~repro.db.vector.RowBatch` objects on every subsequent scan.

Keying and invalidation
-----------------------

Segments are keyed by

``(table name, commit watermark, partition signature, column signature)``

* The **commit watermark** is ``mvcc.watermark(table)`` — the highest
  committed write tick, maintained by the exact bookkeeping that stamps
  row versions (``MVCCState.note_write``) and already trusted by the
  server result cache. Any committed write moves it, stranding every
  older segment.
* The **partition signature** is ``None`` for full scans; partition
  scans key on ``(first rowid, last rowid, count)`` of their assigned
  rowid list, and a hit additionally verifies the stored list equals
  the requested one (heaps grow between executions of a cached plan,
  so partition boundaries are never trusted from the signature alone).
* The **column signature** mirrors the scan's pruning decision: ``None``
  when the scan would materialize every column, otherwise the sorted
  tuple of column positions a fused consumer actually reads.

Watermark keying alone is not sufficient: bulk loads that write the
heap directly (``HeapTable.insert``) never call ``note_write``, so every
heap mutator also purges the table's segments eagerly
(``HeapTable._note_mutation`` → :meth:`ScanCache.invalidate_table`).
That same eager purge closes the mid-statement window where a
multi-row statement has bumped the watermark on its first row but not
yet written its last. DDL, ANALYZE, repartitioning, TRUNCATE, and WAL
recovery invalidate through the engine on top.

Exactness under MVCC
--------------------

A segment holds the **committed-latest** heap image. Statements with no
ambient read view read exactly that. For a statement under a view the
cache serves only when provably exact:

* ``snapshot >= watermark(table)`` and the transaction has no private
  overlay for the table → the segment *is* the visible state. Proof:
  every committed version ``v`` satisfies ``commit_stamp(v) <=
  watermark <= snapshot`` (``note_write`` is always called with the
  commit tick), so all committed-latest versions are visible and every
  history chain's superseding ``end`` stamp is visible too — history
  can never surface.
* ``snapshot >= watermark(table)`` with an overlay → a **delta pass**:
  merge the overlay's upserts over the segment and drop its deletes,
  in sorted rowid order — exactly what
  :meth:`~repro.db.storage.HeapTable._scan_view` computes under the
  same condition, without per-rowid version resolution.
* ``snapshot < watermark(table)`` → some committed version may be
  invisible and a history chain may matter: the cache refuses
  (``fallbacks`` counter) and the scan takes the uncached
  ``scan_versions()`` walk.

Bounding and observability
--------------------------

Residency is LRU-bounded by **cell count** (rows × (columns + rowid +
version)); eviction pops oldest-used segments first and is counted.
Counters — hits, misses, builds, evictions, invalidations, delta
merges, fallbacks, resident cells/bytes — surface in
``DBClient.server_stats()`` and EXPLAIN ANALYZE's ``stats["server"]``;
the scan operators stamp a ``[scan cache: hit|miss]`` note onto the
plan text. Forked pool workers inherit populated segments
copy-on-write and reset the inherited counters (see
:mod:`repro.db.parallel`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

from repro.db import vector
from repro.db.provtypes import lineage_singletons

# Default residency budget, in cells (row × column slots, plus the
# rowid and version vectors). 8M cells comfortably holds the benchmark
# working set (~600k cells) while bounding a worker's inherited copy.
DEFAULT_MAX_CELLS = 8_000_000

# Pointer-width estimate for the bytes counter: cached vectors hold
# references into the heap's existing value objects, so the cache's
# own footprint is ~one machine word per cell.
_CELL_BYTES = 8


class Segment:
    """One immutable cached scan image: the committed-latest rows of a
    table (optionally restricted to an explicit rowid list) prechunked
    into :class:`~repro.db.vector.RowBatch` objects.

    The base chunk data (row tuples, column vectors) is built once in
    ``__init__``; the four batch *variants* — with/without lineage
    annotation vectors, with/without rowid annotation vectors — share
    those vectors and are built lazily on first request, so a segment
    scanned only without provenance never allocates a lineage vector.
    """

    __slots__ = ("name", "rowids", "versions", "row_major", "width",
                 "colsig", "count", "cells", "_chunks", "_variants",
                 "_positions")

    def __init__(self, table, rowids: list[int] | None,
                 colsig: tuple[int, ...] | None) -> None:
        heap = table.rows
        versions = table.versions
        if rowids is None:
            rowids = list(heap)
            if rowids != sorted(rowids):
                rowids = sorted(rowids)
            row_major = [heap[rowid] for rowid in rowids]
        else:
            row_major = [heap[rowid] for rowid in rowids]
        self.name = table.name
        self.rowids = rowids
        self.versions = [versions[rowid] for rowid in rowids]
        self.row_major = row_major
        self.width = len(table.schema)
        self.colsig = colsig
        self.count = len(rowids)
        self.cells = self.count * (self.width + 2)
        self._chunks = self._build_chunks()
        self._variants: dict[tuple[bool, bool], list] = {}
        self._positions: dict[int, int] | None = None

    def _build_chunks(self) -> list[tuple[list, list]]:
        """Per-chunk ``(chunk_rows, columns)`` — the shared vectors
        every variant's batches reference."""
        width = self.width
        colsig = self.colsig
        size = vector.BATCH_SIZE
        chunks = []
        for start in range(0, self.count, size):
            chunk_rows = self.row_major[start:start + size]
            if colsig is not None:
                columns: list = [None] * width
                for index in colsig:
                    columns[index] = [row[index] for row in chunk_rows]
            else:
                columns = list(zip(*chunk_rows)) if width else []
            chunks.append((chunk_rows, columns))
        return chunks

    def batches(self, track_lineage: bool,
                with_rowids: bool) -> list:
        """The prebuilt batch list for one variant (built on first
        request, replayed verbatim afterwards — RowBatch vectors are
        immutable by contract)."""
        key = (track_lineage, with_rowids)
        variant = self._variants.get(key)
        if variant is None:
            variant = self._build_variant(track_lineage, with_rowids)
            self._variants[key] = variant
        return variant

    def _build_variant(self, track_lineage: bool,
                       with_rowids: bool) -> list:
        size = vector.BATCH_SIZE
        batches = []
        for number, (chunk_rows, columns) in enumerate(self._chunks):
            start = number * size
            stop = start + len(chunk_rows)
            lineages = None
            if track_lineage:
                lineages = lineage_singletons(
                    self.name,
                    list(zip(self.rowids[start:stop],
                             self.versions[start:stop])))
                vector.note_lineage_vector_build()
            chunk_ids = (self.rowids[start:stop] if with_rowids
                         else None)
            batches.append(vector.RowBatch(
                columns, len(chunk_rows), lineages, None, chunk_rows,
                chunk_ids))
        return batches

    def positions(self) -> dict[int, int]:
        """rowid → segment index, built lazily for delta passes."""
        if self._positions is None:
            self._positions = {rowid: index for index, rowid
                               in enumerate(self.rowids)}
        return self._positions


class ScanCache:
    """LRU pool of :class:`Segment` objects, shared by every table of
    one database (owned by the catalog, mirroring ``MVCCState``)."""

    def __init__(self, max_cells: int = DEFAULT_MAX_CELLS) -> None:
        self.max_cells = max_cells
        self.enabled = True
        self._segments: "OrderedDict[tuple, Segment]" = OrderedDict()
        self._per_table: dict[str, int] = {}
        self.resident_cells = 0
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.invalidations = 0
        self.delta_merges = 0
        self.fallbacks = 0

    # -- serving -----------------------------------------------------------------

    def serve_seq_scan(self, operator, table) -> list | None:
        """Batches for a full table scan, or None when the cache must
        not serve (disabled, standalone table, or an MVCC state the
        delta pass cannot cover exactly). Stamps ``operator.cache_note``
        for EXPLAIN ANALYZE when it does serve."""
        if not self.enabled or table.mvcc is None:
            return None
        view = table.active_view()
        track_lineage = operator.track_lineage
        if view is None:
            colsig = self._colsig(operator, track_lineage)
            segment, hit = self._segment(table, None, None, colsig)
            if segment is None:
                return None
            operator.cache_note = "hit" if hit else "miss"
            return segment.batches(track_lineage, False)
        if view.snapshot < table.mvcc.watermark(table.name):
            # a commit after this snapshot: some committed-latest
            # version may be invisible and history may matter — the
            # uncached scan_versions() walk is the only exact answer
            self.fallbacks += 1
            return None
        overlay = view.overlay_for(table.name)
        if overlay is None or overlay.empty:
            # snapshot >= watermark and no private writes: the
            # committed-latest image is exactly the visible state
            segment, hit = self._segment(table, None, None, None)
            if segment is None:
                return None
            operator.cache_note = "hit" if hit else "miss"
            return segment.batches(track_lineage, False)
        segment, hit = self._segment(table, None, None, None)
        if segment is None:
            return None
        operator.cache_note = "hit" if hit else "miss"
        self.delta_merges += 1
        return self._delta_batches(segment, overlay, track_lineage)

    def serve_partition_scan(self, operator, table,
                             rowids: list[int]) -> list | None:
        """Batches for one partition's explicit rowid list. Callers
        guarantee no ambient view (partition scans under a view
        resolve per-rowid through ``view_entry`` uncached)."""
        if not self.enabled or table.mvcc is None:
            return None
        track_lineage = operator.track_lineage
        colsig = self._colsig(operator, track_lineage)
        if rowids:
            signature = (rowids[0], rowids[-1], len(rowids))
        else:
            signature = (0, 0, 0)
        segment, hit = self._segment(table, rowids, signature, colsig)
        if segment is None:
            return None
        operator.cache_note = "hit" if hit else "miss"
        return segment.batches(track_lineage, True)

    @staticmethod
    def _colsig(operator, track_lineage: bool) -> tuple[int, ...] | None:
        """Mirror the uncached scan's pruning rule exactly: columns are
        pruned only on the committed-latest, no-lineage path."""
        needed = operator.needed_columns
        if (track_lineage or needed is None
                or len(needed) >= len(operator.schema)):
            return None
        return tuple(sorted(needed))

    def _segment(self, table, rowids: list[int] | None,
                 signature, colsig) -> tuple[Segment | None, bool]:
        key = (table.name, table.mvcc.watermark(table.name),
               signature, colsig)
        segment = self._segments.get(key)
        if segment is not None:
            if rowids is None or segment.rowids == rowids:
                self._segments.move_to_end(key)
                self.hits += 1
                return segment, True
            # same signature, different rowid list (heap grew between
            # executions without a watermark move): replace it
            self._drop(key)
        self.misses += 1
        self.builds += 1
        segment = Segment(table, rowids, colsig)
        self._admit(key, segment)
        return segment, False

    def _delta_batches(self, segment: Segment, overlay,
                       track_lineage: bool) -> list:
        """Merge a transaction's private overlay over a committed
        segment — upserts win, deletes drop, everything in sorted
        rowid order — matching ``_scan_view`` under the served
        condition (snapshot >= watermark)."""
        upserts = overlay.upserts
        deletes = overlay.deletes
        if upserts:
            merged_ids = sorted(set(segment.rowids).union(upserts))
        else:
            merged_ids = segment.rowids
        positions = segment.positions()
        row_major = segment.row_major
        versions = segment.versions
        resolved = []
        for rowid in merged_ids:
            entry = upserts.get(rowid)
            if entry is not None:
                resolved.append((rowid, entry[0], entry[1]))
                continue
            if rowid in deletes:
                continue
            index = positions[rowid]
            resolved.append((rowid, row_major[index], versions[index]))
        size = vector.BATCH_SIZE
        name = segment.name
        batches = []
        for start in range(0, len(resolved), size):
            chunk = resolved[start:start + size]
            chunk_rows = [values for _, values, _ in chunk]
            columns = (list(zip(*chunk_rows)) if segment.width else [])
            lineages = None
            if track_lineage:
                lineages = lineage_singletons(
                    name, [(rowid, version)
                           for rowid, _, version in chunk])
                vector.note_lineage_vector_build()
            batches.append(vector.RowBatch(
                columns, len(chunk), lineages, None, chunk_rows))
        return batches

    # -- residency ---------------------------------------------------------------

    def _admit(self, key: tuple, segment: Segment) -> None:
        self._segments[key] = segment
        self._per_table[segment.name] = (
            self._per_table.get(segment.name, 0) + 1)
        self.resident_cells += segment.cells
        while self.resident_cells > self.max_cells and self._segments:
            oldest = next(iter(self._segments))
            self._drop(oldest)
            self.evictions += 1

    def _drop(self, key: tuple) -> None:
        segment = self._segments.pop(key)
        self.resident_cells -= segment.cells
        remaining = self._per_table.get(segment.name, 1) - 1
        if remaining <= 0:
            self._per_table.pop(segment.name, None)
        else:
            self._per_table[segment.name] = remaining

    # -- invalidation ------------------------------------------------------------

    def invalidate_table(self, name: str) -> None:
        """Purge every segment of one table (any watermark). O(1) when
        the table has nothing resident — heap mutators call this per
        row, so only the first write of a burst pays the sweep."""
        if name not in self._per_table:
            return
        for key in [key for key in self._segments if key[0] == name]:
            self._drop(key)
            self.invalidations += 1

    def invalidate_all(self) -> None:
        """Purge everything (DDL, ANALYZE, recovery)."""
        self.invalidations += len(self._segments)
        self._segments.clear()
        self._per_table.clear()
        self.resident_cells = 0

    # -- planner / observability -------------------------------------------------

    def has_cached_scan(self, table) -> bool:
        """Is any segment of this table resident right now? Eager
        mutator purges guarantee residency implies the current
        watermark, so the planner may cost the scan as cached."""
        return (self.enabled and table.mvcc is not None
                and table.name in self._per_table)

    def counters(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "delta_merges": self.delta_merges,
            "fallbacks": self.fallbacks,
            "segments": len(self._segments),
            "resident_cells": self.resident_cells,
            "resident_bytes": self.resident_cells * _CELL_BYTES,
            "max_cells": self.max_cells,
            "enabled": self.enabled,
        }

    def reset_counters(self) -> None:
        """Zero the event counters (pool workers call this post-fork so
        their numbers describe the worker, not the inherited parent)."""
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.invalidations = 0
        self.delta_merges = 0
        self.fallbacks = 0
