"""A from-scratch relational DBMS with Perm-style provenance support.

This package is the substrate standing in for PostgreSQL + Perm in the
LDV paper. It provides:

* a SQL dialect covering everything the paper's workload needs
  (``repro.db.sql``),
* versioned heap storage persisted to an on-disk data directory
  (:mod:`repro.db.storage`),
* a pull-based executor with optional *lineage propagation*
  (:mod:`repro.db.executor`),
* Perm's ``SELECT PROVENANCE`` and GProM-style update *reenactment*
  (:mod:`repro.db.provenance`),
* the ``prov_rowid``/``prov_v``/``prov_usedby``/``prov_p`` versioning
  columns of Section VII-B (:mod:`repro.db.versioning`),
* a libpq-like client/server protocol with interposition hooks
  (:mod:`repro.db.protocol`, :mod:`repro.db.client`,
  :mod:`repro.db.server`),
* MVCC snapshot-isolated concurrent sessions (:mod:`repro.db.mvcc`)
  with a deterministic interleaving scheduler for concurrency tests
  (:mod:`repro.db.scheduler`).

The top-level façade is :class:`repro.db.engine.Database`.
"""

from repro.db.engine import Database
from repro.db.fileio import FileIO
from repro.db.mvcc import Session
from repro.db.types import Column, Schema, SQLType
from repro.db.client import DBClient, Interceptor, RetryPolicy
from repro.db.scheduler import InterleavingScheduler, StepResult
from repro.db.server import DBServer
from repro.db.wal import WriteAheadLog

__all__ = [
    "Database",
    "Column",
    "FileIO",
    "Schema",
    "Session",
    "SQLType",
    "DBClient",
    "DBServer",
    "Interceptor",
    "InterleavingScheduler",
    "RetryPolicy",
    "StepResult",
    "WriteAheadLog",
]
