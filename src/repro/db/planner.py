"""Logical planning: turn a SELECT AST into an operator tree.

The planner performs the classical minimum needed to make the paper's
TPC-H workload tractable in a pure-Python executor:

* predicate pushdown of single-table WHERE conjuncts below joins,
* extraction of cross-table equi-conjuncts as hash-join keys,
* greedy join ordering (join any source connected to the current
  result by an equi-predicate before considering cross products),
* star expansion and output-type inference,
* hidden sort columns so ORDER BY can reference non-projected
  expressions.

When ANALYZE statistics exist (:mod:`repro.db.stats`), planning
becomes cost-based: filter selectivities scale each fragment's
cardinality estimate, the greedy join order picks the connected
candidate with the smallest estimated join output (instead of the
first one), hash-join build sides follow the estimates, and indexable
conjuncts only become probes when the estimated probe cost beats the
scan. Cardinality estimates start from the *session-visible* row count
(committed heap adjusted by the transaction's overlay), so a bulk
insert inside an open transaction steers its own plans. Every choice
is advisory: all plan shapes produce identical rows and lineage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db import expressions as exprs
from repro.db import parallel as parmod
from repro.db import stats as statsmod
from repro.db import vector
from repro.db.catalog import Catalog
from repro.db.executor import (
    Distinct,
    Filter,
    Gather,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Instrumented,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    Sort,
    StripColumns,
)
from repro.db.sql import ast
from repro.db.types import Column, Schema, SQLType
from repro.errors import CatalogError, ExecutionError, SQLSyntaxError


@dataclass
class _PlanOptions:
    """How aggressively to vectorize the emitted plan.

    ``batched`` selects the batch operator classes; ``fuse``
    additionally collapses Scan→Filter→Project chains into
    :class:`repro.db.vector.FusedScanFilterProject`. EXPLAIN ANALYZE
    plans set ``fuse=False`` so per-operator attribution survives.
    """

    batched: bool
    fuse: bool


def _plan_options(fuse: bool) -> _PlanOptions:
    batched = vector.vectorized_enabled()
    return _PlanOptions(batched=batched, fuse=fuse and batched)


@dataclass
class PlannedQuery:
    """A ready-to-run operator tree plus its visible output schema."""

    root: Operator
    schema: Schema
    source_tables: list[str]


def explain_plan(root: Operator) -> list[str]:
    """Render an operator tree as indented EXPLAIN lines.

    :class:`Instrumented` wrappers (EXPLAIN ANALYZE) are transparent:
    the wrapped operator is described, with its measured row count and
    wall time appended as ``(rows=N time=T ms)``. Operators planned
    under ANALYZE statistics additionally carry the planner's
    cardinality estimate — ``(est=N)`` on plain EXPLAIN, and
    ``(rows=N est=M time=T ms)`` under EXPLAIN ANALYZE so estimated
    and actual rows sit side by side.
    """
    lines: list[str] = []

    def describe(operator: Operator) -> str:
        wrapper = None
        if isinstance(operator, Instrumented):
            wrapper = operator
            operator = operator.inner
        estimate = getattr(operator, "est_rows", None)
        suffix = ""
        if wrapper is not None:
            estimated = (f" est={estimate:.0f}" if estimate is not None
                         else "")
            suffix = (f" (rows={wrapper.rows}{estimated} "
                      f"time={wrapper.total_seconds * 1000.0:.3f} ms)")
        elif estimate is not None:
            suffix = f" (est={estimate:.0f})"
        return describe_bare(operator) + suffix

    def describe_bare(operator: Operator) -> str:
        # batch operators subclass their row twins, so every branch
        # below covers both engines; the default name drops the
        # "Batch" prefix for the same reason
        name = type(operator).__name__
        if name.startswith("Batch"):
            name = name[len("Batch"):]
        if isinstance(operator, Gather):
            if isinstance(operator, vector.BatchAggregateGather):
                template = operator.template
                return (f"AggregateGather (workers={operator.workers}, "
                        f"{len(template.group_expressions)} keys, "
                        f"{len(template.aggregate_calls)} aggregates)")
            if isinstance(operator, vector.BatchParallelSort):
                note = (f", top-k={operator.ship_limit}"
                        if operator.ship_limit is not None else "")
                return (f"Parallel Sort (workers={operator.workers}"
                        f"{note}) on {operator.keys}")
            return f"Gather (workers={operator.workers})"
        if isinstance(operator, vector.BatchParallelHashJoin):
            from repro.db.sql.render import render_expression
            keys = " AND ".join(
                f"{render_expression(l)} = {render_expression(r)}"
                for l, r in zip(operator.left_keys,
                                operator.right_keys))
            mode = ("co-partitioned" if operator.copart
                    else "parallel build")
            return (f"HashJoin ({operator.kind}, "
                    f"build={operator.build_side}) on {keys} "
                    f"[Parallel Hash Build: {mode}, "
                    f"workers={operator.workers}]")
        if isinstance(operator, vector.FusedScanFilterProject):
            parts = [f"{len(operator.predicates)} predicates"]
            if operator.projections is not None:
                parts.append(f"{len(operator.projections)} outputs")
            return f"FusedScanFilterProject ({', '.join(parts)})"
        if isinstance(operator, IndexScan):
            from repro.db.sql.render import render_expression
            if len(operator.value_expressions) == 1:
                probe = (f"{operator.index.column} = "
                         f"{render_expression(operator.value_expression)}")
            else:
                rendered = ", ".join(
                    render_expression(expression)
                    for expression in operator.value_expressions)
                probe = f"{operator.index.column} IN ({rendered})"
            text = (f"IndexScan on {operator.table.name} using "
                    f"{operator.index.name} ({probe})")
            return text + _cost_note_suffix(operator)
        if isinstance(operator, SeqScan):
            return (f"SeqScan on {operator.table.name}"
                    + _cost_note_suffix(operator)
                    + _scan_cache_suffix(operator))
        if isinstance(operator, Filter):
            from repro.db.sql.render import render_expression
            return f"Filter: {render_expression(operator.predicate)}"
        if isinstance(operator, HashJoin):
            from repro.db.sql.render import render_expression
            keys = " AND ".join(
                f"{render_expression(l)} = {render_expression(r)}"
                for l, r in zip(operator.left_keys, operator.right_keys))
            return (f"HashJoin ({operator.kind}, "
                    f"build={operator.build_side}) on {keys}")
        if isinstance(operator, NestedLoopJoin):
            return f"NestedLoopJoin ({operator.kind})"
        if isinstance(operator, GroupAggregate):
            return (f"GroupAggregate "
                    f"({len(operator.group_expressions)} keys, "
                    f"{len(operator.aggregate_calls)} aggregates)")
        if isinstance(operator, Sort):
            return f"Sort on {operator.keys}"
        if isinstance(operator, Limit):
            return f"Limit {operator.limit} offset {operator.offset}"
        return name

    def walk(operator: Operator, depth: int) -> None:
        lines.append("  " * depth + describe(operator))
        if isinstance(operator, Instrumented):
            operator = operator.inner
        if isinstance(operator, Gather):
            # per-partition measurements come back from the workers
            # themselves (child-process counters cannot propagate), so
            # they render as annotation lines under the gather, above
            # the (uninstrumented) template subtree
            stats = operator.partition_stats
            if stats:
                for entry in stats:
                    lines.append(
                        "  " * (depth + 1)
                        + f"Partition {entry['partition']}: "
                          f"rows={entry['rows']} "
                          f"time={entry['seconds'] * 1000.0:.3f} ms")
            walk(operator.template, depth + 1)
            return
        if isinstance(operator, vector.BatchParallelHashJoin):
            stats = operator.build_partition_stats
            if stats:
                for entry in stats:
                    lines.append(
                        "  " * (depth + 1)
                        + f"Build Partition {entry['partition']}: "
                          f"rows={entry['rows']} "
                          f"time={entry['seconds'] * 1000.0:.3f} ms")
        for attr in ("child", "left", "right"):
            node = getattr(operator, attr, None)
            if isinstance(node, Operator):
                walk(node, depth + 1)
        children = getattr(operator, "children", None)
        if isinstance(children, list):
            for node in children:
                walk(node, depth + 1)

    walk(root, 0)
    return lines


def _cost_note_suffix(operator: Operator) -> str:
    """The planner's index-vs-scan verdict, when one was taken."""
    note = getattr(operator, "cost_note", None)
    return f" [{note}]" if note else ""


def _scan_cache_suffix(operator: Operator) -> str:
    """Whether this execution's scan was served from a resident
    segment — stamped by the scan during EXPLAIN ANALYZE runs."""
    note = getattr(operator, "cache_note", None)
    return f" [scan cache: {note}]" if note else ""


def analyze_stats(root: Operator) -> list[dict]:
    """Flatten an instrumented tree into per-operator measurements.

    Returns one entry per plan node in EXPLAIN order:
    ``{"operator", "depth", "rows", "seconds", "loops"}``. Operators
    planned under ANALYZE statistics also report ``est_rows`` — the
    planner's cardinality estimate next to the measured rows, so
    misestimates are visible over the wire too. Nodes that are not
    wrapped report zero counters (never happens for trees built by
    :func:`repro.db.executor.instrument_plan`).
    """
    entries: list[dict] = []

    def walk(operator: Operator, depth: int) -> None:
        inner = operator
        rows = seconds = loops = 0
        batches = None
        if isinstance(operator, Instrumented):
            inner = operator.inner
            rows = operator.rows
            seconds = operator.total_seconds
            loops = operator.loops
            batches = getattr(operator, "batches_produced", None)
        name = type(inner).__name__
        if name.startswith("Batch"):
            name = name[len("Batch"):]
        entry = {
            "operator": name,
            "depth": depth,
            "rows": rows,
            "seconds": seconds,
            "loops": loops,
        }
        if batches is not None:
            entry["batches"] = batches
        estimate = getattr(inner, "est_rows", None)
        if estimate is not None:
            entry["est_rows"] = round(estimate)
        if isinstance(inner, Gather):
            entry["workers"] = inner.workers
            if inner.partition_stats is not None:
                entry["partitions"] = list(inner.partition_stats)
            entries.append(entry)
            walk(inner.template, depth + 1)
            return
        if isinstance(inner, vector.BatchParallelHashJoin):
            entry["workers"] = inner.workers
            entry["join_mode"] = ("co-partitioned" if inner.copart
                                  else "parallel build")
            if inner.build_partition_stats is not None:
                entry["build_partitions"] = list(
                    inner.build_partition_stats)
        entries.append(entry)
        for attr in ("child", "left", "right"):
            node = getattr(inner, attr, None)
            if isinstance(node, Operator):
                walk(node, depth + 1)
        children = getattr(inner, "children", None)
        if isinstance(children, list):
            for node in children:
                walk(node, depth + 1)

    walk(root, 0)
    return entries


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def split_conjuncts(expression: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten a WHERE clause into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: list[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild an AND tree from a conjunct list (None when empty)."""
    result: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("and", result, conjunct)
    return result


def infer_type(expression: ast.Expression, schema: Schema) -> SQLType:
    """Best-effort static type of an output expression."""
    if isinstance(expression, ast.Literal):
        value = expression.value
        if isinstance(value, bool):
            return SQLType.BOOLEAN
        if isinstance(value, int):
            return SQLType.INTEGER
        if isinstance(value, float):
            return SQLType.FLOAT
        return SQLType.TEXT
    if isinstance(expression, ast.ColumnRef):
        try:
            index = schema.index_of(expression.name, expression.qualifier)
        except CatalogError:
            return SQLType.TEXT
        return schema.columns[index].sql_type
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "not":
            return SQLType.BOOLEAN
        return infer_type(expression.operand, schema)
    if isinstance(expression, ast.BinaryOp):
        if expression.op in ("and", "or", "=", "<>", "<", "<=", ">", ">="):
            return SQLType.BOOLEAN
        if expression.op == "||":
            return SQLType.TEXT
        left = infer_type(expression.left, schema)
        right = infer_type(expression.right, schema)
        if expression.op == "/" or SQLType.FLOAT in (left, right):
            if left is SQLType.INTEGER and right is SQLType.INTEGER:
                return SQLType.INTEGER
            return SQLType.FLOAT
        return left
    if isinstance(expression, (ast.Between, ast.Like, ast.InList, ast.IsNull)):
        return SQLType.BOOLEAN
    if isinstance(expression, ast.FunctionCall):
        name = expression.name
        if name == "count":
            return SQLType.INTEGER
        if name == "avg":
            return SQLType.FLOAT
        if name in ("sum", "min", "max", "abs", "mod"):
            if expression.args and not isinstance(expression.args[0], ast.Star):
                return infer_type(expression.args[0], schema)
            return SQLType.INTEGER
        if name in ("length", "floor", "ceil"):
            return SQLType.INTEGER
        if name == "round":
            return SQLType.FLOAT
        if name == "coalesce" and expression.args:
            return infer_type(expression.args[0], schema)
        return SQLType.TEXT
    if isinstance(expression, ast.CaseWhen):
        return infer_type(expression.branches[0][1], schema)
    return SQLType.TEXT


def derive_column_name(expression: ast.Expression, index: int) -> str:
    """Column name for an unaliased select item."""
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    return f"column{index + 1}"


# ---------------------------------------------------------------------------
# Source planning (FROM + WHERE decomposition)
# ---------------------------------------------------------------------------


class _SourceSet:
    """Tracks which leaf sources a plan fragment covers, for conjunct
    classification and cost estimation.

    ``tables`` maps each covered alias to its base table and that
    table's ANALYZE statistics (None when never analyzed).
    ``est_rows`` is the fragment's estimated output cardinality —
    maintained only while every covered table has statistics; None
    switches the planner back to its rote (pre-ANALYZE) heuristics.
    """

    def __init__(self, operator: Operator, aliases: frozenset[str],
                 tables: dict | None = None,
                 est_rows: float | None = None) -> None:
        self.operator = operator
        self.aliases = aliases
        self.tables = tables if tables is not None else {}
        self.est_rows = est_rows

    def annotate(self) -> None:
        """Stamp the estimate onto the fragment's top operator so
        EXPLAIN can show it (only stats-informed plans carry it)."""
        if self.est_rows is not None:
            self.operator.est_rows = self.est_rows


def _plan_table(ref: ast.TableRef, catalog: Catalog, track_lineage: bool,
                options: _PlanOptions) -> _SourceSet:
    table = catalog.get_table(ref.name)
    scan_class = vector.BatchSeqScan if options.batched else SeqScan
    scan = scan_class(table, ref.effective_alias, track_lineage)
    alias = ref.effective_alias.lower()
    table_stats = catalog.stats_for(table.name)
    # the estimate starts from the session-visible count (committed
    # heap adjusted by the transaction's private overlay), so plans
    # follow what this statement will actually read
    est = (float(table.visible_row_count())
           if table_stats is not None else None)
    fragment = _SourceSet(scan, frozenset({alias}),
                          tables={alias: (table, table_stats)},
                          est_rows=est)
    fragment.annotate()
    return fragment


def _resolve_column_stats(fragment: _SourceSet,
                          ref: ast.ColumnRef) -> statsmod.ColumnStats | None:
    """The ANALYZE statistics behind a column reference, if the
    reference resolves to exactly one analyzed base table of the
    fragment."""
    found = None
    for alias, (table, table_stats) in fragment.tables.items():
        if ref.qualifier is not None and ref.qualifier.lower() != alias:
            continue
        if not table.schema.has_column(ref.name):
            continue
        if found is not None:
            return None  # ambiguous unqualified reference
        column = (table_stats.column(ref.name)
                  if table_stats is not None else None)
        found = (column,)
    return found[0] if found is not None else None


def _fragment_selectivity(fragment: _SourceSet,
                          conjunct: ast.Expression) -> float:
    return statsmod.conjunct_selectivity(
        conjunct, lambda ref: _resolve_column_stats(fragment, ref))


def _apply_filter_estimate(fragment: _SourceSet,
                           conjunct: ast.Expression) -> None:
    """Scale a fragment's cardinality estimate by a pushed predicate."""
    if fragment.est_rows is None:
        return
    fragment.est_rows *= _fragment_selectivity(fragment, conjunct)
    fragment.annotate()


def _key_ndv(fragment: _SourceSet, key: ast.Expression) -> float | None:
    """Distinct-value estimate of a join key within a fragment, capped
    by the fragment's own cardinality (filters cannot add variety)."""
    if not isinstance(key, ast.ColumnRef):
        return None
    column = _resolve_column_stats(fragment, key)
    if column is None or column.ndv <= 0:
        return None
    ndv = float(column.ndv)
    if fragment.est_rows is not None:
        ndv = min(ndv, max(fragment.est_rows, 1.0))
    return ndv


def _join_estimate(left: _SourceSet, right: _SourceSet,
                   pairs: list[tuple[ast.Expression, ast.Expression]]
                   ) -> float | None:
    """|L ⋈ R| ≈ |L|·|R| / max(ndv(L.key), ndv(R.key)) per key pair
    (containment assumption); None unless both sides carry estimates."""
    if left.est_rows is None or right.est_rows is None:
        return None
    estimate = max(left.est_rows, 0.0) * max(right.est_rows, 0.0)
    for left_key, right_key in pairs:
        candidates = [ndv for ndv in (_key_ndv(left, left_key),
                                      _key_ndv(right, right_key))
                      if ndv is not None]
        denominator = (max(candidates) if candidates
                       else max(left.est_rows, right.est_rows, 1.0))
        estimate /= max(denominator, 1.0)
    return estimate


def _merge_sets(left: _SourceSet, right: _SourceSet, operator: Operator,
                est_rows: float | None) -> _SourceSet:
    tables = dict(left.tables)
    tables.update(right.tables)
    merged = _SourceSet(operator, left.aliases | right.aliases,
                        tables=tables, est_rows=est_rows)
    merged.annotate()
    return merged


def _cross_estimate(left: _SourceSet,
                    right: _SourceSet) -> float | None:
    if left.est_rows is None or right.est_rows is None:
        return None
    return left.est_rows * right.est_rows


def _filtered(operator: Operator, conjunct: ast.Expression,
              options: _PlanOptions) -> Operator:
    """Apply a predicate: fuse onto a batch scan when allowed, else
    stack the engine-appropriate Filter operator."""
    if options.fuse:
        if (isinstance(operator, vector.FusedScanFilterProject)
                and operator.projections is None):
            operator.add_predicate(conjunct)
            return operator
        if isinstance(operator, (vector.BatchSeqScan,
                                 vector.BatchIndexScan)):
            fused = vector.FusedScanFilterProject(operator)
            fused.add_predicate(conjunct)
            return fused
    if options.batched:
        return vector.BatchFilter(operator, conjunct)
    return Filter(operator, conjunct)


def _estimate_rows(operator: Operator) -> int | None:
    """Session-visible base-table row count feeding a plan fragment.

    Walks single-child chains (filters, fused scans) down to the scan;
    gives up (None) at joins and other multi-input nodes. The count is
    overlay-aware: a transaction that bulk-inserted into one join side
    sees its own writes reflected here (the committed heap alone would
    pick a backwards build side).
    """
    node = operator
    while node is not None:
        if isinstance(node, (SeqScan, IndexScan)):
            return node.table.visible_row_count()
        node = getattr(node, "child", None)
    return None


def _choose_build_side(kind: str, left: _SourceSet,
                       right: _SourceSet) -> str:
    """Hash the smaller input. LEFT joins must build on the right
    (the probe pass pads unmatched preserved rows); ties and unknown
    cardinalities keep the historical build-right choice. Fragments
    with ANALYZE statistics compare selectivity-scaled estimates;
    the rest fall back to raw visible row counts."""
    if kind != "inner":
        return "right"
    left_rows = (left.est_rows if left.est_rows is not None
                 else _estimate_rows(left.operator))
    right_rows = (right.est_rows if right.est_rows is not None
                  else _estimate_rows(right.operator))
    if left_rows is None or right_rows is None:
        return "right"
    return "left" if left_rows < right_rows else "right"


def _make_hash_join(left: _SourceSet, right: _SourceSet,
                    left_keys: list[ast.Expression],
                    right_keys: list[ast.Expression], kind: str,
                    residual: Optional[ast.Expression],
                    options: _PlanOptions) -> _SourceSet:
    build_side = _choose_build_side(kind, left, right)
    join_class = vector.BatchHashJoin if options.batched else HashJoin
    operator = join_class(left.operator, right.operator, left_keys,
                          right_keys, kind, residual, build_side)
    est = _join_estimate(left, right, list(zip(left_keys, right_keys)))
    if est is not None and kind == "left":
        # preserved-side rows survive unmatched: never below |L|
        est = max(est, left.est_rows or 0.0)
    return _merge_sets(left, right, operator, est)


def _plan_join_source(source, catalog: Catalog, track_lineage: bool,
                      options: _PlanOptions) -> _SourceSet:
    """Plan a FROM entry, which may be a TableRef or an explicit Join."""
    if isinstance(source, ast.TableRef):
        return _plan_table(source, catalog, track_lineage, options)
    if isinstance(source, ast.Join):
        left = _plan_join_source(source.left, catalog, track_lineage,
                                 options)
        right = _plan_table(source.right, catalog, track_lineage,
                            options)
        if source.kind == "cross" or source.condition is None:
            operator: Operator = NestedLoopJoin(
                left.operator, right.operator, None, "cross")
            return _merge_sets(left, right, operator,
                               _cross_estimate(left, right))
        equi, residual = _extract_equi_keys(
            split_conjuncts(source.condition), left, right)
        if equi:
            left_keys = [pair[0] for pair in equi]
            right_keys = [pair[1] for pair in equi]
            return _make_hash_join(left, right, left_keys, right_keys,
                                   source.kind, conjoin(residual),
                                   options)
        operator = NestedLoopJoin(left.operator, right.operator,
                                  source.condition, source.kind)
        return _merge_sets(left, right, operator,
                           _cross_estimate(left, right))
    raise ExecutionError(f"unsupported FROM entry {source!r}")


def _aliases_of(expression: ast.Expression,
                sources: list[_SourceSet]) -> frozenset[str] | None:
    """The set of source fragments an expression's columns resolve to.

    Returns None when any column reference cannot be resolved uniquely
    (forces the conjunct to be applied as a post-join filter where full
    schema resolution produces a proper error message).
    """
    aliases: set[str] = set()
    for ref in exprs.columns_referenced(expression):
        owner = _resolve_owner(ref, sources)
        if owner is None:
            return None
        aliases.add(owner)
    return frozenset(aliases)


def _resolve_owner(ref: ast.ColumnRef,
                   sources: list[_SourceSet]) -> str | None:
    """Which fragment (by canonical alias) owns a column reference."""
    owners = []
    for source in sources:
        if ref.qualifier is not None:
            if (ref.qualifier.lower() in source.aliases
                    and source.operator.schema.has_column(
                        ref.name, ref.qualifier)):
                owners.append(source)
        elif source.operator.schema.has_column(ref.name):
            owners.append(source)
    if len(owners) != 1:
        return None
    return min(owners[0].aliases)


def _extract_equi_keys(conjuncts: list[ast.Expression],
                       left: _SourceSet, right: _SourceSet):
    """Split conjuncts into hash-join key pairs and a residual list."""
    equi: list[tuple[ast.Expression, ast.Expression]] = []
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        pair = _as_equi_pair(conjunct, left, right)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(conjunct)
    return equi, residual


def _as_equi_pair(conjunct: ast.Expression, left: _SourceSet,
                  right: _SourceSet):
    """Return (left_key, right_key) if the conjunct is `a = b` across
    the two sides, else None."""
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    sides = [left, right]
    left_aliases = _aliases_of(conjunct.left, sides)
    right_aliases = _aliases_of(conjunct.right, sides)
    if not left_aliases or not right_aliases:
        return None
    if left_aliases <= left.aliases and right_aliases <= right.aliases:
        return conjunct.left, conjunct.right
    if left_aliases <= right.aliases and right_aliases <= left.aliases:
        return conjunct.right, conjunct.left
    return None


def _plan_from_where(select: ast.Select, catalog: Catalog,
                     track_lineage: bool, options: _PlanOptions
                     ) -> tuple[Operator, list[str]]:
    """Plan the FROM/WHERE part, returning the source operator tree and
    the list of base tables it reads."""
    source_tables = _collect_source_tables(select.sources)
    if not select.sources:
        # SELECT without FROM: one empty row so literals evaluate once
        schema = Schema([])
        from repro.db.executor import MaterializedSource
        root: Operator = MaterializedSource(
            schema, [((), frozenset())])
        if select.where is not None:
            root = Filter(root, select.where)
        return root, source_tables

    fragments = [_plan_join_source(source, catalog, track_lineage,
                                   options)
                 for source in select.sources]
    conjuncts = split_conjuncts(select.where)

    # push single-fragment conjuncts down onto their fragment;
    # column-free conjuncts (e.g. WHERE 1 = 0) go on the first
    # fragment so they short-circuit before any join
    remaining: list[ast.Expression] = []
    for conjunct in conjuncts:
        aliases = _aliases_of(conjunct, fragments)
        placed = False
        if aliases is not None:
            if not aliases:
                fragments[0].operator = _filtered(
                    fragments[0].operator, conjunct, options)
                placed = True
            else:
                for fragment in fragments:
                    if aliases <= fragment.aliases:
                        if not _try_index_scan(fragment, conjunct,
                                               track_lineage, options):
                            fragment.operator = _filtered(
                                fragment.operator, conjunct, options)
                        _apply_filter_estimate(fragment, conjunct)
                        placed = True
                        break
        if not placed:
            remaining.append(conjunct)

    # greedy join ordering driven by equi-predicates; with ANALYZE
    # statistics on every connected candidate, the next join is the
    # one with the smallest estimated output (so a selective dimension
    # shrinks the pipeline before a fan-out junction expands it) —
    # otherwise the rote first-connected order is kept
    current = fragments[0]
    pending = fragments[1:]
    while pending:
        connected: list[tuple[int, _SourceSet, list]] = []
        for index, candidate in enumerate(pending):
            equi, _ = _extract_equi_keys(remaining, current, candidate)
            if equi:
                connected.append((index, candidate, equi))
        if not connected:
            candidate = pending.pop(0)
            operator: Operator = NestedLoopJoin(
                current.operator, candidate.operator, None, "cross")
            current = _merge_sets(current, candidate, operator,
                                  _cross_estimate(current, candidate))
            continue
        chosen_index, _, chosen_equi = connected[0]
        if (len(connected) > 1 and current.est_rows is not None
                and all(candidate.est_rows is not None
                        for _, candidate, _ in connected)):
            best_estimate = None
            for index, candidate, equi in connected:
                estimate = _join_estimate(current, candidate, equi)
                if best_estimate is None or estimate < best_estimate:
                    best_estimate = estimate
                    chosen_index, chosen_equi = index, equi
        candidate = pending.pop(chosen_index)
        left_keys = [pair[0] for pair in chosen_equi]
        right_keys = [pair[1] for pair in chosen_equi]
        current = _make_hash_join(current, candidate, left_keys,
                                  right_keys, "inner", None, options)
        # remove consumed equi conjuncts from the remaining list
        consumed = set()
        for left_key, right_key in chosen_equi:
            consumed.add((left_key, right_key))
        remaining = [
            conjunct for conjunct in remaining
            if not (isinstance(conjunct, ast.BinaryOp)
                    and conjunct.op == "="
                    and ((conjunct.left, conjunct.right) in consumed
                         or (conjunct.right, conjunct.left) in consumed))
        ]

    root = current.operator
    residual = conjoin(remaining)
    if residual is not None:
        root = _filtered(root, residual, options)
    return root, source_tables


def _indexable_in_list(conjunct: ast.Expression):
    """The (column, literal items) of an index-usable IN conjunct.

    Only non-negated ``col IN (literal, ...)`` qualifies: the probe
    skips NULL items, which is safe because a NULL item can only make
    the predicate UNKNOWN — never TRUE — and filters drop UNKNOWN.
    """
    if (isinstance(conjunct, ast.InList) and not conjunct.negated
            and isinstance(conjunct.operand, ast.ColumnRef)
            and conjunct.items
            and all(isinstance(item, (ast.Literal, ast.Parameter))
                    for item in conjunct.items)):
        return conjunct.operand, list(conjunct.items)
    return None


def _try_index_scan(fragment: _SourceSet, conjunct: ast.Expression,
                    track_lineage: bool, options: _PlanOptions) -> bool:
    """Turn a bare SeqScan plus a ``col = constant`` or
    ``col IN (constants)`` conjunct into an IndexScan when a hash
    index covers the column.

    With ANALYZE statistics the conversion is cost-gated: per-literal
    probes only win while ``probes + estimated matches`` undercuts a
    full scan, so an IN list that rivals the table stays on the
    (fused) sequential scan. The losing path is recorded on the scan
    node (``cost_note``) so EXPLAIN shows which choice won and why.
    Without statistics every indexable conjunct converts, as before.
    """
    operator = fragment.operator
    if not isinstance(operator, SeqScan):
        return False
    scan_class = (vector.BatchIndexScan if options.batched
                  else IndexScan)
    candidates = []
    if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
        for column, constant in ((conjunct.left, conjunct.right),
                                 (conjunct.right, conjunct.left)):
            if (isinstance(column, ast.ColumnRef)
                    and isinstance(constant, (ast.Literal,
                                              ast.Parameter))):
                candidates.append((column, constant))
    else:
        in_list = _indexable_in_list(conjunct)
        if in_list is not None:
            candidates.append(in_list)
    for column, constant in candidates:
        if not operator.schema.has_column(column.name, column.qualifier):
            continue
        index = operator.table.index_on(column.name)
        if index is None:
            continue
        if fragment.est_rows is not None:
            probes = (len(constant) if isinstance(constant, list)
                      else 1)
            table_rows = max(fragment.est_rows, 1.0)
            matched = (table_rows
                       * _fragment_selectivity(fragment, conjunct))
            probe_cost = (statsmod.INDEX_PROBE_COST * probes
                          + statsmod.INDEX_ROW_COST * matched)
            # a warm scan-cache segment replays prebuilt vectors, so
            # the sequential alternative gets cheaper per row and the
            # scan-vs-probe flip moves to smaller tables
            cache = operator.table.scan_cache
            warm = (cache is not None
                    and cache.has_cached_scan(operator.table))
            scan_kind = "cached scan" if warm else "scan"
            scan_cost = (table_rows * statsmod.CACHED_SCAN_ROW_COST
                         if warm else table_rows)
            if probe_cost >= scan_cost:
                operator.cost_note = (
                    f"{index.name} skipped: {probes} probe(s) ~ est "
                    f"{matched:.0f} of {table_rows:.0f} rows, "
                    f"{scan_kind} is cheaper")
                return False
        fragment.operator = scan_class(
            operator.table, operator.qualifier, index, constant,
            track_lineage)
        if fragment.est_rows is not None:
            fragment.operator.cost_note = (
                f"cost {probe_cost:.0f} < {scan_kind} {scan_cost:.0f}")
        return True
    return False


def _collect_source_tables(sources) -> list[str]:
    tables: list[str] = []

    def visit(source) -> None:
        if isinstance(source, ast.TableRef):
            tables.append(source.name.lower())
        elif isinstance(source, ast.Join):
            visit(source.left)
            tables.append(source.right.name.lower())

    for source in sources:
        visit(source)
    return tables


# ---------------------------------------------------------------------------
# Partition-parallel exchange placement
# ---------------------------------------------------------------------------


def _parallel_input_rows(scan: Operator) -> float:
    """Estimated rows a parallel scan would read — delegated to
    :func:`repro.db.stats.parallel_input_estimate` so every parallel
    placement gate prices inputs through one policy."""
    from repro.db.stats import parallel_input_estimate
    return parallel_input_estimate(scan)


def _try_gather(node: Operator,
                context: parmod.ParallelContext) -> Operator | None:
    """Replace an eligible sub-plan with a Gather, or return None.

    Two shapes qualify:

    * a Scan→Filter→Project chain (fused or not) rooted at ``node`` —
      wrapped in :class:`repro.db.vector.BatchGather`, which runs one
      clone of the chain per partition and merges batches back into
      exact serial row order;
    * a :class:`repro.db.vector.BatchGroupAggregate` over such a chain
      — when every aggregate merges exactly
      (:func:`repro.db.expressions.merge_exact_aggregate`) the whole
      aggregate goes partition-parallel via
      :class:`repro.db.vector.BatchAggregateGather` (partial states
      merged at the gather); otherwise only the scan below it is
      parallelized and the fold stays serial, so float accumulation
      order — and therefore every emitted bit — matches the serial
      plan.

    Either way the replacement is cost-gated: partition dispatch only
    pays off when the scan reads at least ``context.min_rows`` rows.
    """
    if isinstance(node, vector.BatchGroupAggregate):
        scan = vector.parallel_scan_leaf(node.child)
        if scan is None:
            return None
        if _parallel_input_rows(scan) < context.min_rows:
            return None
        if all(exprs.merge_exact_aggregate(call, node.child.schema)
               for call in node.aggregate_calls):
            return vector.BatchAggregateGather(node, scan, context)
        node.child = vector.BatchGather(node.child, scan, context)
        return node
    if (isinstance(node, vector.BatchLimit)
            and type(node.child) is vector.BatchSort):
        replacement = _try_parallel_sort(node.child, node, context)
        if replacement is None:
            return None
        node.child = replacement
        return node
    if type(node) is vector.BatchSort:
        return _try_parallel_sort(node, None, context)
    if type(node) is vector.BatchHashJoin:
        return _try_parallel_join(node, context)
    scan = vector.parallel_scan_leaf(node)
    if scan is None:
        return None
    if _parallel_input_rows(scan) < context.min_rows:
        return None
    return vector.BatchGather(node, scan, context)


def _try_parallel_sort(sort: Operator, limit: Operator | None,
                       context: parmod.ParallelContext):
    """Replace an eligible ``BatchSort`` with a
    :class:`repro.db.vector.BatchParallelSort`. Under ORDER BY ...
    LIMIT the limit stays in the plan but ``offset + limit`` pushes
    down as top-k, so each worker ships at most that many rows."""
    scan = vector.parallel_scan_leaf(sort.child)
    if scan is None:
        return None
    if _parallel_input_rows(scan) < context.min_rows:
        return None
    ship_limit = None
    if limit is not None and limit.limit is not None:
        ship_limit = limit.limit + limit.offset
    return vector.BatchParallelSort(sort.child, scan, context,
                                    sort.keys, ship_limit)


def _join_key_partition_column(key, side: Operator, spec) -> bool:
    """True when ``key`` is a bare column reference that resolves, on
    an unprojected side chain, to the side table's partition column —
    the requirement for bucket-aligned joining."""
    if not isinstance(key, ast.ColumnRef):
        return False
    node = side
    while isinstance(node, (vector.FusedScanFilterProject,
                            vector.BatchFilter, vector.BatchProject)):
        if isinstance(node, vector.BatchProject):
            return False  # projection re-shapes the side schema
        if (isinstance(node, vector.FusedScanFilterProject)
                and node.projections is not None):
            return False
        node = node.child
    try:
        index = side.schema.index_of(key.name, key.qualifier)
    except CatalogError:
        return False
    return side.schema.columns[index].name == spec.column


def _copart_eligible(join, context: parmod.ParallelContext) -> bool:
    """Plan-time check for the co-partitioned join fast path: both
    sides hash-partitioned with equal bucket counts on exactly the
    (single) join key. Execution re-checks the cheap invariants, and
    the plan cache keys on the engine's partition epoch, so a cached
    copart plan can never outlive the specs it was planned against."""
    if len(join.left_keys) != 1:
        return False
    left_scan = vector.parallel_scan_leaf(join.left)
    right_scan = vector.parallel_scan_leaf(join.right)
    if left_scan is None or right_scan is None:
        return False
    left_spec = left_scan.table.partition_spec
    right_spec = right_scan.table.partition_spec
    if (left_spec is None or right_spec is None
            or left_spec.count != right_spec.count):
        return False
    return (_join_key_partition_column(join.left_keys[0], join.left,
                                       left_spec)
            and _join_key_partition_column(join.right_keys[0],
                                           join.right, right_spec))


def _try_parallel_join(join, context: parmod.ParallelContext):
    """Parallel placement for a hash join: the co-partitioned fast
    path when both sides qualify and the probe side clears the cost
    gate, else a parallel build when the build side does. Returning
    None lets the walker descend and parallelize the sides
    individually as plain gathers (the pre-existing behavior)."""
    build_on_left = join.build_side == "left"
    build_side = join.left if build_on_left else join.right
    probe_side = join.right if build_on_left else join.left
    if _copart_eligible(join, context):
        probe_scan = vector.parallel_scan_leaf(probe_side)
        if _parallel_input_rows(probe_scan) >= context.min_rows:
            return vector.BatchParallelHashJoin(join, context,
                                                copart=True)
    build_scan = vector.parallel_scan_leaf(build_side)
    if build_scan is None:
        return None
    if _parallel_input_rows(build_scan) < context.min_rows:
        return None
    parallel = vector.BatchParallelHashJoin(join, context)
    # the probe side still streams through in-process: give it its
    # own gather when it qualifies on its own merits
    if build_on_left:
        parallel.right = parallelize_plan(parallel.right, context)
    else:
        parallel.left = parallelize_plan(parallel.left, context)
    return parallel


def parallelize_plan(root: Operator,
                     context: parmod.ParallelContext) -> Operator:
    """Walk a planned tree top-down, replacing every eligible sub-plan
    (including scan sides of joins) with a partition-parallel Gather.
    A replaced sub-plan becomes the gather's *template* and is not
    descended into again."""
    replacement = _try_gather(root, context)
    if replacement is not None:
        return replacement
    for attr in ("child", "left", "right", "inner"):
        sub = getattr(root, attr, None)
        if isinstance(sub, Operator):
            setattr(root, attr, parallelize_plan(sub, context))
    children = getattr(root, "children", None)
    if isinstance(children, list):
        for index, sub in enumerate(children):
            children[index] = parallelize_plan(sub, context)
    return root


# ---------------------------------------------------------------------------
# Full SELECT planning
# ---------------------------------------------------------------------------


def _expand_stars(select: ast.Select, schema: Schema) -> list[ast.SelectItem]:
    """Replace * / alias.* select items with explicit column references."""
    items: list[ast.SelectItem] = []
    for item in select.items:
        if isinstance(item.expression, ast.Star):
            qualifier = item.expression.qualifier
            matched = False
            for column, column_qualifier in zip(schema.columns,
                                                schema.qualifiers):
                if qualifier is not None and (
                        column_qualifier is None
                        or column_qualifier.lower() != qualifier.lower()):
                    continue
                matched = True
                items.append(ast.SelectItem(
                    ast.ColumnRef(column.name, column_qualifier)))
            if not matched:
                raise ExecutionError(
                    f"unknown table alias in {qualifier}.*")
        else:
            items.append(item)
    return items


def plan_select(select: ast.Select, catalog: Catalog,
                track_lineage: bool = False,
                fuse: bool = True,
                parallel: parmod.ParallelContext | None = None
                ) -> PlannedQuery:
    """Plan a SELECT statement into an executable operator tree.

    Plans are vectorized (batch operators) whenever
    :func:`repro.db.vector.vectorized_enabled` allows; ``fuse=False``
    keeps Scan/Filter/Project as separate nodes (EXPLAIN ANALYZE needs
    per-operator attribution). With a ``parallel`` context of more
    than one worker, eligible sub-plans are wrapped in partition-
    parallel Gather operators (:func:`parallelize_plan`).
    """
    options = _plan_options(fuse)
    source, source_tables = _plan_from_where(select, catalog,
                                             track_lineage, options)
    items = _expand_stars(select, source.schema)

    output_expressions = [item.expression for item in items]
    output_columns = []
    for index, item in enumerate(items):
        name = item.alias or derive_column_name(item.expression, index)
        output_columns.append(
            Column(name, infer_type(item.expression, source.schema)))
    visible_width = len(output_expressions)
    visible_schema = Schema(output_columns)

    has_aggregates = bool(select.group_by) or any(
        exprs.contains_aggregate(expression)
        for expression in output_expressions) or (
            select.having is not None
            and exprs.contains_aggregate(select.having))
    if select.having is not None and not has_aggregates:
        raise SQLSyntaxError("HAVING requires aggregation")

    # ORDER BY handling: match select aliases / expressions, else append
    # hidden output columns.
    sort_keys: list[tuple[int, bool]] = []
    hidden: list[ast.Expression] = []
    for order_item in select.order_by:
        index = _match_order_expression(order_item.expression, items)
        if index is None:
            index = visible_width + len(hidden)
            hidden.append(order_item.expression)
        sort_keys.append((index, order_item.descending))
    all_expressions = output_expressions + hidden
    full_columns = list(output_columns) + [
        Column(f"_sort{i}", infer_type(expression, source.schema))
        for i, expression in enumerate(hidden)]
    full_schema = Schema(full_columns)

    if has_aggregates:
        aggregate_class = (vector.BatchGroupAggregate if options.batched
                           else GroupAggregate)
        root: Operator = aggregate_class(
            source, list(select.group_by), all_expressions,
            full_schema, select.having)
    elif (options.fuse
          and isinstance(source, vector.FusedScanFilterProject)
          and source.projections is None):
        source.absorb_projections(all_expressions, full_schema)
        root = source
    elif options.fuse and isinstance(source, (vector.BatchSeqScan,
                                              vector.BatchIndexScan)):
        root = vector.FusedScanFilterProject(
            source, None, all_expressions, full_schema)
    elif options.batched:
        root = vector.BatchProject(source, all_expressions, full_schema)
    else:
        root = Project(source, all_expressions, full_schema)

    if select.distinct:
        distinct_class = (vector.BatchDistinct if options.batched
                          else Distinct)
        root = distinct_class(root, visible_width if hidden else None)
    if sort_keys:
        sort_class = vector.BatchSort if options.batched else Sort
        root = sort_class(root, sort_keys)
    if select.limit is not None or select.offset is not None:
        limit_class = vector.BatchLimit if options.batched else Limit
        root = limit_class(root, select.limit, select.offset)
    if hidden:
        strip_class = (vector.BatchStripColumns if options.batched
                       else StripColumns)
        root = strip_class(root, visible_width, visible_schema)
    if (parallel is not None and parallel.workers > 1
            and options.batched):
        root = parallelize_plan(root, parallel)
    return PlannedQuery(root, visible_schema, source_tables)


def plan_setop(setop: ast.SetOp, catalog: Catalog,
               track_lineage: bool = False,
               fuse: bool = True,
               parallel: parmod.ParallelContext | None = None
               ) -> PlannedQuery:
    """Plan a UNION [ALL] chain into a Union (+ Distinct) operator."""
    from repro.db.executor import Union as UnionOp

    options = _plan_options(fuse)
    DistinctOp = (vector.BatchDistinct if options.batched else Distinct)
    union_class = vector.BatchUnion if options.batched else UnionOp

    branches: list[tuple[ast.Select, bool]] = []

    def flatten(node, all_rows: bool) -> None:
        # a chain a UNION b UNION ALL c is left-associative; each
        # SetOp's `all` flag governs the duplicates of the whole chain
        # up to that point, so track the strictest (non-ALL) flag seen
        if isinstance(node, ast.SetOp):
            flatten(node.left, all_rows and node.all)
            branches.append((node.right, True))
        else:
            branches.append((node, True))

    flatten(setop, True)
    planned = [plan_select(select, catalog, track_lineage, fuse,
                           parallel)
               for select, _ in branches]
    first_schema = planned[0].schema
    root: Operator = union_class([entry.root for entry in planned])
    # SQL UNION (without ALL) applies set semantics to the whole chain;
    # a chain with any non-ALL link deduplicates (standard semantics
    # for a left-deep chain ending in UNION)
    if not setop.all:
        root = DistinctOp(root)
        root.schema = first_schema  # type: ignore[assignment]
    source_tables: list[str] = []
    for entry in planned:
        source_tables.extend(entry.source_tables)
    return PlannedQuery(root, first_schema, source_tables)


def _match_order_expression(expression: ast.Expression,
                            items: list[ast.SelectItem]) -> int | None:
    """Match an ORDER BY expression to a select item by alias or equality."""
    if isinstance(expression, ast.ColumnRef) and expression.qualifier is None:
        for index, item in enumerate(items):
            if item.alias and item.alias.lower() == expression.name.lower():
                return index
    for index, item in enumerate(items):
        if item.expression == expression:
            return index
    # ORDER BY 1 style positional reference
    if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
        position = expression.value
        if 1 <= position <= len(items):
            return position - 1
    return None
