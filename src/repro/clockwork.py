"""Logical clock — the discrete time domain ``T`` of the paper.

Execution traces (Definition 2) annotate every edge with an interval over
a *discrete time domain*. Real wall-clock time is a poor fit for tests
and deterministic replay, so the whole system shares one
:class:`LogicalClock` per run: every observable event (syscall, statement
execution, tuple production) draws a fresh, strictly increasing tick.

The clock also supports *spans*: an operation that extends over time
(a process holding a file open) records the tick at start and at end and
stores the pair as a :class:`repro.provenance.interval.TimeInterval`.
"""

from __future__ import annotations


class LogicalClock:
    """A strictly monotonic integer clock.

    >>> clock = LogicalClock()
    >>> clock.tick()
    1
    >>> clock.tick()
    2
    >>> clock.now
    2
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time 0")
        self._now = start

    @property
    def now(self) -> int:
        """The last tick handed out (``start`` if none yet)."""
        return self._now

    def tick(self) -> int:
        """Advance time by one unit and return the new tick."""
        self._now += 1
        return self._now

    def advance(self, delta: int) -> int:
        """Advance time by ``delta >= 1`` units and return the new tick."""
        if delta < 1:
            raise ValueError("clock can only move forward")
        self._now += delta
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now})"
