"""LDV core: audit, packaging, and re-execution (Sections VII–VIII).

The paper's user-facing surface is two commands; this package provides
their programmatic equivalents plus the building blocks:

* :func:`repro.core.audit.ldv_audit` — run an application under full
  monitoring and build a re-executable package (``ldv-audit``),
* :func:`repro.core.replay.ldv_exec` — re-execute a package
  (``ldv-exec``),
* :mod:`repro.core.package` — the on-disk package format,
* :mod:`repro.core.packager` — server-included / server-excluded
  package construction (Section VII-D),
* :mod:`repro.core.relevance` — trace-based relevant-tuple computation.
"""

from repro.core.audit import AuditReport, ldv_audit
from repro.core.package import Package, PackageKind
from repro.core.packager import Packager, PackagingResult
from repro.core.relevance import relevant_tuple_versions
from repro.core.replay import ReplayResult, ldv_exec

__all__ = [
    "AuditReport",
    "ldv_audit",
    "Package",
    "PackageKind",
    "Packager",
    "PackagingResult",
    "relevant_tuple_versions",
    "ReplayResult",
    "ldv_exec",
]
