"""Trace-based relevant-tuple computation (Section VII-D).

"A tuple version is relevant to the application if it is not created by
the application itself (no incoming edge in the execution trace) and
the state of an activity in the execution trace depends on it."

The streaming collector in :mod:`repro.monitor.dbmonitor` implements
the same rule incrementally during audit (that is what the benchmarks
exercise); this module is the declarative, trace-only version used to
validate the collector and to support post-hoc packaging of a stored
trace.
"""

from __future__ import annotations

from repro.db.provtypes import TupleRef
from repro.provenance.inference import DependencyInference
from repro.provenance.lineage import TUPLE, is_returned_edge, tuple_ref_of
from repro.provenance.trace import ExecutionTrace


def relevant_tuple_versions(trace: ExecutionTrace) -> set[TupleRef]:
    """The tuple versions a server-included package must ship."""
    inference = DependencyInference(trace)
    needed: set[str] = set()
    for activity in trace.activities():
        for node_id in inference.dependencies_of(activity.node_id):
            needed.add(node_id)
    relevant: set[TupleRef] = set()
    for entity in trace.entities(TUPLE):
        node_id = entity.node_id
        if node_id not in needed:
            continue
        if _created_by_application(trace, node_id):
            continue
        ref = tuple_ref_of(node_id)
        if ref.table.startswith("_result"):
            continue  # synthetic query-result entities are not stored
        relevant.add(ref)
    return relevant


def _created_by_application(trace: ExecutionTrace, node_id: str) -> bool:
    """True if some monitored statement produced this tuple version."""
    return any(is_returned_edge(edge.label)
               for edge in trace.in_edges(node_id))
