"""One-shot audit + packaging (the ``ldv-audit`` command).

``ldv_audit`` runs an application under full monitoring on a prepared
virtual OS and immediately builds the requested package kind. For
finer control (timing individual workload steps, as the benchmarks
do), drive :class:`repro.monitor.session.AuditSession` and
:class:`repro.core.packager.Packager` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.db.engine import Database
from repro.errors import AuditError
from repro.monitor.session import (
    SERVER_EXCLUDED,
    SERVER_INCLUDED,
    AuditSession,
)
from repro.core.packager import Packager, PackagingResult
from repro.vos.kernel import VirtualOS
from repro.vos.process import Process


@dataclass
class AuditReport:
    """The audited run plus the package built from it."""

    process: Process
    session: AuditSession
    packaging: PackagingResult

    @property
    def package_path(self) -> Path:
        return self.packaging.package.root

    @property
    def package_bytes(self) -> int:
        return self.packaging.total_bytes


def ldv_audit(vos: VirtualOS, entry_binary: str, out_dir: str | Path,
              mode: str = SERVER_INCLUDED,
              argv: Sequence[str] | None = None,
              database: Database | None = None,
              server_name: str = "main",
              server_binary_paths: Sequence[str] = ()) -> AuditReport:
    """Run ``entry_binary`` under LDV monitoring and build a package.

    ``database`` (the server's engine) is required for server-included
    packaging; ``server_binary_paths`` lists the server's binaries in
    the virtual filesystem so they can be shipped.
    """
    if mode not in (SERVER_INCLUDED, SERVER_EXCLUDED):
        raise AuditError(f"packaging requires mode {SERVER_INCLUDED!r} "
                         f"or {SERVER_EXCLUDED!r}, not {mode!r}")
    with AuditSession(vos, mode, database=database) as session:
        process = vos.run(entry_binary, list(argv or []))
    packager = Packager(vos, session, entry_binary, list(argv or []))
    if mode == SERVER_INCLUDED:
        assert database is not None
        packaging = packager.build_server_included(
            out_dir, database, server_name, list(server_binary_paths))
    else:
        packaging = packager.build_server_excluded(out_dir, server_name)
    return AuditReport(process=process, session=session,
                       packaging=packaging)
