"""Re-executing packages (Section VIII).

:class:`ReplaySession` drives re-execution in two explicit phases so
benchmarks can time them separately (Figure 7b plots "Initialization"
as its own bar):

1. :meth:`prepare` — build a fresh virtual OS, import the package's
   file snapshot (the chroot-like environment), and either

   * **server-included**: boot a new DB server inside the package
     scope — run ``schema.sql``, bulk-load the relevant tuple versions
     with their original rowids/versions, register the server under
     its original name — or
   * **server-excluded**: load the replay log and arrange for every
     new client to be intercepted by a :class:`ReplayInterceptor`
     that substitutes recorded results (writes are matched and
     acknowledged, never executed).

2. :meth:`run` — execute the entry program (or any other packaged
   binary, for partial re-execution).

Programs are Python callables, so behaviour comes from a *registry*
mapping binary paths to callables (our stand-in for "compatible
architecture" in application virtualization); the package supplies the
binary files themselves and replay refuses to run binaries that are
not in the package.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional

from repro.db import csvio, protocol
from repro.db.client import DBClient, Interceptor
from repro.db.engine import Database, StatementResult
from repro.errors import PackageError, ReplayError, ReplayMismatchError
from repro.monitor.dbmonitor import ReplayLog
from repro.core import package as pkg
from repro.core.package import Package, PackageKind
from repro.vos.kernel import VirtualOS
from repro.vos.process import Process
from repro.vos.ptrace import Tracer
from repro.vos.syscalls import SyscallEvent, SyscallName

Registry = Mapping[str, Callable]

_WHITESPACE = re.compile(r"\s+")


def normalize_sql(sql: str) -> str:
    """The statement-matching normalization: collapse whitespace,
    strip trailing semicolons. Replay demands the same statements in
    the same order (Section VIII); cosmetic spacing may differ."""
    return _WHITESPACE.sub(" ", sql).strip().rstrip(";").strip()


class ReplayInterceptor(Interceptor):
    """Substitutes recorded results for statements, in log order.

    With ``allow_skip`` (partial re-execution), statements recorded
    before the replayed part are skipped until a match is found;
    without it, any deviation from the recorded order fails fast.
    """

    def __init__(self, log: ReplayLog, allow_skip: bool = False) -> None:
        self.log = log
        self.allow_skip = allow_skip
        self.position = 0
        self.replayed = 0

    def before_execute(self, client: DBClient, sql: str,
                       provenance: bool) -> Optional[StatementResult]:
        wanted = normalize_sql(sql)
        index = self.position
        while index < len(self.log.entries):
            entry = self.log.entries[index]
            if normalize_sql(entry.sql) == wanted:
                self.position = index + 1
                self.replayed += 1
                return protocol.result_from_wire(entry.result_frame)
            if not self.allow_skip:
                raise ReplayMismatchError(
                    "statement does not match the recorded execution "
                    "trace", expected=entry.sql, actual=sql)
            index += 1
        raise ReplayMismatchError(
            "no recorded result for statement (log exhausted)",
            expected=None, actual=sql)


def _stub_transport(request_text: str) -> str:
    """The 'simulated DB' endpoint of a server-excluded replay: it
    accepts connections and acknowledges statement-free bookkeeping
    frames (prepare/deallocate/close-cursor), but can answer no
    queries — the interceptor must have substituted every result
    before this point. Prepared and streamed executions go through
    the same ``before_execute`` hook as text statements (the client
    hands interceptors the canonical bound SQL), so substituting them
    needs nothing extra here."""
    frame = protocol.decode_frame(request_text)
    kind = frame.get("frame")
    if kind == "connect":
        client_version = frame.get("version", 1)
        response = protocol.connected_frame(
            1, min(protocol.PROTOCOL_VERSION, client_version))
    elif kind == "close":
        response = protocol.closed_frame()
    elif kind == "prepare":
        # parse locally for the parameter count; planning happens
        # nowhere — execution will be substituted
        from repro.db.sql.params import max_parameter_index
        from repro.db.sql.parser import parse_sql

        statements = parse_sql(frame.get("sql", ""))
        count = max_parameter_index(statements[0]) if statements else 0
        response = protocol.prepared_frame(frame.get("name", ""), count)
    elif kind == "deallocate":
        response = protocol.deallocated_frame(frame.get("name", ""))
    elif kind == "close-cursor":
        response = protocol.cursor_closed_frame(
            frame.get("cursor_id", 0))
    else:
        response = protocol.error_frame(
            "ReplayError",
            "server-excluded package cannot execute statements")
    return protocol.encode_frame(response)


class _WriteCollector(Tracer):
    """Tracks files written during replay (the replay outputs)."""

    def __init__(self) -> None:
        self.paths: set[str] = set()

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name is SyscallName.WRITE:
            self.paths.add(event.arg("path"))


@dataclass
class ReplayResult:
    """The outcome of one package re-execution."""

    process: Process
    outputs: dict[str, bytes]
    replayed_statements: int = 0
    restored_tuples: int = 0
    # path -> True/False for every output the audit recorded a digest
    # for and this replay produced (validation, Section III)
    output_matches: dict[str, bool] = None  # type: ignore[assignment]

    @property
    def validated(self) -> bool:
        """True when every comparable output matched the recorded
        digest (vacuously true if the package has no digests)."""
        if not self.output_matches:
            return True
        return all(self.output_matches.values())


class ReplaySession:
    """Prepares and runs one package re-execution."""

    def __init__(self, package_dir: str | Path, registry: Registry,
                 scratch_dir: str | Path | None = None,
                 allow_skip: bool = False) -> None:
        self.package = Package.load(package_dir)
        self.registry = dict(registry)
        self.scratch_dir = (Path(scratch_dir) if scratch_dir is not None
                            else Path(package_dir) / ".runtime")
        self.allow_skip = allow_skip
        self.vos: Optional[VirtualOS] = None
        self.database: Optional[Database] = None
        self.restored_tuples = 0
        self._interceptors: list[ReplayInterceptor] = []
        self._writes = _WriteCollector()
        self._prepared = False

    # -- phase 1: initialization -----------------------------------------------------

    def prepare(self) -> None:
        """Import the file snapshot and initialize the DB side."""
        if self._prepared:
            raise ReplayError("replay session already prepared")
        vos = VirtualOS()
        files_root = self.package.root / pkg.FILES_DIR
        if files_root.is_dir():
            vos.fs.import_tree(files_root, "/")
        self._bind_programs(vos)
        kind = self.package.manifest.kind
        if kind in (PackageKind.SERVER_INCLUDED, PackageKind.PTU):
            self._prepare_server_included(vos)
        elif kind is PackageKind.SERVER_EXCLUDED:
            self._prepare_server_excluded(vos)
        vos.attach_tracer(self._writes)
        self.vos = vos
        self._prepared = True

    def _bind_programs(self, vos: VirtualOS) -> None:
        bound = 0
        for binary_path, fn in self.registry.items():
            if vos.fs.is_file(binary_path):
                vos.bind_program(binary_path, fn)
                bound += 1
        entry = self.package.manifest.entry_binary
        if not vos.fs.is_file(entry):
            raise PackageError(
                f"package is missing its entry binary {entry!r}")
        if not vos.has_program(entry):
            raise PackageError(
                f"no registered program for entry binary {entry!r}")

    def _prepare_server_included(self, vos: VirtualOS) -> None:
        """Boot a fresh server and restore the relevant tuples
        ("we restore these tuples before any query occurs")."""
        from repro.db.server import DBServer  # local: avoid cycle

        server_name = self.package.manifest.db_server_name
        if server_name is None:
            raise PackageError("server-included package without a "
                               "DB server name")
        database = Database(data_directory=self.scratch_dir / "pgdata",
                            clock=vos.clock)
        # the packaged server lives inside the package's chroot-like
        # environment: COPY statements must read/write the virtual FS
        database.read_file = vos.fs.read_text
        database.write_file = (
            lambda path, text: vos.fs.write_text(path, text,
                                                 create_parents=True))
        if self.package.has(pkg.SCHEMA_FILE):
            database.execute_script(self.package.read_text(pkg.SCHEMA_FILE))
        if self.package.manifest.kind is PackageKind.PTU:
            self._restore_full_data(database)
        else:
            self._restore_relevant_tuples(database)
        database.checkpoint()
        vos.register_db_server(server_name, DBServer(database).transport())
        self.database = database

    def _restore_relevant_tuples(self, database: Database) -> None:
        for table_name in self.package.restore_tables():
            heap = database.catalog.get_table(table_name)
            text = self.package.read_text(
                f"{pkg.RESTORE_DIR}/{table_name}.csv")
            for rowid, version, values in csvio.parse_versioned_rows(
                    text, heap.schema):
                heap.restore_row(rowid, values, version)
                self.restored_tuples += 1

    def _restore_full_data(self, database: Database) -> None:
        """PTU packages carry complete table files under db/data."""
        from repro.db.storage import HeapTable

        data_dir = self.package.root / pkg.DATA_DIR
        for path in sorted(data_dir.glob("*.tbl")):
            table = HeapTable.deserialize(path.read_text())
            database.catalog._tables[table.name] = table
            self.restored_tuples += table.row_count

    def _prepare_server_excluded(self, vos: VirtualOS) -> None:
        manifest = self.package.manifest
        server_names = set(manifest.notes.get("db_servers", ()))
        if manifest.db_server_name is not None:
            server_names.add(manifest.db_server_name)
        if not server_names:
            raise PackageError("server-excluded package without a "
                               "DB server name")
        log = ReplayLog.from_jsonl(self.package.read_text(pkg.REPLAY_LOG))
        # one shared interceptor: the log is a single ordered stream,
        # regardless of how many servers the application talked to
        interceptor = ReplayInterceptor(log, allow_skip=self.allow_skip)
        self._interceptors.append(interceptor)
        for server_name in server_names:
            vos.register_db_server(server_name, _stub_transport)
        vos.client_decorators.append(
            lambda client, process: client.add_interceptor(interceptor))

    # -- phase 2: execution -------------------------------------------------------------

    def run(self, binary: str | None = None,
            argv: list[str] | None = None) -> ReplayResult:
        """Execute the entry program (or ``binary`` for partial
        re-execution) inside the restored environment."""
        if not self._prepared:
            raise ReplayError("call prepare() before run()")
        assert self.vos is not None
        manifest = self.package.manifest
        target = binary or manifest.entry_binary
        target_argv = argv if argv is not None else manifest.entry_argv
        process = self.vos.run(target, target_argv)
        outputs = {
            path: self.vos.fs.read_file(path)
            for path in sorted(self._writes.paths)
            if self.vos.fs.is_file(path)}
        replayed = sum(interceptor.replayed
                       for interceptor in self._interceptors)
        recorded = self.package.manifest.notes.get("output_digests", {})
        matches = {
            path: hashlib.sha256(content).hexdigest() == recorded[path]
            for path, content in outputs.items() if path in recorded}
        return ReplayResult(
            process=process,
            outputs=outputs,
            replayed_statements=replayed,
            restored_tuples=self.restored_tuples,
            output_matches=matches)


def ldv_exec(package_dir: str | Path, registry: Registry,
             binary: str | None = None, argv: list[str] | None = None,
             scratch_dir: str | Path | None = None,
             allow_skip: bool = False) -> ReplayResult:
    """One-shot re-execution: prepare + run (the ``ldv-exec`` command)."""
    session = ReplaySession(package_dir, registry,
                            scratch_dir=scratch_dir, allow_skip=allow_skip)
    session.prepare()
    return session.run(binary, argv)
