"""Package construction (Section VII-D).

:class:`Packager` turns a completed :class:`AuditSession` into an
on-disk package. Common to both kinds: the input-file snapshot (the
chroot-like environment of application virtualization) and the
serialized execution trace. Then:

* **server-included** — DB server binaries, ``schema.sql`` for every
  shipped table, and one restore CSV per table holding the *relevant
  tuple versions* (never the raw data files: the package's data
  directory is empty, per Table III),
* **server-excluded** — no server, no tuples; just the recorded
  statement/result log for replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.db import csvio
from repro.db.engine import Database
from repro.db.sql import ast
from repro.db.sql.render import render_statement
from repro.errors import PackageError
from repro.monitor.session import (
    SERVER_EXCLUDED,
    SERVER_INCLUDED,
    AuditSession,
)
from repro.core import package as pkg
from repro.core.package import Manifest, Package, PackageKind
from repro.vos.kernel import VirtualOS


@dataclass
class PackagingResult:
    """What was built, and how big it came out."""

    package: Package
    total_bytes: int
    file_count: int
    tuple_count: int = 0
    replayed_statements: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)


def schema_sql_for(database: Database, tables: Iterable[str]) -> str:
    """Generate the DDL (tables + indexes) for the given tables from
    the live catalog."""
    statements = []
    for name in sorted(set(tables)):
        table = database.catalog.get_table(name)
        columns = tuple(
            ast.ColumnDef(
                name=column.name,
                type_name=column.sql_type.value,
                not_null=column.not_null and not column.primary_key,
                primary_key=column.primary_key)
            for column in table.schema.columns)
        statements.append(render_statement(
            ast.CreateTable(name, columns)) + ";")
        for index in table.indexes.values():
            statements.append(render_statement(
                ast.CreateIndex(index.name, name, index.column)) + ";")
    return "\n".join(statements) + ("\n" if statements else "")


class Packager:
    """Builds packages from one audited run."""

    def __init__(self, vos: VirtualOS, session: AuditSession,
                 entry_binary: str,
                 entry_argv: Sequence[str] = ()) -> None:
        self.vos = vos
        self.session = session
        self.entry_binary = entry_binary
        self.entry_argv = list(entry_argv)

    # -- shared pieces --------------------------------------------------------------

    def _write_common(self, package: Package) -> int:
        """Input-file snapshot + execution trace + output digests.

        The digests of the files the audited run *wrote* go into the
        manifest so re-execution can be validated, not just repeated —
        the provenance-enables-validation argument of Section III.
        Returns the number of files snapshotted.
        """
        count = 0
        for virtual_path in sorted(self.session.input_paths()):
            self.vos.fs.export_file(virtual_path,
                                    package.file_path(virtual_path))
            count += 1
        package.write_trace(self.session.trace.to_json())
        digests = {}
        for virtual_path in sorted(self.session.ptu.written_paths):
            if self.vos.fs.is_file(virtual_path):
                content = self.vos.fs.read_file(virtual_path)
                digests[virtual_path] = hashlib.sha256(
                    content).hexdigest()
        package.manifest.notes["output_digests"] = digests
        package.manifest.notes["db_servers"] = sorted(
            self.session.ptu.connected_servers)
        package.write_manifest()
        return count

    # -- server-included -----------------------------------------------------------------

    def build_server_included(self, out_dir: str | Path,
                              database: Database,
                              server_name: str,
                              server_binary_paths: Sequence[str],
                              ) -> PackagingResult:
        """Build a server-included package (needs server file access)."""
        if self.session.mode != SERVER_INCLUDED:
            raise PackageError(
                "session was not audited in server-included mode")
        # drain the WAL so the schema and tuple versions we package come
        # from a crash-consistent image of committed state (a no-op for
        # in-memory databases)
        database.checkpoint()
        store = self.session.relevant_tuples
        tables = self._tables_to_ship(database)
        manifest = Manifest(
            kind=PackageKind.SERVER_INCLUDED,
            entry_binary=self.entry_binary,
            entry_argv=self.entry_argv,
            db_server_name=server_name,
            tables=tables,
            notes={"relevant_tuples": store.tuple_count},
        )
        package = Package.create(out_dir, manifest)
        file_count = self._write_common(package)
        # server binaries (legally shareable by assumption, VII-D)
        for virtual_path in server_binary_paths:
            if not self.vos.fs.exists(virtual_path):
                raise PackageError(
                    f"server binary {virtual_path!r} not in the "
                    "virtual filesystem")
            self.vos.fs.export_file(
                virtual_path,
                package.root / pkg.SERVER_DIR / virtual_path.lstrip("/"))
            file_count += 1
        # schema + relevant tuple versions
        package.write_text(pkg.SCHEMA_FILE,
                           schema_sql_for(database, tables))
        for table in store.tables():
            schema = database.catalog.get_table(table).schema
            package.write_text(
                f"{pkg.RESTORE_DIR}/{table}.csv",
                csvio.format_versioned_rows(store.rows_for(table), schema))
        # the empty data directory of Table III
        package.write_text(f"{pkg.DATA_DIR}/.keep", "")
        return PackagingResult(
            package=package,
            total_bytes=package.total_bytes(),
            file_count=file_count,
            tuple_count=store.tuple_count,
            breakdown=package.breakdown())

    def _tables_to_ship(self, database: Database) -> list[str]:
        tables: set[str] = set(self.session.relevant_tuples.tables())
        for ref in self.session.created_refs:
            tables.add(ref.table)
        monitor = self.session.db_monitor
        if monitor is not None and monitor.versions is not None:
            tables.update(monitor.versions.enabled_tables)
        return sorted(table for table in tables
                      if database.catalog.has_table(table))

    # -- server-excluded -----------------------------------------------------------------

    def build_server_excluded(self, out_dir: str | Path,
                              server_name: str) -> PackagingResult:
        """Build a server-excluded package (client access suffices)."""
        if self.session.mode != SERVER_EXCLUDED:
            raise PackageError(
                "session was not audited in server-excluded mode")
        log = self.session.replay_log
        manifest = Manifest(
            kind=PackageKind.SERVER_EXCLUDED,
            entry_binary=self.entry_binary,
            entry_argv=self.entry_argv,
            db_server_name=server_name,
            notes={"recorded_statements": len(log)},
        )
        package = Package.create(out_dir, manifest)
        file_count = self._write_common(package)
        package.write_text(pkg.REPLAY_LOG, log.to_jsonl())
        return PackagingResult(
            package=package,
            total_bytes=package.total_bytes(),
            file_count=file_count,
            replayed_statements=len(log),
            breakdown=package.breakdown())
