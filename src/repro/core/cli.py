"""Command-line front end: ``ldv-audit`` and ``ldv-exec``.

Applications in this reproduction are Python programs running on the
virtual OS, so both commands take a *scenario*: a ``module:function``
reference resolving to a callable that returns a :class:`Scenario`
(the prepared virtual OS, DB server, entry binary, and the program
registry replay needs). The workloads package ships ready-made ones,
e.g.::

    ldv-audit repro.workloads.app:build_scenario --mode server-included \
        --out /tmp/pkg
    ldv-exec /tmp/pkg repro.workloads.app:build_scenario
"""

from __future__ import annotations

import argparse
import importlib
import sys
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.audit import ldv_audit
from repro.core.replay import ldv_exec
from repro.db.engine import Database
from repro.errors import ReproError
from repro.monitor.session import SERVER_EXCLUDED, SERVER_INCLUDED
from repro.vos.kernel import VirtualOS


@dataclass
class Scenario:
    """Everything needed to audit or replay one application."""

    vos: VirtualOS
    entry_binary: str
    registry: Mapping[str, Callable]
    argv: list[str] = field(default_factory=list)
    database: Database | None = None
    server_name: str = "main"
    server_binary_paths: list[str] = field(default_factory=list)


def load_scenario(spec: str) -> Scenario:
    """Resolve ``module:function`` and call it."""
    module_name, _, attribute = spec.partition(":")
    if not attribute:
        raise ReproError(
            f"scenario spec {spec!r} must look like module:function")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ReproError(f"cannot import scenario module: {exc}") from exc
    factory = getattr(module, attribute, None)
    if factory is None:
        raise ReproError(f"{module_name} has no attribute {attribute!r}")
    if not callable(factory):
        raise ReproError(f"{spec} is not callable")
    scenario = factory()
    if not isinstance(scenario, Scenario):
        raise ReproError(
            f"{spec} returned {type(scenario).__name__}, not Scenario")
    return scenario


def _fail(prog: str, exc: ReproError) -> int:
    """One-line diagnostic, non-zero exit — never a traceback.

    Any :class:`ReproError` a command body raises (bad scenario, audit
    breakdown, WAL corruption, package validation, ...) lands here.
    """
    print(f"{prog}: error: {type(exc).__name__}: {exc}", file=sys.stderr)
    return 1


def audit_main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ldv-audit",
        description="Run an application under LDV monitoring and build "
                    "a re-executable package.")
    parser.add_argument("scenario", help="module:function building the "
                                         "Scenario to audit")
    parser.add_argument("--mode", choices=[SERVER_INCLUDED, SERVER_EXCLUDED],
                        default=SERVER_INCLUDED)
    parser.add_argument("--out", required=True,
                        help="package output directory (must be empty)")
    args = parser.parse_args(argv)
    try:
        scenario = load_scenario(args.scenario)
        report = ldv_audit(
            scenario.vos, scenario.entry_binary, args.out,
            mode=args.mode, argv=scenario.argv,
            database=scenario.database,
            server_name=scenario.server_name,
            server_binary_paths=scenario.server_binary_paths)
        print(f"audited {scenario.entry_binary} "
              f"(exit {report.process.exit_code})")
        print(f"package: {report.package_path} "
              f"({report.package_bytes} bytes, kind={args.mode})")
    except ReproError as exc:
        return _fail("ldv-audit", exc)
    return 0 if report.process.exit_code == 0 else report.process.exit_code


def exec_main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ldv-exec",
        description="Re-execute an LDV package.")
    parser.add_argument("package", help="package directory")
    parser.add_argument("scenario",
                        help="module:function supplying the program "
                             "registry")
    parser.add_argument("--binary", default=None,
                        help="re-execute this packaged binary instead "
                             "of the recorded entry point (partial "
                             "re-execution)")
    parser.add_argument("--allow-skip", action="store_true",
                        help="allow skipping recorded statements "
                             "(needed for partial re-execution of "
                             "server-excluded packages)")
    args = parser.parse_args(argv)
    try:
        scenario = load_scenario(args.scenario)
        result = ldv_exec(args.package, scenario.registry,
                          binary=args.binary,
                          allow_skip=args.allow_skip)
        print(f"re-executed (exit {result.process.exit_code}); "
              f"{result.replayed_statements} statements replayed, "
              f"{result.restored_tuples} tuples restored")
        for path in sorted(result.outputs):
            verdict = ""
            if result.output_matches and path in result.output_matches:
                verdict = ("  [matches original]"
                           if result.output_matches[path]
                           else "  [DIFFERS from original]")
            print(f"output: {path} ({len(result.outputs[path])} bytes)"
                  f"{verdict}")
    except ReproError as exc:
        return _fail("ldv-exec", exc)
    if not result.validated:
        print("validation FAILED: outputs differ from the audited run",
              file=sys.stderr)
        return 3
    return result.process.exit_code or 0
