"""``ldv-trace`` — inspect the execution trace shipped in a package.

Section II promises that the linked provenance model "enables us to
... answer reachability queries (does data item d depend on data item
d')". This tool exposes that over a package's ``trace.json.gz``:

* ``ldv-trace PKG``                      — summary (node/edge census),
* ``ldv-trace PKG --entities [TYPE]``    — list entities,
* ``ldv-trace PKG --deps NODE``          — everything NODE depends on,
* ``ldv-trace PKG --depends D D2``       — reachability yes/no,
* ``ldv-trace PKG --prov OUT.json``      — PROV-JSON export.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.core.package import Package
from repro.errors import ReproError, UnknownNodeError
from repro.provenance.combined import COMBINED_MODEL
from repro.provenance.inference import DependencyInference
from repro.provenance.prov_export import trace_to_prov
from repro.provenance.trace import ExecutionTrace


def load_package_trace(package_dir: str | Path) -> ExecutionTrace:
    """Load the combined execution trace from a package."""
    package = Package.load(package_dir)
    return ExecutionTrace.from_json(package.read_trace(), COMBINED_MODEL)


def summarize(trace: ExecutionTrace) -> dict[str, int]:
    """Node/edge census by type."""
    summary: dict[str, int] = {}
    for node in trace.nodes():
        key = f"{node.kind}:{node.type_label}"
        summary[key] = summary.get(key, 0) + 1
    for edge in trace.edges():
        key = f"edge:{edge.label}"
        summary[key] = summary.get(key, 0) + 1
    return summary


def trace_main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ldv-trace",
        description="Inspect the execution trace inside an LDV package.")
    parser.add_argument("package", help="package directory")
    parser.add_argument("--entities", nargs="?", const="*", default=None,
                        metavar="TYPE",
                        help="list entity node ids (optionally only "
                             "of TYPE: file | tuple)")
    parser.add_argument("--deps", metavar="NODE",
                        help="list every entity NODE depends on "
                             "(temporally restricted inference)")
    parser.add_argument("--depends", nargs=2,
                        metavar=("TARGET", "SOURCE"),
                        help="reachability query: does TARGET depend "
                             "on SOURCE?")
    parser.add_argument("--prov", metavar="OUT",
                        help="write a PROV-JSON export to OUT")
    parser.add_argument("--at-time", type=int, default=None,
                        help="restrict --deps/--depends to "
                             "dependencies established by this tick")
    args = parser.parse_args(argv)

    try:
        trace = load_package_trace(args.package)
    except ReproError as exc:
        print(f"ldv-trace: error: {exc}", file=sys.stderr)
        return 1

    if args.entities is not None:
        type_label = None if args.entities == "*" else args.entities
        for node in trace.entities(type_label):
            print(node.node_id)
        return 0

    if args.deps is not None:
        inference = DependencyInference(trace)
        try:
            dependencies = inference.dependencies_of(args.deps,
                                                     args.at_time)
        except UnknownNodeError as exc:
            print(f"ldv-trace: error: {exc}", file=sys.stderr)
            return 1
        for node_id in sorted(dependencies):
            print(node_id)
        return 0

    if args.depends is not None:
        target, source = args.depends
        inference = DependencyInference(trace)
        try:
            answer = inference.depends_on(target, source, args.at_time)
        except UnknownNodeError as exc:
            print(f"ldv-trace: error: {exc}", file=sys.stderr)
            return 1
        print("yes" if answer else "no")
        return 0 if answer else 2

    if args.prov is not None:
        document = trace_to_prov(trace, include_dependencies=True)
        Path(args.prov).write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote PROV-JSON to {args.prov}")
        return 0

    for key, count in sorted(summarize(trace).items()):
        print(f"{key:32} {count}")
    return 0
