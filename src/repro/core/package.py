"""The on-disk LDV package format.

A package is a plain directory (so package size is measurable as the
byte total Figure 9 reports)::

    <pkg>/
      MANIFEST.json          kind, entry point, DB metadata, counters
      trace.json.gz          serialized combined execution trace
                             (gzip — traces are highly repetitive)
      files/<path>           virtual-FS snapshot of every input file
      db/
        server/<path>        DB server binaries        (server-included)
        schema.sql           DDL for the shipped tables (server-included)
        restore/<table>.csv  relevant tuple versions    (server-included)
        data/.keep           the empty data directory of Table III
      replay/
        log.jsonl            ordered statement/result log (server-excluded)
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ManifestError, PackageError

FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
TRACE_NAME = "trace.json.gz"
FILES_DIR = "files"
DB_DIR = "db"
SERVER_DIR = "db/server"
RESTORE_DIR = "db/restore"
SCHEMA_FILE = "db/schema.sql"
DATA_DIR = "db/data"
REPLAY_DIR = "replay"
REPLAY_LOG = "replay/log.jsonl"


class PackageKind(enum.Enum):
    SERVER_INCLUDED = "server-included"
    SERVER_EXCLUDED = "server-excluded"
    PTU = "ptu"  # the baseline format shares the layout


@dataclass
class Manifest:
    """Package metadata."""

    kind: PackageKind
    entry_binary: str
    entry_argv: list[str] = field(default_factory=list)
    db_server_name: str | None = None
    tables: list[str] = field(default_factory=list)
    format_version: int = FORMAT_VERSION
    notes: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "format_version": self.format_version,
            "kind": self.kind.value,
            "entry": {"binary": self.entry_binary,
                      "argv": self.entry_argv},
            "db": {"server_name": self.db_server_name,
                   "tables": self.tables},
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Manifest":
        try:
            return cls(
                kind=PackageKind(data["kind"]),
                entry_binary=data["entry"]["binary"],
                entry_argv=list(data["entry"].get("argv", [])),
                db_server_name=data["db"].get("server_name"),
                tables=list(data["db"].get("tables", [])),
                format_version=int(data.get("format_version", 0)),
                notes=dict(data.get("notes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc


class Package:
    """A package rooted at a host directory."""

    def __init__(self, root: str | Path, manifest: Manifest) -> None:
        self.root = Path(root)
        self.manifest = manifest

    # -- creation ----------------------------------------------------------------

    @classmethod
    def create(cls, root: str | Path, manifest: Manifest) -> "Package":
        root = Path(root)
        if root.exists() and any(root.iterdir()):
            raise PackageError(f"package directory {root} is not empty")
        root.mkdir(parents=True, exist_ok=True)
        package = cls(root, manifest)
        package.write_manifest()
        return package

    def write_manifest(self) -> None:
        (self.root / MANIFEST_NAME).write_text(
            json.dumps(self.manifest.to_json(), indent=2) + "\n")

    # -- loading ------------------------------------------------------------------

    @classmethod
    def load(cls, root: str | Path) -> "Package":
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise ManifestError(f"no {MANIFEST_NAME} in {root}")
        try:
            data = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest is not valid JSON: {exc}") from exc
        manifest = Manifest.from_json(data)
        if manifest.format_version != FORMAT_VERSION:
            raise ManifestError(
                f"unsupported package format {manifest.format_version}")
        return cls(root, manifest)

    # -- content access -----------------------------------------------------------

    def write_text(self, relative: str, text: str) -> int:
        path = self.root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return len(text.encode())

    def write_trace(self, trace_json: dict[str, Any]) -> int:
        """Write the serialized execution trace, gzip-compressed.

        Traces record one entity per produced result tuple, so they
        compress extremely well; shipping them raw would let trace
        metadata dominate the package for result-heavy workloads.
        """
        import gzip
        import json as json_module

        # mtime=0 keeps the gzip header free of wall-clock time —
        # packages of identical traces must be byte-identical no
        # matter when they were written (the replica-of-record
        # invariant the chaos harness checks)
        payload = gzip.compress(json_module.dumps(
            trace_json, separators=(",", ":")).encode(), mtime=0)
        path = self.root / TRACE_NAME
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        return len(payload)

    def read_trace(self) -> dict[str, Any]:
        """Load the serialized execution trace."""
        import gzip
        import json as json_module

        path = self.root / TRACE_NAME
        if not path.exists():
            raise PackageError("package has no execution trace")
        return json_module.loads(gzip.decompress(path.read_bytes()))

    def read_text(self, relative: str) -> str:
        path = self.root / relative
        if not path.exists():
            raise PackageError(f"package has no {relative}")
        return path.read_text()

    def has(self, relative: str) -> bool:
        return (self.root / relative).exists()

    def file_path(self, virtual_path: str) -> Path:
        """Host location of a packaged virtual-FS file."""
        return self.root / FILES_DIR / virtual_path.lstrip("/")

    def restore_tables(self) -> list[str]:
        """Table names that have a restore CSV."""
        restore = self.root / RESTORE_DIR
        if not restore.is_dir():
            return []
        return sorted(path.stem for path in restore.glob("*.csv"))

    # -- archiving --------------------------------------------------------------------

    def archive(self, archive_path: str | Path) -> Path:
        """Bundle the package directory into a ``.tar.gz`` — the form
        a researcher actually mails around. Returns the archive path.
        Runtime scratch state (``.runtime``/``.scratch*``) is left
        out: replay regenerates it."""
        import tarfile

        archive_path = Path(archive_path)
        archive_path.parent.mkdir(parents=True, exist_ok=True)

        def keep(tarinfo):
            parts = Path(tarinfo.name).parts
            if any(part.startswith((".runtime", ".scratch"))
                   for part in parts):
                return None
            return tarinfo

        with tarfile.open(archive_path, "w:gz") as archive:
            archive.add(self.root, arcname=".", filter=keep)
        return archive_path

    @classmethod
    def from_archive(cls, archive_path: str | Path,
                     extract_to: str | Path) -> "Package":
        """Unpack an archived package and load it."""
        import tarfile

        extract_to = Path(extract_to)
        if extract_to.exists() and any(extract_to.iterdir()):
            raise PackageError(
                f"extraction target {extract_to} is not empty")
        extract_to.mkdir(parents=True, exist_ok=True)
        try:
            with tarfile.open(archive_path, "r:gz") as archive:
                archive.extractall(extract_to, filter="data")
        except (OSError, tarfile.TarError) as exc:
            raise PackageError(
                f"cannot unpack {archive_path}: {exc}") from exc
        return cls.load(extract_to)

    # -- measurement ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total package size in bytes (what Figure 9 plots)."""
        return sum(path.stat().st_size
                   for path in self.root.rglob("*") if path.is_file())

    def breakdown(self) -> dict[str, int]:
        """Bytes per top-level component."""
        sizes: dict[str, int] = {}
        for path in self.root.rglob("*"):
            if not path.is_file():
                continue
            relative = path.relative_to(self.root)
            top = relative.parts[0]
            if top == DB_DIR.split("/")[0] and len(relative.parts) > 1:
                top = f"{relative.parts[0]}/{relative.parts[1]}"
            sizes[top] = sizes.get(top, 0) + path.stat().st_size
        return sizes

    def contents_summary(self) -> dict[str, bool]:
        """The Table III checklist for this package."""
        data_dir = self.root / DATA_DIR
        data_files = [path for path in data_dir.rglob("*")
                      if path.is_file() and path.name != ".keep"] \
            if data_dir.is_dir() else []
        return {
            "software_binaries": (self.root / FILES_DIR).is_dir(),
            "db_server": (self.root / SERVER_DIR).is_dir(),
            "full_data_files": bool(data_files),
            "empty_data_dir": data_dir.is_dir() and not data_files,
            "db_provenance": (self.has(SCHEMA_FILE)
                              and bool(self.restore_tables()))
            or self.has(REPLAY_LOG),
        }
