"""An in-memory POSIX-flavoured virtual filesystem.

Paths are absolute, ``/``-separated strings. The tree holds three node
kinds — directories, regular files (bytes content), and symlinks — and
supports the operations the LDV pipeline needs: create/read/write,
symlink resolution, recursive walks, and bidirectional transfer to a
*host* directory (packaging exports the audited files to a real
directory on disk; replay imports a package back into a fresh virtual
filesystem rooted at the package).
"""

from __future__ import annotations

import posixpath
from pathlib import Path
from typing import Iterator

from repro.errors import (
    FileExistsVosError,
    FileNotFoundVosError,
    FileSystemError,
    IsADirectoryVosError,
    NotADirectoryVosError,
)

_MAX_SYMLINK_HOPS = 16


class _Node:
    __slots__ = ()


class _Directory(_Node):
    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[str, _Node] = {}


class _File(_Node):
    __slots__ = ("content",)

    def __init__(self, content: bytes = b"") -> None:
        self.content = content


class _Symlink(_Node):
    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        self.target = target


def normalize(path: str) -> str:
    """Normalize to an absolute, ``..``-free POSIX path."""
    if not path.startswith("/"):
        raise FileSystemError(f"virtual paths must be absolute: {path!r}")
    return posixpath.normpath(path)


class VirtualFileSystem:
    """The virtual file tree."""

    def __init__(self) -> None:
        self._root = _Directory()

    # -- path traversal ----------------------------------------------------------

    def _lookup(self, path: str, follow: bool = True,
                _hops: int = 0) -> _Node:
        if _hops > _MAX_SYMLINK_HOPS:
            raise FileSystemError(f"too many symlink hops at {path!r}")
        node: _Node = self._root
        parts = [part for part in normalize(path).split("/") if part]
        for index, part in enumerate(parts):
            if isinstance(node, _Symlink):
                node = self._lookup(node.target, True, _hops + 1)
            if not isinstance(node, _Directory):
                raise NotADirectoryVosError(
                    f"{'/'.join(parts[:index])!r} is not a directory")
            child = node.entries.get(part)
            if child is None:
                raise FileNotFoundVosError(f"no such path: {path!r}")
            node = child
        if follow and isinstance(node, _Symlink):
            node = self._lookup(node.target, True, _hops + 1)
        return node

    def _parent_of(self, path: str) -> tuple[_Directory, str]:
        normalized = normalize(path)
        parent_path, name = posixpath.split(normalized)
        if not name:
            raise FileSystemError("cannot operate on the root directory")
        parent = self._lookup(parent_path)
        if isinstance(parent, _Symlink):
            parent = self._lookup(parent.target)
        if not isinstance(parent, _Directory):
            raise NotADirectoryVosError(
                f"{parent_path!r} is not a directory")
        return parent, name

    # -- predicates --------------------------------------------------------------

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except FileSystemError:
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), _Directory)
        except FileSystemError:
            return False

    def is_file(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path), _File)
        except FileSystemError:
            return False

    def is_symlink(self, path: str) -> bool:
        try:
            return isinstance(self._lookup(path, follow=False), _Symlink)
        except FileSystemError:
            return False

    # -- directories --------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False,
              exist_ok: bool = False) -> None:
        normalized = normalize(path)
        if normalized == "/":
            if exist_ok:
                return
            raise FileExistsVosError("root directory always exists")
        if parents:
            parent_path = posixpath.dirname(normalized)
            if parent_path != "/" and not self.exists(parent_path):
                self.mkdir(parent_path, parents=True, exist_ok=True)
        parent, name = self._parent_of(normalized)
        existing = parent.entries.get(name)
        if existing is not None:
            if exist_ok and isinstance(existing, _Directory):
                return
            raise FileExistsVosError(f"path already exists: {path!r}")
        parent.entries[name] = _Directory()

    def listdir(self, path: str) -> list[str]:
        node = self._lookup(path)
        if not isinstance(node, _Directory):
            raise NotADirectoryVosError(f"{path!r} is not a directory")
        return sorted(node.entries)

    # -- files --------------------------------------------------------------------

    def write_file(self, path: str, content: bytes | str,
                   create_parents: bool = False) -> None:
        if isinstance(content, str):
            content = content.encode()
        normalized = normalize(path)
        if create_parents:
            parent_path = posixpath.dirname(normalized)
            if not self.exists(parent_path):
                self.mkdir(parent_path, parents=True, exist_ok=True)
        parent, name = self._parent_of(normalized)
        existing = parent.entries.get(name)
        if isinstance(existing, _Directory):
            raise IsADirectoryVosError(f"{path!r} is a directory")
        if isinstance(existing, _Symlink):
            self.write_file(existing.target, content, create_parents)
            return
        parent.entries[name] = _File(content)

    def append_file(self, path: str, content: bytes | str) -> None:
        if isinstance(content, str):
            content = content.encode()
        if not self.exists(path):
            self.write_file(path, content)
            return
        node = self._lookup(path)
        if not isinstance(node, _File):
            raise IsADirectoryVosError(f"{path!r} is not a regular file")
        node.content += content

    def read_file(self, path: str) -> bytes:
        node = self._lookup(path)
        if isinstance(node, _Directory):
            raise IsADirectoryVosError(f"{path!r} is a directory")
        assert isinstance(node, _File)
        return node.content

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode()

    def write_text(self, path: str, text: str,
                   create_parents: bool = False) -> None:
        self.write_file(path, text.encode(), create_parents)

    def size_of(self, path: str) -> int:
        node = self._lookup(path)
        if isinstance(node, _File):
            return len(node.content)
        if isinstance(node, _Directory):
            return sum(self.size_of(posixpath.join(normalize(path), name))
                       for name in node.entries)
        return 0  # pragma: no cover - symlinks resolve above

    def remove(self, path: str) -> None:
        """Remove a file or symlink (not a directory)."""
        parent, name = self._parent_of(path)
        node = parent.entries.get(name)
        if node is None:
            raise FileNotFoundVosError(f"no such path: {path!r}")
        if isinstance(node, _Directory):
            raise IsADirectoryVosError(f"{path!r} is a directory")
        del parent.entries[name]

    def remove_tree(self, path: str) -> None:
        """Remove a directory recursively."""
        parent, name = self._parent_of(path)
        if name not in parent.entries:
            raise FileNotFoundVosError(f"no such path: {path!r}")
        del parent.entries[name]

    # -- symlinks --------------------------------------------------------------------

    def symlink(self, link_path: str, target: str) -> None:
        parent, name = self._parent_of(link_path)
        if name in parent.entries:
            raise FileExistsVosError(f"path already exists: {link_path!r}")
        parent.entries[name] = _Symlink(normalize(target))

    def readlink(self, path: str) -> str:
        node = self._lookup(path, follow=False)
        if not isinstance(node, _Symlink):
            raise FileSystemError(f"{path!r} is not a symlink")
        return node.target

    def resolve(self, path: str) -> str:
        """Fully resolve symlinks, returning the canonical file path."""
        normalized = normalize(path)
        node = self._lookup(normalized, follow=False)
        hops = 0
        while isinstance(node, _Symlink):
            hops += 1
            if hops > _MAX_SYMLINK_HOPS:
                raise FileSystemError(f"too many symlink hops at {path!r}")
            normalized = node.target
            node = self._lookup(normalized, follow=False)
        return normalized

    # -- traversal ----------------------------------------------------------------------

    def walk(self, path: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Like :func:`os.walk` over the virtual tree (symlinks listed
        as files, not followed)."""
        node = self._lookup(path)
        if not isinstance(node, _Directory):
            raise NotADirectoryVosError(f"{path!r} is not a directory")
        normalized = normalize(path)
        directories: list[str] = []
        files: list[str] = []
        for name in sorted(node.entries):
            child = node.entries[name]
            if isinstance(child, _Directory):
                directories.append(name)
            else:
                files.append(name)
        yield normalized, directories, files
        for name in directories:
            yield from self.walk(posixpath.join(normalized, name))

    def all_files(self, path: str = "/") -> list[str]:
        """Every regular-file and symlink path under ``path``."""
        found: list[str] = []
        for directory, _subdirs, files in self.walk(path):
            for name in files:
                found.append(posixpath.join(directory, name))
        return found

    def total_size(self, path: str = "/") -> int:
        """Total bytes of regular files under ``path``."""
        total = 0
        for file_path in self.all_files(path):
            node = self._lookup(file_path, follow=False)
            if isinstance(node, _File):
                total += len(node.content)
        return total

    # -- host transfer -------------------------------------------------------------------

    def export_file(self, virtual_path: str, host_path: Path) -> int:
        """Copy one virtual file (following symlinks) to the host disk,
        creating parent directories. Returns the bytes written."""
        content = self.read_file(virtual_path)
        host_path.parent.mkdir(parents=True, exist_ok=True)
        host_path.write_bytes(content)
        return len(content)

    def export_tree(self, virtual_path: str, host_dir: Path) -> int:
        """Copy a whole virtual subtree to a host directory. Returns
        total bytes written. Symlinks are materialized as files."""
        total = 0
        base = normalize(virtual_path)
        for file_path in self.all_files(base):
            relative = posixpath.relpath(file_path, base)
            total += self.export_file(file_path, host_dir / relative)
        return total

    def import_tree(self, host_dir: Path, virtual_path: str = "/") -> int:
        """Load a host directory into the virtual tree. Returns the
        number of files imported."""
        base = normalize(virtual_path)
        self.mkdir(base, parents=True, exist_ok=True)
        count = 0
        for host_path in sorted(Path(host_dir).rglob("*")):
            relative = host_path.relative_to(host_dir).as_posix()
            target = posixpath.join(base, relative)
            if host_path.is_dir():
                self.mkdir(target, parents=True, exist_ok=True)
            elif host_path.is_file():
                self.write_file(target, host_path.read_bytes(),
                                create_parents=True)
                count += 1
        return count
