"""Syscall event records — what a ptrace supervisor observes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class SyscallName(enum.Enum):
    """The syscalls the tracer can observe.

    The set mirrors what PTU/CDE intercept via ptrace: file I/O,
    process control, and (LDV's addition) DB connection traffic.
    """

    OPEN = "open"
    READ = "read"
    WRITE = "write"
    CLOSE = "close"
    UNLINK = "unlink"
    MKDIR = "mkdir"
    SYMLINK = "symlink"
    FORK = "fork"
    EXECVE = "execve"
    EXIT = "exit"
    CONNECT = "connect"
    SEND = "send"
    RECV = "recv"


@dataclass(frozen=True)
class SyscallEvent:
    """One observed syscall, stamped with a logical tick.

    ``args`` carries call-specific details (path, fd, mode, child pid,
    DB server name, ...); ``result`` the return value visible to the
    caller.
    """

    tick: int
    pid: int
    name: SyscallName
    args: tuple[tuple[str, Any], ...] = ()
    result: Any = None

    def arg(self, key: str, default: Any = None) -> Any:
        for arg_key, value in self.args:
            if arg_key == key:
                return value
        return default

    @staticmethod
    def make(tick: int, pid: int, name: SyscallName,
             result: Any = None, **args: Any) -> "SyscallEvent":
        return SyscallEvent(tick, pid, name,
                            tuple(sorted(args.items())), result)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        rendered = ", ".join(f"{key}={value!r}" for key, value in self.args)
        return f"[{self.tick}] pid={self.pid} {self.name.value}({rendered})"
