"""A virtual OS: filesystem, processes, syscalls, and a ptrace tracer.

This package is the substrate standing in for Linux + ``ptrace`` in the
LDV paper. Applications are Python callables ("programs") registered as
binaries in a :class:`VirtualFileSystem`; running them through
:class:`VirtualOS` produces the same observable event stream a ptrace
supervisor sees — ``open``/``read``/``write``/``close``/``fork``/
``execve``/``connect`` — with deterministic logical timestamps, which
is exactly what the PTU monitor consumes to build OS provenance.
"""

from repro.vos.filesystem import VirtualFileSystem
from repro.vos.kernel import VirtualOS
from repro.vos.process import Process, ProcessState
from repro.vos.programs import ProcessContext, program
from repro.vos.ptrace import Tracer
from repro.vos.syscalls import SyscallEvent, SyscallName

__all__ = [
    "VirtualFileSystem",
    "VirtualOS",
    "Process",
    "ProcessState",
    "ProcessContext",
    "program",
    "Tracer",
    "SyscallEvent",
    "SyscallName",
]
