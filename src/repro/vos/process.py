"""Process objects and the process table."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProcessError


class ProcessState(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"


@dataclass
class Process:
    """One (simulated) OS process."""

    pid: int
    ppid: Optional[int]
    binary: str
    argv: list[str]
    state: ProcessState = ProcessState.RUNNING
    exit_code: Optional[int] = None
    started_at: int = 0
    exited_at: Optional[int] = None

    @property
    def name(self) -> str:
        return self.binary.rsplit("/", 1)[-1]

    def exit(self, code: int, tick: int) -> None:
        if self.state is ProcessState.EXITED:
            raise ProcessError(f"pid {self.pid} already exited")
        self.state = ProcessState.EXITED
        self.exit_code = code
        self.exited_at = tick


class ProcessTable:
    """PID allocation and genealogy."""

    def __init__(self, first_pid: int = 100) -> None:
        self._processes: dict[int, Process] = {}
        self._next_pid = first_pid

    def create(self, binary: str, argv: list[str],
               parent: Optional[Process], tick: int) -> Process:
        process = Process(
            pid=self._next_pid,
            ppid=parent.pid if parent is not None else None,
            binary=binary,
            argv=list(argv),
            started_at=tick)
        self._next_pid += 1
        self._processes[process.pid] = process
        return process

    def get(self, pid: int) -> Process:
        process = self._processes.get(pid)
        if process is None:
            raise ProcessError(f"unknown pid {pid}")
        return process

    def children_of(self, pid: int) -> list[Process]:
        return [process for process in self._processes.values()
                if process.ppid == pid]

    def all(self) -> list[Process]:
        return sorted(self._processes.values(), key=lambda p: p.pid)

    def __len__(self) -> int:
        return len(self._processes)
