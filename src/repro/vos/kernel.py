"""The virtual OS kernel: programs, processes, syscall dispatch.

Programs are Python callables registered under a binary path in the
virtual filesystem. :meth:`VirtualOS.run` executes one as a process —
synchronously and deterministically — emitting a syscall event for
every observable action. Attached :class:`Tracer` objects see the
events exactly as a ptrace supervisor would.

The kernel also owns the *DB rendezvous*: database servers register a
wire transport under a name, and processes connect to them through
:meth:`repro.vos.programs.ProcessContext.connect_db`, which emits a
``connect`` syscall and wraps the transport so every round trip emits
``send``/``recv`` events. Client *decorators* let a monitor or
replayer attach interceptors to every new client — the LDV
instrumentation point.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.clockwork import LogicalClock
from repro.db.client import DBClient
from repro.errors import ProgramNotFoundError, VosError
from repro.vos.filesystem import VirtualFileSystem
from repro.vos.process import Process, ProcessTable
from repro.vos.ptrace import Tracer
from repro.vos.syscalls import SyscallEvent, SyscallName

ProgramFn = Callable[["ProcessContext"], Optional[int]]
ClientDecorator = Callable[[DBClient, Process], None]

_FAKE_ELF_MAGIC = b"\x7fELF\x02\x01\x01\x00"


class VirtualOS:
    """One simulated machine: filesystem + processes + DB rendezvous."""

    def __init__(self, clock: LogicalClock | None = None) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self.fs = VirtualFileSystem()
        self.processes = ProcessTable()
        self.tracers: list[Tracer] = []
        self._programs: dict[str, ProgramFn] = {}
        self._db_servers: dict[str, Callable[[str], str]] = {}
        self.client_decorators: list[ClientDecorator] = []

    # -- tracers ---------------------------------------------------------------

    def attach_tracer(self, tracer: Tracer) -> None:
        self.tracers.append(tracer)

    def detach_tracer(self, tracer: Tracer) -> None:
        self.tracers.remove(tracer)

    def emit(self, pid: int, name: SyscallName, result: Any = None,
             **args: Any) -> SyscallEvent:
        """Record one syscall: tick the clock, notify every tracer."""
        event = SyscallEvent.make(self.clock.tick(), pid, name,
                                  result, **args)
        for tracer in self.tracers:
            tracer.on_syscall(event)
        return event

    # -- programs ----------------------------------------------------------------

    def register_program(self, binary_path: str, fn: ProgramFn,
                         size: int = 4096) -> None:
        """Install a callable as an executable binary.

        A synthetic ELF-looking file of ``size`` bytes is written at
        ``binary_path`` so packaging has real bytes to copy.
        """
        payload = _FAKE_ELF_MAGIC + binary_path.encode()
        if len(payload) < size:
            payload += b"\x00" * (size - len(payload))
        self.fs.write_file(binary_path, payload, create_parents=True)
        self._programs[self.fs.resolve(binary_path)] = fn

    def bind_program(self, binary_path: str, fn: ProgramFn) -> None:
        """Associate a callable with an *existing* binary file.

        Used by replay: the package supplies the binary bytes; the
        program registry supplies the behaviour. Raises if the file is
        absent (a package missing its binary must not run).
        """
        if not self.fs.is_file(binary_path):
            raise ProgramNotFoundError(
                f"no binary file at {binary_path!r} to bind")
        self._programs[self.fs.resolve(binary_path)] = fn

    def has_program(self, binary_path: str) -> bool:
        try:
            return self.fs.resolve(binary_path) in self._programs
        except VosError:
            return False

    # -- DB rendezvous ---------------------------------------------------------------

    def register_db_server(self, name: str,
                           transport: Callable[[str], str]) -> None:
        self._db_servers[name] = transport

    def unregister_db_server(self, name: str) -> None:
        self._db_servers.pop(name, None)

    def db_transport(self, name: str) -> Callable[[str], str]:
        transport = self._db_servers.get(name)
        if transport is None:
            raise VosError(f"no DB server registered as {name!r}")
        return transport

    def has_db_server(self, name: str) -> bool:
        return name in self._db_servers

    # -- process execution ---------------------------------------------------------------

    def run(self, binary_path: str, argv: list[str] | None = None,
            env: dict[str, str] | None = None,
            parent: Process | None = None) -> Process:
        """Execute a registered program as a new process.

        When ``parent`` is given, a ``fork`` is emitted on the parent
        followed by ``execve`` on the child — the event pair PTU uses
        to build the process genealogy.
        """
        from repro.vos.programs import ProcessContext  # local: avoid cycle

        try:
            resolved = self.fs.resolve(binary_path)
        except VosError as exc:
            raise ProgramNotFoundError(str(exc)) from exc
        fn = self._programs.get(resolved)
        if fn is None:
            raise ProgramNotFoundError(
                f"no program registered at {binary_path!r}")
        process = self.processes.create(
            resolved, list(argv or []), parent, self.clock.now)
        if parent is not None:
            self.emit(parent.pid, SyscallName.FORK, result=process.pid,
                      child=process.pid)
        self.emit(process.pid, SyscallName.EXECVE, path=resolved,
                  argv=list(argv or []))
        process.started_at = self.clock.now
        context = ProcessContext(self, process, dict(env or {}))
        exit_code = 1
        try:
            returned = fn(context)
            exit_code = int(returned) if returned is not None else 0
        finally:
            context.close_all()
            self.emit(process.pid, SyscallName.EXIT, result=exit_code,
                      code=exit_code)
            process.exit(exit_code, self.clock.now)
        return process
