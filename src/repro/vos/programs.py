"""The program-side API: what code running inside the virtual OS sees.

A program is ``def main(ctx: ProcessContext) -> int | None``. The
context exposes file I/O (every call emits the corresponding syscall),
child-process spawning, and DB connections. File handles keep the
open → read/write → close discipline so the tracer observes the same
interval structure ptrace sees on a real system.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.db.client import DBClient
from repro.errors import BadFileDescriptorError, VosError
from repro.vos.process import Process
from repro.vos.syscalls import SyscallName

if TYPE_CHECKING:  # pragma: no cover
    from repro.vos.kernel import VirtualOS

_READ_MODES = frozenset({"r", "rb"})
_WRITE_MODES = frozenset({"w", "wb", "a", "ab"})


def program(fn: Callable) -> Callable:
    """Decorator marking a callable as a vos program (documentation
    only — any callable with the right signature works)."""
    fn.__vos_program__ = True
    return fn


class FileHandle:
    """An open file descriptor."""

    def __init__(self, context: "ProcessContext", fd: int, path: str,
                 mode: str) -> None:
        self.context = context
        self.fd = fd
        self.path = path
        self.mode = mode
        self.closed = False
        if mode in ("w", "wb"):
            context.os.fs.write_file(path, b"", create_parents=True)
        elif mode in ("a", "ab") and not context.os.fs.exists(path):
            context.os.fs.write_file(path, b"", create_parents=True)

    def _check_open(self) -> None:
        if self.closed:
            raise BadFileDescriptorError(
                f"fd {self.fd} ({self.path}) is closed")

    def read(self) -> bytes:
        self._check_open()
        if self.mode not in _READ_MODES:
            raise BadFileDescriptorError(
                f"fd {self.fd} not open for reading")
        content = self.context.os.fs.read_file(self.path)
        self.context.os.emit(self.context.process.pid, SyscallName.READ,
                             result=len(content), fd=self.fd,
                             path=self.path)
        return content

    def read_text(self) -> str:
        return self.read().decode()

    def write(self, data: bytes | str) -> int:
        self._check_open()
        if self.mode not in _WRITE_MODES:
            raise BadFileDescriptorError(
                f"fd {self.fd} not open for writing")
        if isinstance(data, str):
            data = data.encode()
        self.context.os.fs.append_file(self.path, data)
        self.context.os.emit(self.context.process.pid, SyscallName.WRITE,
                             result=len(data), fd=self.fd, path=self.path)
        return len(data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.context.os.emit(self.context.process.pid, SyscallName.CLOSE,
                             fd=self.fd, path=self.path)
        self.context._handles.pop(self.fd, None)

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _TracedTransport:
    """Wraps a DB wire transport so round trips emit send/recv."""

    def __init__(self, context: "ProcessContext", server: str,
                 inner: Callable[[str], str]) -> None:
        self.context = context
        self.server = server
        self.inner = inner

    def __call__(self, request_text: str) -> str:
        os = self.context.os
        pid = self.context.process.pid
        os.emit(pid, SyscallName.SEND, result=len(request_text),
                server=self.server)
        response_text = self.inner(request_text)
        os.emit(pid, SyscallName.RECV, result=len(response_text),
                server=self.server)
        return response_text


class ProcessContext:
    """The system-call interface handed to a running program."""

    def __init__(self, os: "VirtualOS", process: Process,
                 env: dict[str, str]) -> None:
        self.os = os
        self.process = process
        self.env = env
        self._next_fd = 3  # 0/1/2 reserved, as on a real system
        self._handles: dict[int, FileHandle] = {}
        self._clients: list[DBClient] = []

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def argv(self) -> list[str]:
        return self.process.argv

    # -- file I/O -----------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> FileHandle:
        if mode not in _READ_MODES | _WRITE_MODES:
            raise VosError(f"unsupported open mode {mode!r}")
        fd = self._next_fd
        self._next_fd += 1
        handle = FileHandle(self, fd, path, mode)
        self._handles[fd] = handle
        self.os.emit(self.process.pid, SyscallName.OPEN, result=fd,
                     path=path, mode=mode)
        return handle

    def read_file(self, path: str) -> bytes:
        """Convenience: open, read, close."""
        with self.open(path, "rb") as handle:
            return handle.read()

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode()

    def write_file(self, path: str, data: bytes | str) -> int:
        """Convenience: open for write, write, close."""
        with self.open(path, "wb") as handle:
            return handle.write(data)

    def append_file(self, path: str, data: bytes | str) -> int:
        with self.open(path, "ab") as handle:
            return handle.write(data)

    def unlink(self, path: str) -> None:
        self.os.fs.remove(path)
        self.os.emit(self.process.pid, SyscallName.UNLINK, path=path)

    def mkdir(self, path: str, parents: bool = False) -> None:
        self.os.fs.mkdir(path, parents=parents, exist_ok=True)
        self.os.emit(self.process.pid, SyscallName.MKDIR, path=path)

    def close_all(self) -> None:
        """Close leaked fds and DB clients at process exit."""
        for handle in list(self._handles.values()):
            handle.close()
        for client in self._clients:
            if client.connected:
                client.close()

    # -- processes -----------------------------------------------------------------

    def spawn(self, binary_path: str, argv: list[str] | None = None,
              env: dict[str, str] | None = None) -> Process:
        """fork + execve + waitpid: run a child program to completion."""
        merged_env = dict(self.env)
        merged_env.update(env or {})
        return self.os.run(binary_path, argv, merged_env,
                           parent=self.process)

    # -- DB connections --------------------------------------------------------------

    def connect_db(self, server_name: str) -> DBClient:
        """Connect to a registered DB server through the client library.

        Emits a ``connect`` syscall, wraps the wire transport so
        traffic emits ``send``/``recv``, and applies every registered
        client decorator (the LDV instrumentation hook).
        """
        transport = self.os.db_transport(server_name)
        traced = _TracedTransport(self, server_name, transport)
        client = DBClient(traced, client_name=self.process.name,
                          process_id=str(self.process.pid))
        self.os.emit(self.process.pid, SyscallName.CONNECT,
                     server=server_name)
        for decorator in self.os.client_decorators:
            decorator(client, self.process)
        client.connect()
        self._clients.append(client)
        return client
