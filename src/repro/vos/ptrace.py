"""The tracer interface — ptrace for the virtual OS.

A :class:`Tracer` attached to a :class:`repro.vos.kernel.VirtualOS`
receives every :class:`SyscallEvent` the kernel emits, in order. This
is the observation surface PTU builds OS provenance from; the recording
tracer below is also handy in tests.
"""

from __future__ import annotations

from repro.vos.syscalls import SyscallEvent, SyscallName


class Tracer:
    """Base class: override :meth:`on_syscall`."""

    def on_syscall(self, event: SyscallEvent) -> None:
        """Called synchronously for every syscall."""


class RecordingTracer(Tracer):
    """Keeps every event (optionally filtered by syscall name)."""

    def __init__(self, only: set[SyscallName] | None = None) -> None:
        self.events: list[SyscallEvent] = []
        self.only = only

    def on_syscall(self, event: SyscallEvent) -> None:
        if self.only is None or event.name in self.only:
            self.events.append(event)

    def of(self, name: SyscallName) -> list[SyscallEvent]:
        return [event for event in self.events if event.name is name]

    def clear(self) -> None:
        self.events.clear()
