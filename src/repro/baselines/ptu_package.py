"""PTU packaging (Pham, Malik, Foster — TaPP 2013).

The paper's main packaging baseline: the application is audited at the
OS level (ptrace), and the resulting package contains all files it
accessed *including the DB server binaries and the complete data
files* — PTU has no DB provenance, so it cannot slice the database
(Table III, first row). The server is started and stopped by the
experiment so its data files are consistent on disk when packaging
copies them (Section IX-A).

Replay uses the standard server-included machinery: the full data
files boot a complete database, so every query behaves as in the
original run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.db.engine import Database
from repro.errors import PackageError
from repro.monitor.session import OS_ONLY, AuditSession
from repro.core import package as pkg
from repro.core.package import Manifest, Package, PackageKind
from repro.vos.kernel import VirtualOS
from repro.vos.process import Process


@dataclass
class PTUPackagingResult:
    package: Package
    process: Process
    total_bytes: int
    file_count: int
    data_bytes: int


def build_ptu_package(vos: VirtualOS, entry_binary: str,
                      out_dir: str | Path, database: Database,
                      server_name: str,
                      server_binary_paths: Sequence[str],
                      argv: list[str] | None = None,
                      ) -> PTUPackagingResult:
    """Audit at the OS level only and package the full DB.

    ptrace-based packagers copy a file when it is *first accessed*, so
    the DB data files enter the package in their pre-application state
    (the server reads them at startup, before the application writes).
    Copying them after the run would ship tuples the application
    created and replay would hit the duplicate-insert problem Section
    II describes — so the snapshot is taken up front.
    """
    data_directory = database.catalog.data_directory
    if data_directory is None:
        raise PackageError(
            "PTU packaging needs a database with an on-disk data "
            "directory (its package contains the full data files)")
    # snapshot the data files as of server startup (first access)
    database.checkpoint()
    data_snapshot = {
        table_file.name: table_file.read_bytes()
        for table_file in sorted(data_directory.path.glob("*.tbl"))}
    with AuditSession(vos, OS_ONLY) as session:
        process = vos.run(entry_binary, list(argv or []))
    manifest = Manifest(
        kind=PackageKind.PTU,
        entry_binary=entry_binary,
        entry_argv=list(argv or []),
        db_server_name=server_name,
        tables=database.catalog.table_names(),
        notes={"flavor": "ptu"},
    )
    package = Package.create(out_dir, manifest)
    package.write_trace(session.trace.to_json())
    # PTU packages enable validation too (its original selling point)
    import hashlib
    digests = {}
    for virtual_path in sorted(session.ptu.written_paths):
        if vos.fs.is_file(virtual_path):
            digests[virtual_path] = hashlib.sha256(
                vos.fs.read_file(virtual_path)).hexdigest()
    package.manifest.notes["output_digests"] = digests
    package.write_manifest()
    file_count = 0
    for virtual_path in sorted(session.input_paths()):
        vos.fs.export_file(virtual_path, package.file_path(virtual_path))
        file_count += 1
    for virtual_path in server_binary_paths:
        vos.fs.export_file(
            virtual_path,
            package.root / pkg.SERVER_DIR / virtual_path.lstrip("/"))
        file_count += 1
    # the complete data files, in their first-access (pre-run) state
    data_bytes = 0
    data_out = package.root / pkg.DATA_DIR
    data_out.mkdir(parents=True, exist_ok=True)
    for name, content in data_snapshot.items():
        (data_out / name).write_bytes(content)
        data_bytes += len(content)
        file_count += 1
    return PTUPackagingResult(
        package=package,
        process=process,
        total_bytes=package.total_bytes(),
        file_count=file_count,
        data_bytes=data_bytes)
