"""Comparison systems from the paper's evaluation (Section IX).

* :mod:`repro.baselines.cde` — CDE-style plain application
  virtualization (file snapshot only, no provenance, no DB support),
* :mod:`repro.baselines.ptu_package` — PTU packaging: OS provenance
  plus the *complete* DB (server binaries and full data files),
* :mod:`repro.baselines.vmi` — the virtual-machine-image baseline as
  a calibrated analytical model (size and runtime overhead).
"""

from repro.baselines.cde import build_cde_package
from repro.baselines.ptu_package import build_ptu_package
from repro.baselines.vmi import VMIModel

__all__ = ["build_cde_package", "build_ptu_package", "VMIModel"]
