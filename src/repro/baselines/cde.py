"""CDE-style application virtualization (Guo et al., USENIX ATC 2011).

CDE snapshots every file the traced application touched — binaries,
libraries, data — into a chroot-able package. It keeps no provenance
and knows nothing about databases: if the application talked to a DB
server over a connection, nothing of the DB is captured and the
package silently fails to be repeatable (the limitation Section I of
the LDV paper sets out from).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.monitor.ptu import PTUMonitor
from repro.provenance.combined import TraceBuilder
from repro.core.package import Manifest, Package, PackageKind
from repro.vos.kernel import VirtualOS
from repro.vos.ptrace import Tracer
from repro.vos.syscalls import SyscallEvent, SyscallName


class _ConnectDetector(Tracer):
    """Notices DB connections CDE cannot do anything about."""

    def __init__(self) -> None:
        self.saw_db_traffic = False

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.name is SyscallName.CONNECT:
            self.saw_db_traffic = True


@dataclass
class CDEPackage:
    """A plain file-snapshot package."""

    package: Package
    total_bytes: int
    file_count: int
    saw_db_traffic: bool


def build_cde_package(vos: VirtualOS, entry_binary: str,
                      out_dir: str | Path,
                      argv: list[str] | None = None) -> CDEPackage:
    """Run the application under file-only tracing and snapshot it.

    Uses the PTU monitor's file bookkeeping (CDE and PTU share the
    ptrace capture layer) but discards the provenance graph — only the
    file snapshot ships.
    """
    builder = TraceBuilder()
    monitor = PTUMonitor(builder)
    detector = _ConnectDetector()
    vos.attach_tracer(monitor)
    vos.attach_tracer(detector)
    try:
        process = vos.run(entry_binary, list(argv or []))
    finally:
        vos.detach_tracer(monitor)
        vos.detach_tracer(detector)
    manifest = Manifest(
        kind=PackageKind.PTU,  # same layout; no DB parts are written
        entry_binary=entry_binary,
        entry_argv=list(argv or []),
        notes={"flavor": "cde", "exit_code": process.exit_code},
    )
    package = Package.create(out_dir, manifest)
    count = 0
    for path in sorted(monitor.input_paths()):
        vos.fs.export_file(path, package.file_path(path))
        count += 1
    return CDEPackage(
        package=package,
        total_bytes=package.total_bytes(),
        file_count=count,
        saw_db_traffic=detector.saw_db_traffic)
