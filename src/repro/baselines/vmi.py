"""The virtual-machine-image baseline (Section IX-F) as a calibrated
analytical model.

The paper's VMI numbers are simple: a bare-bones Debian Wheezy image
plus the installed DB server plus the copied data and sources comes to
8.2 GB — about 80× the average LDV package — and replaying queries in
the VM is "slightly slower than a non-audited PostgreSQL execution"
(Figure 8b) on top of a boot cost. A hypervisor is out of scope for a
pure-Python reproduction, so this module models exactly those observed
quantities:

* image size  = base OS image + server binaries + full data files +
  application files,
* replay time = boot time + slowdown_factor × native time.

The factor defaults are calibrated to the paper's qualitative claims
(VM replay is the slowest configuration in Fig 8b; the image is ~80×
an average LDV package). See DESIGN.md, substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

# A bare-bones Debian Wheezy 64-bit install, per the paper's setup.
DEFAULT_BASE_IMAGE_BYTES = 1_200_000_000
# Boot + service start before the first query can run.
DEFAULT_BOOT_SECONDS = 30.0
# "slightly slower than a non-audited PostgreSQL execution"
DEFAULT_SLOWDOWN = 1.25


@dataclass
class VMIModel:
    """Size and replay-time model of the VMI packaging option."""

    base_image_bytes: int = DEFAULT_BASE_IMAGE_BYTES
    boot_seconds: float = DEFAULT_BOOT_SECONDS
    slowdown_factor: float = DEFAULT_SLOWDOWN

    def image_bytes(self, server_bytes: int, data_bytes: int,
                    application_bytes: int = 0) -> int:
        """Total VMI size for a provisioned experiment."""
        return (self.base_image_bytes + server_bytes + data_bytes
                + application_bytes)

    def replay_seconds(self, native_seconds: float,
                       include_boot: bool = False) -> float:
        """Query/application time inside the VM.

        Figure 8b plots per-query replay times with the VM already
        running, so boot is excluded by default; pass
        ``include_boot=True`` for end-to-end comparisons.
        """
        total = self.slowdown_factor * native_seconds
        if include_boot:
            total += self.boot_seconds
        return total

    def size_ratio_vs(self, package_bytes: int, server_bytes: int,
                      data_bytes: int,
                      application_bytes: int = 0) -> float:
        """How many times larger the VMI is than a given package."""
        if package_bytes <= 0:
            raise ValueError("package size must be positive")
        return (self.image_bytes(server_bytes, data_bytes,
                                 application_bytes) / package_bytes)
