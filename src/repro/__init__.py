"""LDV: Light-weight Database Virtualization — a full reproduction.

Reproduces Pham, Malik, Glavic, Foster: *LDV: Light-weight Database
Virtualization*, ICDE 2015 — including every substrate the paper runs
on. The top-level namespaces:

* :mod:`repro.db` — a provenance-enabled relational DBMS (the
  PostgreSQL + Perm stand-in),
* :mod:`repro.vos` — a virtual OS with ptrace-style syscall tracing
  (the Linux + PTU capture substrate),
* :mod:`repro.provenance` — the paper's provenance models and the
  temporal dependency-inference algorithm (Sections IV–VI),
* :mod:`repro.monitor` — LDV monitoring (Section VII),
* :mod:`repro.core` — packaging and re-execution, ``ldv-audit`` /
  ``ldv-exec`` (Sections VII-D, VIII),
* :mod:`repro.workloads` — TPC-H data generator, the Table II query
  suite, and the benchmark application (Section IX-A),
* :mod:`repro.baselines` — CDE, PTU, and VMI comparison systems.
"""

from repro.core import ldv_audit, ldv_exec
from repro.db import Database, DBClient, DBServer
from repro.monitor import AuditSession
from repro.provenance import DependencyInference, ExecutionTrace
from repro.vos import VirtualOS

__version__ = "1.0.0"

__all__ = [
    "ldv_audit",
    "ldv_exec",
    "Database",
    "DBClient",
    "DBServer",
    "AuditSession",
    "DependencyInference",
    "ExecutionTrace",
    "VirtualOS",
    "__version__",
]
